set logscale xy
set xlabel "sources"
set ylabel "seconds"
set key outside
plot "fig5_Rand-UWD-216-216.dat" using 1:2 with linespoints title "simul-thorup", \
     "fig5_Rand-UWD-216-216.dat" using 1:3 with linespoints title "baseline-thorup", \
     "fig5_Rand-UWD-216-216.dat" using 1:4 with linespoints title "baseline-deltastep"
