set logscale xy
set xlabel "processors"
set ylabel "seconds"
set key outside
plot "fig4_ch_construction.dat" using 1:2 with linespoints title "Rand-UWD-2^15-2^15", \
     "fig4_ch_construction.dat" using 1:3 with linespoints title "Rand-PWD-2^15-2^15", \
     "fig4_ch_construction.dat" using 1:4 with linespoints title "Rand-UWD-2^14-2^2", \
     "fig4_ch_construction.dat" using 1:5 with linespoints title "RMAT-UWD-2^16-2^16", \
     "fig4_ch_construction.dat" using 1:6 with linespoints title "RMAT-PWD-2^15-2^15", \
     "fig4_ch_construction.dat" using 1:7 with linespoints title "RMAT-UWD-2^16-2^2"
