//! Cross-validation of the Thorup solver against the Dijkstra oracle over
//! the paper's workload grid, all strategies, both hierarchy modes, and
//! repeated runs under a multithreaded pool (race hunting).

use mmt_baselines::{dijkstra, verify_sssp_engine};
use mmt_ch::{build_parallel, build_serial, build_via_mst, ChMode};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::CsrGraph;
use mmt_platform::with_pool;
use mmt_thorup::{ThorupConfig, ThorupSolver, ToVisitStrategy};

fn workloads() -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for class in [GraphClass::Random, GraphClass::Rmat] {
        for dist in [WeightDist::Uniform, WeightDist::PolyLog] {
            for log_c in [1, 2, 6, 10] {
                let mut s = WorkloadSpec::new(class, dist, 8, log_c);
                s.seed = 1000 + log_c as u64;
                specs.push(s);
            }
        }
    }
    specs
}

#[test]
fn thorup_matches_dijkstra_across_workload_grid() {
    for spec in workloads() {
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        for s in [0u32, 37, 200] {
            let got = solver.solve(s);
            let want = dijkstra(&g, s);
            assert_eq!(got, want, "{} source {s}", spec.name());
            verify_sssp_engine("thorup", &g, s, &got).unwrap();
        }
    }
}

#[test]
fn all_strategies_and_modes_agree() {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 8);
    spec.seed = 5;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let hierarchies = [
        build_serial(&el, ChMode::Collapsed),
        build_serial(&el, ChMode::Faithful),
        build_parallel(&el),
        build_via_mst(&el, ChMode::Collapsed),
    ];
    let strategies = [
        ToVisitStrategy::Serial,
        ToVisitStrategy::AlwaysParallel,
        ToVisitStrategy::selective_default(),
        ToVisitStrategy::Selective {
            single_par_threshold: 2,
            multi_par_threshold: 8,
        },
    ];
    let want = dijkstra(&g, 13);
    for ch in &hierarchies {
        for strategy in strategies {
            for serial_visits in [false, true] {
                let solver = ThorupSolver::new(&g, ch).with_config(
                    ThorupConfig::new()
                        .with_strategy(strategy)
                        .with_serial_visits(serial_visits),
                );
                assert_eq!(
                    solver.solve(13),
                    want,
                    "strategy {strategy:?} serial_visits {serial_visits}"
                );
            }
        }
    }
}

#[test]
fn repeated_parallel_runs_are_deterministic() {
    // Hunt for races: same query many times on an oversubscribed pool.
    let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 9, 12);
    spec.seed = 99;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let want = dijkstra(&g, 3);
    with_pool(8, || {
        let solver = ThorupSolver::new(&g, &ch);
        for round in 0..20 {
            assert_eq!(solver.solve(3), want, "round {round}");
        }
    });
}

#[test]
fn instrumented_run_counts_are_sane() {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 7);
    spec.seed = 8;
    let el = spec.generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_serial(&el, ChMode::Collapsed);
    let ev = mmt_platform::EventCounters::new();
    let solver = ThorupSolver::new(&g, &ch).with_counters(&ev);
    let d = solver.solve(0);
    // Random graphs are connected: everything settles.
    assert_eq!(ev.settled.get() as usize, g.n());
    assert!(d.iter().all(|&x| x != u64::MAX));
    // Every settled vertex relaxed its full adjacency once.
    assert_eq!(ev.relaxations.get() as usize, g.num_arcs());
    assert!(ev.bucket_expansions.get() > 0);
    assert!(ev.mind_propagation_hops.get() > 0);
}

#[test]
fn zero_weight_preprocessing_pipeline() {
    use mmt_ch::ZeroContraction;
    use mmt_graph::types::EdgeList;
    // 0 =0= 1 --3-- 2 =0= 3 --2-- 4
    let el = EdgeList::from_triples(5, [(0, 1, 0), (1, 2, 3), (2, 3, 0), (3, 4, 2)]);
    let z = ZeroContraction::contract(&el);
    let g = CsrGraph::from_edge_list(&z.reduced);
    let ch = build_serial(&z.reduced, ChMode::Collapsed);
    let solver = ThorupSolver::new(&g, &ch);
    let reduced = solver.solve(z.map_source(0));
    let full = z.expand_dist(&reduced);
    assert_eq!(full, vec![0, 0, 3, 3, 5]);
}
