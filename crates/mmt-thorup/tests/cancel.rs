//! Mid-solve cancellation safety: a `CancelToken` fired while the solver
//! is running must never leave behind a partially-written distance array
//! that *looks* finished — any abandoned instance either holds the exact
//! answer (the cancel lost the race) or fails the SSSP certificate check.

use mmt_baselines::{dijkstra, verify_sssp};
use mmt_ch::build_parallel;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::CsrGraph;
use mmt_platform::CancelToken;
use mmt_thorup::{ThorupInstance, ThorupSolver};

#[test]
fn cancelled_solves_never_pass_verification_with_wrong_distances() {
    // Big enough that solves take measurable time, so cancels land at many
    // different expansion boundaries across trials.
    let el = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 12, 10).generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let solver = ThorupSolver::new(&g, &ch);
    let inst = ThorupInstance::new(&ch);
    let source = 0;
    let oracle = dijkstra(&g, source);

    let mut interrupted = 0;
    for trial in 0..24u32 {
        inst.reset(&ch);
        let token = CancelToken::new();
        let completed = std::thread::scope(|scope| {
            let canceller = {
                let token = &token;
                scope.spawn(move || {
                    // Spin a trial-dependent amount so the cancel lands at
                    // a different point of the solve each time, from
                    // before the first bucket expansion to near the end.
                    for _ in 0..trial * 1500 {
                        std::hint::spin_loop();
                    }
                    token.cancel();
                })
            };
            let completed = solver.solve_into_with_cancel(&inst, source, &token);
            canceller.join().unwrap();
            completed
        });
        let dist = inst.distances();
        if completed {
            // Cancel arrived after the last poll: the answer must be exact.
            assert_eq!(dist, oracle, "trial {trial}: completed solve is exact");
            continue;
        }
        interrupted += 1;
        // The abandoned instance is allowed to hold the exact answer (the
        // solve finished between the final poll and the cancel) — but a
        // partial array must never slip past the certificate check.
        if verify_sssp(&g, source, &dist).is_ok() {
            assert_eq!(
                dist, oracle,
                "trial {trial}: a partially-written distance array passed verification"
            );
        } else {
            assert_ne!(
                dist, oracle,
                "trial {trial}: exact distances were rejected by verification"
            );
        }
    }
    // trial 0 cancels before the solve starts, so at least one interruption
    // is guaranteed regardless of scheduling.
    assert!(interrupted >= 1, "no solve was ever interrupted");
}

#[test]
fn cancel_before_start_leaves_the_instance_untouched() {
    let el = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 6).generate();
    let g = CsrGraph::from_edge_list(&el);
    let ch = build_parallel(&el);
    let solver = ThorupSolver::new(&g, &ch);
    let inst = ThorupInstance::new(&ch);
    let token = CancelToken::new();
    token.cancel();
    assert!(!solver.solve_into_with_cancel(&inst, 0, &token));
    assert_eq!(inst.settled_count(), 0);
    assert!(
        verify_sssp(&g, 0, &inst.distances()).is_err(),
        "an untouched instance must not verify as a solution"
    );
}
