//! Seeded fault-injection (chaos) suite for the serving layer.
//!
//! Every scenario here ends with the service drained and every submitted
//! request resolved — a hang is a test failure, not a flake. Faults are
//! injected through `mmt_platform::FaultPlan`, which keys on operation
//! ordinals rather than wall clock, so each scenario replays identically
//! at a given seed whatever the thread timing. Injected panics carry an
//! `InjectedPanic` payload; the panic hook below silences exactly those,
//! so genuine bugs still print backtraces.

use mmt_baselines::dijkstra;
use mmt_ch::{build_serial, ChMode, ComponentHierarchy};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::{Dist, VertexId};
use mmt_graph::CsrGraph;
use mmt_platform::{FaultKind, FaultPlan, FaultSite, InjectedPanic, SeededFaults};
use mmt_thorup::service::{P2pAlgo, QueryRequest, QueryService, ShedPolicy, ShutdownMode};
use mmt_thorup::{GraphRegistry, ServiceError};
use std::collections::HashMap;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Silences injected panics (they are scheduled, not bugs) while
/// delegating every other panic to the default hook.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A one-tenant registry, the registry-era spelling of the old
/// single-graph constructor.
fn single(g: &CsrGraph, ch: Arc<ComponentHierarchy>) -> GraphRegistry {
    let mut registry = GraphRegistry::new();
    registry.register("default", g, ch).unwrap();
    registry
}

fn fixture(log_n: u32, seed: u64) -> (Arc<CsrGraph>, Arc<ComponentHierarchy>) {
    let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, 6);
    spec.seed = seed;
    let el = spec.generate();
    (
        Arc::new(CsrGraph::from_edge_list(&el)),
        Arc::new(build_serial(&el, ChMode::Collapsed)),
    )
}

/// Memoised Dijkstra oracle, so scenarios with repeated sources pay for
/// each ground-truth solve once.
struct Oracle<'g> {
    graph: &'g CsrGraph,
    rows: HashMap<VertexId, Vec<Dist>>,
}

impl<'g> Oracle<'g> {
    fn new(graph: &'g CsrGraph) -> Self {
        Self {
            graph,
            rows: HashMap::new(),
        }
    }

    fn row(&mut self, source: VertexId) -> &[Dist] {
        self.rows
            .entry(source)
            .or_insert_with(|| dijkstra(self.graph, source))
    }
}

#[test]
fn panic_at_each_site_loses_exactly_the_in_flight_request() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 11);
    for site in FaultSite::ALL {
        // One worker, sequential FIFO processing: site crossing `i` is
        // exactly query `i`, so the third query dies — deterministically.
        let plan = Arc::new(
            FaultPlan::builder()
                .fault_at(site, 2, FaultKind::Panic)
                .build(),
        );
        // Coalescing off: this test pins *per-request* site ordinals, and
        // the coalesced path fires Solve once per batch, not per query.
        let service = QueryService::builder()
            .workers(1)
            .no_coalescing()
            .fault_plan(Arc::clone(&plan))
            .build_registry(single(&g, Arc::clone(&ch)))
            .unwrap();
        let sources: Vec<VertexId> = (0..6).map(|i| i * 7 % g.n() as VertexId).collect();
        let handles: Vec<_> = sources
            .iter()
            .map(|&s| service.submit(s).unwrap())
            .collect();
        let mut oracle = Oracle::new(&g);
        for (i, (s, h)) in sources.iter().zip(handles).enumerate() {
            let outcome = h.wait();
            if i == 2 {
                assert_eq!(
                    outcome.unwrap_err(),
                    ServiceError::WorkerLost,
                    "site {}: the faulted request resolves typed",
                    site.name()
                );
            } else {
                assert_eq!(
                    outcome.unwrap(),
                    oracle.row(*s),
                    "site {}: query {i} survives its neighbour's panic",
                    site.name()
                );
            }
        }
        assert_eq!(plan.panics_fired(), 1, "site {}", site.name());
        assert_eq!(service.metrics().requests_lost(), 1, "site {}", site.name());
        assert_eq!(
            service.metrics().workers_restarted(),
            1,
            "site {}",
            site.name()
        );
        assert_eq!(
            service.metrics().inflight(),
            0,
            "site {}: gauge repaired",
            site.name()
        );
        // The respawned worker serves: the pool is back to full strength.
        assert_eq!(
            service.submit(1u32).unwrap().wait().unwrap(),
            oracle.row(1),
            "site {}",
            site.name()
        );
        service.shutdown(ShutdownMode::Drain);
    }
}

#[test]
fn batch_survives_a_mid_flight_panic_with_one_typed_loss() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 12);
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(FaultSite::Solve, 1, FaultKind::Panic)
            .build(),
    );
    let service = QueryService::builder()
        .workers(3)
        .fault_plan(plan)
        .build_registry(single(&g, ch))
        .unwrap();
    let sources: Vec<VertexId> = (0..10).collect();
    let rows = service.submit_batch(&sources).unwrap().wait();
    assert_eq!(rows.len(), sources.len());
    let mut oracle = Oracle::new(&g);
    let mut lost = 0;
    for (s, row) in sources.iter().zip(&rows) {
        match row {
            Ok(dist) => assert_eq!(&dist[..], oracle.row(*s), "source {s}"),
            Err(ServiceError::WorkerLost) => lost += 1,
            Err(other) => panic!("source {s}: unexpected outcome {other}"),
        }
    }
    assert_eq!(lost, 1, "exactly the in-flight member is lost");
    assert_eq!(service.metrics().requests_lost(), 1);
    assert_eq!(service.metrics().workers_restarted(), 1);
    // A follow-up batch is answered in full by the restored pool.
    let rows = service.submit_batch(&sources).unwrap().wait();
    for (s, row) in sources.iter().zip(&rows) {
        assert_eq!(&row.as_ref().unwrap()[..], oracle.row(*s));
    }
}

#[test]
fn stalls_and_alloc_pressure_slow_but_never_corrupt() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 13);
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(
                FaultSite::Dequeue,
                1,
                FaultKind::Stall(Duration::from_millis(5)),
            )
            .fault_at(
                FaultSite::Solve,
                2,
                FaultKind::Stall(Duration::from_millis(5)),
            )
            .fault_at(FaultSite::Solve, 4, FaultKind::AllocPressure(4 << 20))
            .fault_at(FaultSite::Reply, 3, FaultKind::AllocPressure(4 << 20))
            .build(),
    );
    // Coalescing off: the scheduled ordinals assume one Solve crossing
    // per request.
    let service = QueryService::builder()
        .workers(2)
        .no_coalescing()
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let sources: Vec<VertexId> = (0..8).map(|i| i * 5 % g.n() as VertexId).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    let mut oracle = Oracle::new(&g);
    for (s, h) in sources.iter().zip(handles) {
        assert_eq!(h.wait().unwrap(), oracle.row(*s), "source {s}");
    }
    assert_eq!(plan.panics_fired(), 0);
    assert_eq!(plan.stalls_fired(), 2);
    assert_eq!(plan.allocs_fired(), 2);
    assert_eq!(service.metrics().requests_lost(), 0);
    assert_eq!(service.metrics().workers_restarted(), 0);
    assert_eq!(service.metrics().served_full(), 8);
}

/// The headline chaos scenario, run at two distinct seeds: a seeded mix
/// of panics, stalls and allocation pressure against a multi-worker
/// service under steady query load. Invariants: every handle resolves,
/// every `Ok` answer matches the Dijkstra oracle, every scheduled panic
/// fires and costs exactly one request, and the pool ends at full
/// strength with nothing queued or in flight.
fn seeded_chaos_scenario(seed: u64) {
    silence_injected_panics();
    let (g, ch) = fixture(8, seed);
    let spec = SeededFaults {
        horizon: 24,
        panics: 3,
        stalls: 2,
        stall: Duration::from_millis(2),
        allocs: 2,
        alloc_bytes: 1 << 20,
    };
    let plan = Arc::new(FaultPlan::seeded(seed, spec));
    // Coalescing off: the scheduled==fired==lost ledger below assumes one
    // site crossing per request. The coalesced storm has its own seeded
    // test (`coalesced_seeded_storm_accounts_for_everything`).
    let service = QueryService::builder()
        .workers(2)
        .no_coalescing()
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    // Enough queries that every site's crossing count passes the fault
    // horizon even after panic-killed requests skip later sites.
    let queries = 40u32;
    let sources: Vec<VertexId> = (0..queries).map(|i| (i * 13) % g.n() as VertexId).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    let mut oracle = Oracle::new(&g);
    let mut lost = 0u64;
    for (s, h) in sources.iter().zip(handles) {
        match h.wait() {
            Ok(dist) => assert_eq!(dist, oracle.row(*s), "seed {seed:#x} source {s}"),
            Err(ServiceError::WorkerLost) => lost += 1,
            Err(other) => panic!("seed {seed:#x} source {s}: unexpected outcome {other}"),
        }
    }
    assert_eq!(
        plan.panics_fired(),
        plan.scheduled_panics(),
        "seed {seed:#x}: all scheduled panics reached"
    );
    assert_eq!(lost, plan.scheduled_panics(), "seed {seed:#x}");
    assert_eq!(service.metrics().requests_lost(), lost, "seed {seed:#x}");
    assert_eq!(
        service.metrics().workers_restarted(),
        plan.scheduled_panics(),
        "seed {seed:#x}: one respawn per panic"
    );
    assert_eq!(
        service.metrics().queue_depth(),
        0,
        "seed {seed:#x}: drained"
    );
    assert_eq!(service.metrics().inflight(), 0, "seed {seed:#x}: drained");
    // Full strength after the storm: every worker answers again.
    let final_rows = service.submit_batch(&[0, 1, 2, 3]).unwrap().wait();
    for (s, row) in [0u32, 1, 2, 3].iter().zip(&final_rows) {
        assert_eq!(
            &row.as_ref().unwrap()[..],
            oracle.row(*s),
            "seed {seed:#x} post-chaos source {s}"
        );
    }
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn seeded_chaos_seed_a() {
    seeded_chaos_scenario(0x00c0_ffee);
}

#[test]
fn seeded_chaos_seed_b() {
    seeded_chaos_scenario(0xdead_beef);
}

#[test]
fn shedding_under_sustained_overload_stays_bounded_and_loud() {
    silence_injected_panics();
    // Deterministic half: no workers, so the queue state is fully
    // controlled. Expired requests occupy the queue; fresh submissions
    // evict them.
    let (g, ch) = fixture(6, 14);
    let service = QueryService::builder()
        .workers(0)
        .queue_capacity(3)
        .shed_policy(ShedPolicy::RejectOldestExpired)
        .build_registry(single(&g, Arc::clone(&ch)))
        .unwrap();
    let dead: Vec<_> = (0..3u32)
        .map(|s| {
            service
                .try_submit(QueryRequest::new(s).deadline(Duration::ZERO))
                .unwrap()
        })
        .collect();
    let fresh: Vec<_> = (0..3u32).map(|s| service.try_submit(s).unwrap()).collect();
    for h in dead {
        assert_eq!(h.wait().unwrap_err(), ServiceError::Shed);
    }
    assert_eq!(service.metrics().shed(), 3);
    assert_eq!(service.metrics().queue_depth(), 3, "never above capacity");
    drop(fresh);
    drop(service);

    // Live half: one worker, sustained rounds of tiny-deadline bursts.
    // The queue must stay within its bound, the shed counter must be
    // monotone, shed handles must say `Shed` (never silence), and the
    // service must still answer once the storm passes.
    let (g, ch) = fixture(10, 15);
    let capacity = 4usize;
    let service = QueryService::builder()
        .workers(1)
        .queue_capacity(capacity)
        .shed_policy(ShedPolicy::RejectOldestExpired)
        .build_registry(single(&g, ch))
        .unwrap();
    let mut handles = Vec::new();
    let mut last_shed = 0u64;
    for round in 0..20u32 {
        for i in 0..6u32 {
            let source = (round * 6 + i) % g.n() as VertexId;
            let request = QueryRequest::new(source).deadline(Duration::from_micros(200));
            match service.try_submit(request) {
                Ok(h) => handles.push((source, h)),
                Err(ServiceError::Overloaded { capacity: c }) => assert_eq!(c, capacity),
                Err(other) => panic!("round {round}: unexpected admission error {other}"),
            }
            assert!(
                service.metrics().queue_depth() <= capacity as u64,
                "round {round}: queue depth within bound"
            );
            let shed = service.metrics().shed();
            assert!(shed >= last_shed, "round {round}: shed counter monotone");
            last_shed = shed;
        }
    }
    let mut oracle = Oracle::new(&g);
    let mut outcomes: HashMap<&'static str, u64> = HashMap::new();
    for (s, h) in handles {
        let label = match h.wait() {
            Ok(dist) => {
                assert_eq!(dist, oracle.row(s), "source {s}");
                "ok"
            }
            Err(ServiceError::Shed) => "shed",
            Err(ServiceError::DeadlineExceeded) => "deadline",
            Err(ServiceError::Cancelled) => "cancelled",
            Err(other) => panic!("source {s}: unexpected outcome {other}"),
        };
        *outcomes.entry(label).or_default() += 1;
    }
    assert_eq!(
        outcomes.get("shed").copied().unwrap_or(0),
        service.metrics().shed(),
        "every eviction surfaced on a handle: {outcomes:?}"
    );
    // Post-overload: a request with no deadline is served normally.
    assert_eq!(
        service.submit(3u32).unwrap().wait().unwrap(),
        oracle.row(3),
        "service recovers after the overload clears"
    );
    assert_eq!(service.metrics().queue_depth(), 0);
}

#[test]
fn dropped_replies_sever_exactly_the_scheduled_clients() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 16);
    // One worker, FIFO: reply-site crossing `i` is exactly query `i`, so
    // queries 1 and 3 lose their reply channels — deterministically.
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(FaultSite::Reply, 1, FaultKind::DropReply)
            .fault_at(FaultSite::Reply, 3, FaultKind::DropReply)
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let sources: Vec<VertexId> = (0..6).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    let mut oracle = Oracle::new(&g);
    for (i, (s, h)) in sources.iter().zip(handles).enumerate() {
        let outcome = h.wait();
        if i == 1 || i == 3 {
            assert_eq!(
                outcome.unwrap_err(),
                ServiceError::ShutDown,
                "query {i}: a severed reply reads as a disconnect"
            );
        } else {
            assert_eq!(outcome.unwrap(), oracle.row(*s), "query {i} unaffected");
        }
    }
    assert_eq!(plan.drops_fired(), 2);
    assert_eq!(
        service.metrics().requests_lost(),
        2,
        "each dropped reply is accounted"
    );
    assert_eq!(
        service.metrics().workers_restarted(),
        0,
        "a dropped reply is not a crash"
    );
    assert_eq!(service.metrics().inflight(), 0, "gauge intact");
}

#[test]
fn slow_clients_stall_without_losing_answers() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 17);
    // Stalls at the client-wait site model slow consumers: answers must
    // be unaffected, only the clients' own waits pay the delay.
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(
                FaultSite::ClientWait,
                0,
                FaultKind::Stall(Duration::from_millis(5)),
            )
            .fault_at(
                FaultSite::ClientWait,
                2,
                FaultKind::Stall(Duration::from_millis(5)),
            )
            .build(),
    );
    let service = QueryService::builder()
        .workers(2)
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let sources: Vec<VertexId> = (0..4).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    let mut oracle = Oracle::new(&g);
    for (s, h) in sources.iter().zip(handles) {
        assert_eq!(h.wait().unwrap(), oracle.row(*s), "source {s}");
    }
    assert_eq!(plan.stalls_fired(), 2);
    assert_eq!(service.metrics().requests_lost(), 0);
    assert_eq!(service.metrics().served_full(), 4);
}

#[test]
fn client_side_drop_withdraws_the_query() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 18);
    // A reply-drop at the client-wait site models a client that walks
    // away mid-wait: its query is withdrawn (Cancelled), the others and
    // the worker are untouched.
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(FaultSite::ClientWait, 1, FaultKind::DropReply)
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let h0 = service.submit(0u32).unwrap();
    let h1 = service.submit(1u32).unwrap();
    let h2 = service.submit(2u32).unwrap();
    let mut oracle = Oracle::new(&g);
    assert_eq!(h0.wait().unwrap(), oracle.row(0));
    assert_eq!(
        h1.wait().unwrap_err(),
        ServiceError::Cancelled,
        "the walked-away client sees its own withdrawal"
    );
    assert_eq!(h2.wait().unwrap(), oracle.row(2));
    assert_eq!(plan.drops_fired(), 1);
    assert_eq!(
        service.metrics().workers_restarted(),
        0,
        "client-side faults never touch the pool"
    );
}

#[test]
fn evicting_one_tenant_under_load_is_exact_and_contained() {
    silence_injected_panics();
    let (g_a, ch_a) = fixture(8, 19);
    let (g_b, ch_b) = fixture(7, 20);
    let mut registry = GraphRegistry::new();
    let a = registry.register("alpha", &g_a, ch_a).unwrap();
    let b = registry.register("beta", &g_b, ch_b).unwrap();
    let service = QueryService::builder()
        .workers(1)
        .queue_capacity(32)
        .build_registry(registry)
        .unwrap();
    // Load both tenants, then evict alpha while its queue is still busy.
    let handles_a: Vec<_> = (0..12u32)
        .map(|i| {
            let s = (i * 13) % g_a.n() as VertexId;
            (s, service.submit(QueryRequest::on(a, s)).unwrap())
        })
        .collect();
    let handles_b: Vec<_> = (0..12u32)
        .map(|i| {
            let s = (i * 7) % g_b.n() as VertexId;
            (s, service.submit(QueryRequest::on(b, s)).unwrap())
        })
        .collect();
    assert!(service.evict_graph(a).unwrap());
    // Exact accounting: every alpha handle resolves either with a real
    // answer (served before the eviction closed the shard) or with the
    // typed eviction error — never silence, never anything else.
    let mut oracle_a = Oracle::new(&g_a);
    let mut served = 0u64;
    let mut evicted = 0u64;
    for (s, h) in handles_a {
        match h.wait() {
            Ok(dist) => {
                assert_eq!(dist, oracle_a.row(s), "source {s}");
                served += 1;
            }
            Err(ServiceError::GraphEvicted) => evicted += 1,
            Err(other) => panic!("source {s}: unexpected outcome {other}"),
        }
    }
    assert_eq!(served + evicted, 12);
    assert_eq!(service.metrics().rejected_evicted(), evicted);
    assert!(service.metrics().served_full() >= served);
    // The evicted tenant's bytes are gone; admission is typed-closed.
    assert_eq!(service.registry().graph_resident_bytes(a).unwrap(), 0);
    assert_eq!(
        service.submit(QueryRequest::on(a, 0)).unwrap_err(),
        ServiceError::GraphEvicted
    );
    // The surviving tenant never noticed: all answers exact.
    let mut oracle_b = Oracle::new(&g_b);
    for (s, h) in handles_b {
        assert_eq!(h.wait().unwrap(), oracle_b.row(s), "beta source {s}");
    }
    assert!(service.registry().graph_resident_bytes(b).unwrap() > 0);
    assert_eq!(service.metrics().inflight(), 0);
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn coalesced_panic_at_formation_loses_exactly_the_opener() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 29);
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(FaultSite::Coalesce, 0, FaultKind::Panic)
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .coalesce_budget(Duration::from_millis(300))
        .coalesce_batch_cap(4)
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    // The first dequeued query opens the first formation and dies at the
    // Coalesce site before gathering anyone — exactly one typed loss.
    let sources: Vec<VertexId> = (0..4).map(|i| (i * 17) % g.n() as VertexId).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    let mut oracle = Oracle::new(&g);
    for (i, (s, h)) in sources.iter().zip(handles).enumerate() {
        match h.wait() {
            Ok(dist) => assert_eq!(dist, oracle.row(*s), "source {s}"),
            Err(ServiceError::WorkerLost) => {
                assert_eq!(i, 0, "only the opener of the faulted formation dies")
            }
            Err(other) => panic!("source {s}: unexpected outcome {other}"),
        }
    }
    assert_eq!(plan.panics_fired(), 1);
    assert_eq!(service.metrics().requests_lost(), 1);
    assert_eq!(service.metrics().workers_restarted(), 1);
    assert_eq!(service.metrics().queue_depth(), 0);
    assert_eq!(service.metrics().inflight(), 0);
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn coalesced_mid_batch_solve_panic_loses_exactly_the_batch() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 31);
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(FaultSite::Solve, 0, FaultKind::Panic)
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .coalesce_budget(Duration::from_millis(500))
        .coalesce_batch_cap(4)
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, Arc::clone(&ch)))
        .unwrap();
    // Four queries inside a generous window with cap 4: the worker forms
    // one four-member batch, and the Solve-site panic takes the whole
    // batch down — four typed losses, one respawn, nothing silent.
    let sources: Vec<VertexId> = (0..4).map(|i| (i * 11) % g.n() as VertexId).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    for (s, h) in sources.iter().zip(handles) {
        assert_eq!(
            h.wait().unwrap_err(),
            ServiceError::WorkerLost,
            "source {s}: every member of the panicked batch resolves typed"
        );
    }
    assert_eq!(plan.panics_fired(), 1);
    assert_eq!(service.metrics().coalesced_batches(), 1);
    assert_eq!(service.metrics().coalesced_queries(), 4);
    assert_eq!(service.metrics().requests_lost(), 4);
    // The respawned worker serves (and coalesces) again.
    let mut oracle = Oracle::new(&g);
    let again: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    for (s, h) in sources.iter().zip(again) {
        assert_eq!(h.wait().unwrap(), oracle.row(*s), "post-respawn source {s}");
    }
    // Served-after-respawn proves the supervisor ran, so the restart is
    // countable by now.
    assert_eq!(service.metrics().workers_restarted(), 1);
    assert_eq!(service.metrics().coalesced_batches(), 2);
    assert_eq!(service.metrics().queue_depth(), 0);
    assert_eq!(service.metrics().inflight(), 0);
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn eviction_mid_coalesce_resolves_every_member_typed() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 37);
    // A stall at the Coalesce site holds the worker mid-formation long
    // enough for the test thread to evict the graph underneath it.
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(
                FaultSite::Coalesce,
                0,
                FaultKind::Stall(Duration::from_millis(60)),
            )
            .build(),
    );
    let mut registry = GraphRegistry::new();
    let id = registry.register("default", &g, ch).unwrap();
    let service = QueryService::builder()
        .workers(1)
        .coalesce_budget(Duration::from_millis(300))
        .fault_plan(plan)
        .build_registry(registry)
        .unwrap();
    let sources: Vec<VertexId> = (0..6).map(|i| (i * 19) % g.n() as VertexId).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    // Let the worker dequeue the opener and enter the stall, then pull
    // the graph out from under the forming batch.
    std::thread::sleep(Duration::from_millis(15));
    assert!(service.evict_graph(id).unwrap());
    let mut oracle = Oracle::new(&g);
    let mut served = 0u64;
    let mut evicted = 0u64;
    for (s, h) in sources.iter().zip(handles) {
        match h.wait() {
            Ok(dist) => {
                assert_eq!(dist, oracle.row(*s), "source {s}");
                served += 1;
            }
            Err(ServiceError::GraphEvicted) => evicted += 1,
            Err(other) => panic!("source {s}: unexpected outcome {other}"),
        }
    }
    // Exact ledger: nothing lost, nothing silent, every eviction typed
    // and counted — including members already held by the stalled worker.
    assert_eq!(served + evicted, 6);
    assert!(evicted >= 1, "the stalled formation must see the eviction");
    assert_eq!(service.metrics().rejected_evicted(), evicted);
    assert_eq!(service.metrics().requests_lost(), 0);
    assert_eq!(service.metrics().queue_depth(), 0);
    assert_eq!(service.metrics().inflight(), 0);
    assert_eq!(
        service.submit(QueryRequest::on(id, 0)).unwrap_err(),
        ServiceError::GraphEvicted
    );
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn deadline_expiring_during_coalescing_sheds_loudly() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 41);
    // The stall pins the worker at formation for longer than the opener's
    // deadline; the gather-time token check must shed it typed — the
    // batch never solves a member late.
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(
                FaultSite::Coalesce,
                0,
                FaultKind::Stall(Duration::from_millis(50)),
            )
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .coalesce_budget(Duration::from_millis(300))
        .fault_plan(plan)
        .build_registry(single(&g, ch))
        .unwrap();
    let doomed = service
        .submit(QueryRequest::new(3).deadline(Duration::from_millis(10)))
        .unwrap();
    assert_eq!(doomed.wait().unwrap_err(), ServiceError::DeadlineExceeded);
    assert_eq!(service.metrics().rejected_deadline(), 1);
    assert_eq!(service.metrics().requests_lost(), 0);
    // An undoomed follow-up is served exactly.
    let h = service.submit(5u32).unwrap();
    assert_eq!(h.wait().unwrap(), dijkstra(&g, 5));
    assert_eq!(service.metrics().inflight(), 0);
    service.shutdown(ShutdownMode::Drain);
}

/// The coalesced counterpart of `seeded_chaos_scenario`: the same seeded
/// storm of panics, stalls and allocation pressure, but with the
/// coalescing scheduler on, where one Solve-site panic can take a whole
/// batch. The ledger weakens from per-request to per-crossing — losses
/// observed by clients must equal `requests_lost`, restarts must equal
/// panics fired — but nothing may hang, nothing may resolve silently,
/// and every Ok answer must still match the oracle exactly.
fn coalesced_seeded_storm(seed: u64) {
    silence_injected_panics();
    let (g, ch) = fixture(8, seed);
    // Horizon 12: under coalescing, Dequeue and Solve cross once per
    // *formation*, and 48 queries at cap 4 (minus at most 3 panic-killed
    // requests) guarantee at least twelve formations — so every scheduled
    // fault fires during the storm, never during the post-storm round.
    let spec = SeededFaults {
        horizon: 12,
        panics: 3,
        stalls: 2,
        stall: Duration::from_millis(2),
        allocs: 2,
        alloc_bytes: 1 << 20,
    };
    let plan = Arc::new(FaultPlan::seeded(seed, spec));
    let service = QueryService::builder()
        .workers(2)
        .coalesce_budget(Duration::from_millis(5))
        .coalesce_batch_cap(4)
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let queries = 48u32;
    let sources: Vec<VertexId> = (0..queries).map(|i| (i * 13) % g.n() as VertexId).collect();
    let handles: Vec<_> = sources
        .iter()
        .map(|&s| service.submit(s).unwrap())
        .collect();
    let mut oracle = Oracle::new(&g);
    let mut lost = 0u64;
    for (s, h) in sources.iter().zip(handles) {
        match h.wait() {
            Ok(dist) => assert_eq!(dist, oracle.row(*s), "seed {seed:#x} source {s}"),
            Err(ServiceError::WorkerLost) => lost += 1,
            Err(other) => panic!("seed {seed:#x} source {s}: unexpected outcome {other}"),
        }
    }
    // Batch fan-out makes lost >= panics that hit Solve with company, but
    // the books must still balance exactly.
    assert_eq!(service.metrics().requests_lost(), lost, "seed {seed:#x}");
    assert_eq!(
        plan.panics_fired(),
        plan.scheduled_panics(),
        "seed {seed:#x}: all scheduled panics reached within the storm"
    );
    assert!(lost >= plan.panics_fired(), "seed {seed:#x}");
    let m = service.metrics().snapshot();
    assert_eq!(m.queue_depth, 0, "seed {seed:#x}: drained");
    assert_eq!(m.inflight, 0, "seed {seed:#x}: drained");
    assert!(
        m.coalesced_queries >= 2 * m.coalesced_batches,
        "seed {seed:#x}: multi-member formations only"
    );
    // Full strength after the storm.
    let final_rows = service.submit_batch(&[0, 1, 2, 3]).unwrap().wait();
    for (s, row) in [0u32, 1, 2, 3].iter().zip(&final_rows) {
        assert_eq!(
            &row.as_ref().unwrap()[..],
            oracle.row(*s),
            "seed {seed:#x} post-storm source {s}"
        );
    }
    // The post-storm round ran on respawned workers, so every restart is
    // countable by now: one per fired panic, no ghosts.
    assert_eq!(
        service.metrics().workers_restarted(),
        plan.panics_fired(),
        "seed {seed:#x}: one respawn per fired panic"
    );
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn coalesced_seeded_storm_accounts_for_everything() {
    coalesced_seeded_storm(0x00c0_ffee);
    coalesced_seeded_storm(0x5eed_beef);
}

const P2P_ALGOS: [P2pAlgo; 3] = [P2pAlgo::Thorup, P2pAlgo::Bidirectional, P2pAlgo::DeltaEarly];

#[test]
fn st_panic_at_each_site_loses_exactly_the_faulted_query() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 43);
    let n = g.n() as VertexId;
    // Every fault site a point-to-point request crosses, with the faulted
    // request running each P2P solver in turn — a panic inside any of the
    // three solve paths (Thorup target, bidirectional, Δ early-exit) must
    // cost exactly that request, typed, and nothing else.
    for site in [FaultSite::Dequeue, FaultSite::Solve, FaultSite::Reply] {
        for faulted_algo in P2P_ALGOS {
            let plan = Arc::new(
                FaultPlan::builder()
                    .fault_at(site, 2, FaultKind::Panic)
                    .build(),
            );
            // One worker, coalescing off: site crossing `i` is exactly
            // query `i`, so the third query dies — deterministically.
            let service = QueryService::builder()
                .workers(1)
                .no_coalescing()
                .fault_plan(Arc::clone(&plan))
                .build_registry(single(&g, Arc::clone(&ch)))
                .unwrap();
            let pairs: Vec<(VertexId, VertexId)> =
                (0..6).map(|i| ((i * 7) % n, (i * 11 + 3) % n)).collect();
            let handles: Vec<_> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(s, t))| {
                    // Query 2 (the one the plan kills) runs the algo under
                    // test; its neighbours rotate through the others.
                    let algo = if i == 2 {
                        faulted_algo
                    } else {
                        P2P_ALGOS[i % 3]
                    };
                    service
                        .submit_p2p(QueryRequest::st(s, t).algo(algo))
                        .unwrap()
                })
                .collect();
            let mut oracle = Oracle::new(&g);
            for (i, (&(s, t), h)) in pairs.iter().zip(handles).enumerate() {
                let outcome = h.wait();
                if i == 2 {
                    assert_eq!(
                        outcome.unwrap_err(),
                        ServiceError::WorkerLost,
                        "site {} algo {faulted_algo:?}: the faulted st request resolves typed",
                        site.name()
                    );
                } else {
                    assert_eq!(
                        outcome.unwrap(),
                        oracle.row(s)[t as usize],
                        "site {} algo {faulted_algo:?}: st query {i} survives its \
                         neighbour's panic",
                        site.name()
                    );
                }
            }
            assert_eq!(plan.panics_fired(), 1, "site {}", site.name());
            assert_eq!(service.metrics().requests_lost(), 1, "site {}", site.name());
            assert_eq!(
                service.metrics().workers_restarted(),
                1,
                "site {}",
                site.name()
            );
            assert_eq!(service.metrics().inflight(), 0, "site {}", site.name());
            // The respawned worker still serves targeted queries — with the
            // algo whose in-flight state the panic destroyed.
            let d = service
                .submit_p2p(QueryRequest::st(1, 5).algo(faulted_algo))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(d, oracle.row(1)[5], "site {}: pool restored", site.name());
            service.shutdown(ShutdownMode::Drain);
        }
    }
}

#[test]
fn st_stalls_and_alloc_pressure_delay_but_never_corrupt() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 47);
    let n = g.n() as VertexId;
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(
                FaultSite::Dequeue,
                1,
                FaultKind::Stall(Duration::from_millis(5)),
            )
            .fault_at(
                FaultSite::Solve,
                3,
                FaultKind::Stall(Duration::from_millis(5)),
            )
            .fault_at(FaultSite::Reply, 2, FaultKind::AllocPressure(4 << 20))
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .no_coalescing()
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let pairs: Vec<(VertexId, VertexId)> =
        (0..9).map(|i| ((i * 5) % n, (i * 13 + 1) % n)).collect();
    let handles: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| {
            service
                .submit_p2p(QueryRequest::st(s, t).algo(P2P_ALGOS[i % 3]))
                .unwrap()
        })
        .collect();
    let mut oracle = Oracle::new(&g);
    for (&(s, t), h) in pairs.iter().zip(handles) {
        assert_eq!(
            h.wait().unwrap(),
            oracle.row(s)[t as usize],
            "pair ({s},{t})"
        );
    }
    assert_eq!(plan.panics_fired(), 0);
    assert_eq!(plan.stalls_fired(), 2);
    assert_eq!(plan.allocs_fired(), 1);
    assert_eq!(service.metrics().requests_lost(), 0);
    assert_eq!(service.metrics().workers_restarted(), 0);
    assert_eq!(service.metrics().served_target(), 9);
}

#[test]
fn st_dropped_reply_severs_exactly_the_scheduled_client() {
    silence_injected_panics();
    let (g, ch) = fixture(7, 53);
    let n = g.n() as VertexId;
    // One worker, FIFO: reply-site crossing `i` is exactly st query `i`,
    // so query 1 loses its reply channel — deterministically.
    let plan = Arc::new(
        FaultPlan::builder()
            .fault_at(FaultSite::Reply, 1, FaultKind::DropReply)
            .build(),
    );
    let service = QueryService::builder()
        .workers(1)
        .no_coalescing()
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    let pairs: Vec<(VertexId, VertexId)> = (0..4).map(|i| ((i * 3) % n, (i * 9 + 2) % n)).collect();
    let handles: Vec<_> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| {
            service
                .submit_p2p(QueryRequest::st(s, t).algo(P2P_ALGOS[i % 3]))
                .unwrap()
        })
        .collect();
    let mut oracle = Oracle::new(&g);
    for (i, (&(s, t), h)) in pairs.iter().zip(handles).enumerate() {
        let outcome = h.wait();
        if i == 1 {
            assert_eq!(
                outcome.unwrap_err(),
                ServiceError::ShutDown,
                "st query {i}: a severed reply reads as a disconnect"
            );
        } else {
            assert_eq!(outcome.unwrap(), oracle.row(s)[t as usize], "st query {i}");
        }
    }
    assert_eq!(plan.drops_fired(), 1);
    assert_eq!(service.metrics().requests_lost(), 1);
    assert_eq!(
        service.metrics().workers_restarted(),
        0,
        "a dropped reply is not a crash"
    );
    assert_eq!(service.metrics().inflight(), 0);
}

/// The mixed-shape storm: the seeded panic/stall/alloc mix of
/// `seeded_chaos_scenario`, but with full-SSSP and point-to-point
/// requests interleaved (every P2P solver in rotation). The ledger must
/// stay exact across shapes: every scheduled panic fires, each costs
/// exactly one request (of either kind), restarts equal panics, and the
/// drained service answers both shapes afterwards.
fn mixed_shape_seeded_storm(seed: u64) {
    silence_injected_panics();
    let (g, ch) = fixture(8, seed);
    let n = g.n() as VertexId;
    let spec = SeededFaults {
        horizon: 24,
        panics: 3,
        stalls: 2,
        stall: Duration::from_millis(2),
        allocs: 2,
        alloc_bytes: 1 << 20,
    };
    let plan = Arc::new(FaultPlan::seeded(seed, spec));
    // Coalescing off: the scheduled==fired==lost ledger assumes one site
    // crossing per request, for targeted and full requests alike.
    let service = QueryService::builder()
        .workers(2)
        .no_coalescing()
        .fault_plan(Arc::clone(&plan))
        .build_registry(single(&g, ch))
        .unwrap();
    enum Shape {
        Full(VertexId, mmt_thorup::service::QueryHandle),
        St(VertexId, VertexId, mmt_thorup::service::TargetHandle),
    }
    // 40 requests alternating full/st; enough that every site's crossing
    // count passes the horizon even after panic-killed requests skip
    // later sites.
    let handles: Vec<Shape> = (0..40u32)
        .map(|i| {
            let s = (i * 13) % n;
            if i % 2 == 0 {
                Shape::Full(s, service.submit(s).unwrap())
            } else {
                let t = (i * 29 + 5) % n;
                let algo = P2P_ALGOS[(i as usize / 2) % 3];
                Shape::St(
                    s,
                    t,
                    service
                        .submit_p2p(QueryRequest::st(s, t).algo(algo))
                        .unwrap(),
                )
            }
        })
        .collect();
    let mut oracle = Oracle::new(&g);
    let mut lost = 0u64;
    let mut st_served = 0u64;
    for shape in handles {
        match shape {
            Shape::Full(s, h) => match h.wait() {
                Ok(dist) => assert_eq!(dist, oracle.row(s), "seed {seed:#x} source {s}"),
                Err(ServiceError::WorkerLost) => lost += 1,
                Err(other) => panic!("seed {seed:#x} source {s}: unexpected outcome {other}"),
            },
            Shape::St(s, t, h) => match h.wait() {
                Ok(d) => {
                    assert_eq!(
                        d,
                        oracle.row(s)[t as usize],
                        "seed {seed:#x} pair ({s},{t})"
                    );
                    st_served += 1;
                }
                Err(ServiceError::WorkerLost) => lost += 1,
                Err(other) => panic!("seed {seed:#x} pair ({s},{t}): unexpected outcome {other}"),
            },
        }
    }
    assert_eq!(
        plan.panics_fired(),
        plan.scheduled_panics(),
        "seed {seed:#x}: all scheduled panics reached"
    );
    assert_eq!(lost, plan.scheduled_panics(), "seed {seed:#x}");
    assert_eq!(service.metrics().requests_lost(), lost, "seed {seed:#x}");
    assert_eq!(
        service.metrics().workers_restarted(),
        plan.scheduled_panics(),
        "seed {seed:#x}: one respawn per panic"
    );
    assert!(st_served >= 15, "seed {seed:#x}: the storm exercised st");
    assert_eq!(
        service.metrics().served_target(),
        st_served,
        "seed {seed:#x}"
    );
    assert_eq!(
        service.metrics().queue_depth(),
        0,
        "seed {seed:#x}: drained"
    );
    assert_eq!(service.metrics().inflight(), 0, "seed {seed:#x}: drained");
    // Full strength after the storm, in both shapes.
    assert_eq!(
        service.submit(1u32).unwrap().wait().unwrap(),
        oracle.row(1),
        "seed {seed:#x} post-storm full"
    );
    for algo in P2P_ALGOS {
        let d = service
            .submit_p2p(QueryRequest::st(2, 9).algo(algo))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(d, oracle.row(2)[9], "seed {seed:#x} post-storm {algo:?}");
    }
    service.shutdown(ShutdownMode::Drain);
}

#[test]
fn mixed_shape_seeded_storm_seed_a() {
    mixed_shape_seeded_storm(0x0051_7e57);
}

#[test]
fn mixed_shape_seeded_storm_seed_b() {
    mixed_shape_seeded_storm(0xfeed_f00d);
}
