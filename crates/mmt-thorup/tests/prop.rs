//! Property tests: Thorup equals Dijkstra on arbitrary graphs, and the
//! solver's post-state invariants hold.

use mmt_baselines::dijkstra;
use mmt_ch::{build_serial, ChMode};
use mmt_graph::types::{Edge, EdgeList, INF};
use mmt_graph::CsrGraph;
use mmt_thorup::{ThorupInstance, ThorupSolver};
use proptest::prelude::*;

fn arb_case() -> impl Strategy<Value = (EdgeList, u32, ChMode)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..500).prop_map(|(u, v, w)| Edge::new(u, v, w));
        (
            proptest::collection::vec(edge, 0..120).prop_map(move |edges| EdgeList { n, edges }),
            0..n as u32,
            prop_oneof![Just(ChMode::Collapsed), Just(ChMode::Faithful)],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn thorup_equals_dijkstra((el, s, mode) in arb_case()) {
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, mode);
        let solver = ThorupSolver::new(&g, &ch);
        prop_assert_eq!(solver.solve(s), dijkstra(&g, s));
    }

    #[test]
    fn post_state_invariants((el, s, mode) in arb_case()) {
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, mode);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        solver.solve_into(&inst, s);
        for v in 0..g.n() as u32 {
            let d = inst.dist_of(v);
            // settled <=> reachable
            prop_assert_eq!(inst.is_settled(v), d != INF, "vertex {}", v);
        }
        // reusing the instance after reset gives the same answer
        let first = inst.distances();
        inst.reset(&ch);
        solver.solve_into(&inst, s);
        prop_assert_eq!(first, inst.distances());
    }
}
