//! Per-query mutable state for one Thorup SSSP computation.
//!
//! The paper's headline economics (Section 5.2): "It is more memory
//! efficient to allocate a new instance of the CH than it is to create a
//! copy of the entire graph. Thus, multiple Thorup queries using a shared
//! CH is more efficient than several Δ-stepping queries each with a
//! separate copy of the graph." Everything a query mutates lives here —
//! the graph and the hierarchy stay frozen and shared:
//!
//! * `dist` — tentative distances (one atomic per vertex);
//! * `mind` — per-CH-node lower bound on the minimum tentative distance of
//!   its unsettled vertices (the paper's `minD`);
//! * `unsettled` — per-CH-node count of not-yet-settled vertices beneath;
//! * `settled` — one bit per vertex.
//!
//! The distance/`mind` arrays are generic over
//! [`MinCell`](mmt_platform::MinCell): [`ThorupInstance`] is the wide
//! (`u64`) shape every existing caller uses, and [`CompactThorupInstance`]
//! halves both arrays to `u32` cells for graphs whose weight sum certifies
//! that no finite distance can reach the narrow sentinel — the Thorup-side
//! twin of the compact Δ-stepping kernel's locality argument. Solver
//! behaviour is bit-identical across widths (the `MinCell` bijection
//! contract); only the bytes per touched cell change.

use mmt_ch::ComponentHierarchy;
use mmt_graph::compact::COMPACT_DIST_INF;
use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::{CompactError, CsrGraph};
use mmt_platform::scratch::BufferPool;
use mmt_platform::{AtomicBitSet, AtomicMinU32, AtomicMinU64, MinCell};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Mutable state of one SSSP query over a shared Component Hierarchy,
/// generic over the distance-cell width (see the module docs).
#[derive(Debug)]
pub struct ThorupInstanceIn<C: MinCell> {
    pub(crate) dist: Vec<C>,
    pub(crate) mind: Vec<C>,
    pub(crate) unsettled: Vec<AtomicU32>,
    pub(crate) settled: AtomicBitSet,
    /// Cooperative cancellation flag for targeted (s–t) queries.
    pub(crate) stop: AtomicBool,
    /// Recycled `toVisit` scan buffers: each visit frame borrows one for
    /// all of its phases, so steady-state scans allocate nothing. Survives
    /// [`reset`](Self::reset) — warm buffers are the point.
    pub(crate) scan_pool: BufferPool<u32>,
}

/// The wide (`u64`-cell) instance — the workspace default, valid for any
/// graph.
pub type ThorupInstance = ThorupInstanceIn<AtomicMinU64>;

/// The compact (`u32`-cell) instance: `dist` and `mind` at half width.
/// Construct through [`CompactThorupInstance::try_new`], which certifies
/// the narrowing the same way `CompactSplitCsr` does.
pub type CompactThorupInstance = ThorupInstanceIn<AtomicMinU32>;

impl<C: MinCell> ThorupInstanceIn<C> {
    /// Allocates a fresh instance shaped for `ch`, ready for one query.
    ///
    /// For the compact width prefer [`CompactThorupInstance::try_new`],
    /// which certifies the graph first; this constructor trusts the
    /// caller's certification.
    pub fn new(ch: &ComponentHierarchy) -> Self {
        let inst = Self {
            dist: (0..ch.n()).map(|_| C::new_cell(INF)).collect(),
            mind: (0..ch.num_nodes()).map(|_| C::new_cell(INF)).collect(),
            unsettled: (0..ch.num_nodes()).map(|_| AtomicU32::new(0)).collect(),
            settled: AtomicBitSet::new(ch.n()),
            stop: AtomicBool::new(false),
            scan_pool: BufferPool::new(),
        };
        inst.reset_counts(ch);
        inst
    }

    /// Re-arms a used instance for another query over the same hierarchy
    /// (cheaper than reallocating; `multi::QueryEngine` reuses instances
    /// this way).
    pub fn reset(&self, ch: &ComponentHierarchy) {
        for d in &self.dist {
            d.store(INF);
        }
        for m in &self.mind {
            m.store(INF);
        }
        self.settled.clear_all();
        self.stop.store(false, Ordering::Release);
        self.reset_counts(ch);
    }

    fn reset_counts(&self, ch: &ComponentHierarchy) {
        assert_eq!(
            self.mind.len(),
            ch.num_nodes(),
            "instance/hierarchy mismatch"
        );
        for node in 0..ch.num_nodes() {
            self.unsettled[node].store(ch.leaves_below(node as u32), Ordering::Relaxed);
        }
    }

    /// Current tentative distance of `v`.
    #[inline]
    pub fn dist_of(&self, v: VertexId) -> Dist {
        self.dist[v as usize].load()
    }

    /// Snapshot of all distances (the query result).
    pub fn distances(&self) -> Vec<Dist> {
        self.dist.iter().map(|d| d.load()).collect()
    }

    /// Copies all distances into `out` (cleared first). Does not allocate
    /// when `out` already has the capacity — the batched serving path
    /// writes results into pooled buffers this way.
    pub fn copy_distances_into(&self, out: &mut Vec<Dist>) {
        out.clear();
        out.extend(self.dist.iter().map(|d| d.load()));
    }

    /// Number of `toVisit` scan buffers this instance has ever allocated.
    /// Flat across a window of queries ⇒ the scans ran allocation-free.
    pub fn scan_buffers_created(&self) -> usize {
        self.scan_pool.created()
    }

    /// True if `v` has been settled (`d(v) = δ(v)` finalised).
    #[inline]
    pub fn is_settled(&self, v: VertexId) -> bool {
        self.settled.get(v as usize)
    }

    /// Number of settled vertices.
    pub fn settled_count(&self) -> usize {
        self.settled.count_ones()
    }

    /// Heap bytes of this instance — the paper's Table 2 "Instance"
    /// column. Scales with the cell width: the compact instance halves the
    /// `dist` and `mind` terms.
    pub fn heap_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<C>()
            + self.mind.len() * std::mem::size_of::<C>()
            + self.unsettled.len() * 4
            + self.dist.len().div_ceil(8)
    }
}

impl CompactThorupInstance {
    /// Allocates a compact instance for `ch`, first certifying on `graph`
    /// that `u32` cells are exact: at most `u32::MAX` arcs, and an
    /// undirected weight sum strictly below the narrow sentinel (shortest
    /// paths are simple, so every true finite distance then fits). Callers
    /// fall back to the wide [`ThorupInstance`] on `Err` — narrowing
    /// failure degrades memory economy, never correctness.
    pub fn try_new(ch: &ComponentHierarchy, graph: &CsrGraph) -> Result<Self, CompactError> {
        let arcs = graph.num_arcs() as u64;
        if arcs > u32::MAX as u64 {
            return Err(CompactError::TooManyArcs { arcs });
        }
        // Each undirected edge contributes its weight twice to
        // total_arc_weight; a simple path uses each edge at most once.
        let sum = graph.total_arc_weight() / 2;
        if sum >= COMPACT_DIST_INF as u64 {
            return Err(CompactError::WeightSumTooLarge { sum });
        }
        Ok(Self::new(ch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;

    #[test]
    fn fresh_instance_is_armed() {
        let ch = build_serial(&shapes::figure_one(), ChMode::Collapsed);
        let inst = ThorupInstance::new(&ch);
        assert_eq!(inst.dist_of(0), INF);
        assert!(!inst.is_settled(3));
        assert_eq!(inst.settled_count(), 0);
        assert_eq!(
            inst.unsettled[ch.root() as usize].load(Ordering::Relaxed),
            6
        );
        assert_eq!(inst.unsettled[0].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reset_rearms() {
        let ch = build_serial(&shapes::figure_one(), ChMode::Collapsed);
        let inst = ThorupInstance::new(&ch);
        inst.dist[2].store(5);
        inst.mind[2].store(5);
        inst.settled.set(2);
        inst.unsettled[ch.root() as usize].store(0, Ordering::Relaxed);
        inst.reset(&ch);
        assert_eq!(inst.dist_of(2), INF);
        assert_eq!(inst.mind[2].load(), INF);
        assert!(!inst.is_settled(2));
        assert_eq!(
            inst.unsettled[ch.root() as usize].load(Ordering::Relaxed),
            6
        );
    }

    #[test]
    fn heap_bytes_match_stats_formula() {
        let ch = build_serial(&shapes::path(9, 1), ChMode::Collapsed);
        let inst = ThorupInstance::new(&ch);
        assert_eq!(inst.heap_bytes(), mmt_ch::stats::instance_bytes(&ch));
    }

    #[test]
    fn compact_instance_halves_the_cell_arrays() {
        let el = shapes::figure_one();
        let g = mmt_graph::CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let wide = ThorupInstance::new(&ch);
        let compact = CompactThorupInstance::try_new(&ch, &g).unwrap();
        let cells = ch.n() + ch.num_nodes();
        assert_eq!(wide.heap_bytes() - compact.heap_bytes(), cells * 4);
        assert_eq!(compact.dist_of(0), INF, "fresh sentinel widens to INF");
    }

    #[test]
    fn compact_certification_rejects_heavy_graphs() {
        let el = mmt_graph::types::EdgeList::from_triples(3, [(0, 1, u32::MAX), (1, 2, u32::MAX)]);
        let g = mmt_graph::CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let err = CompactThorupInstance::try_new(&ch, &g).unwrap_err();
        assert!(matches!(err, CompactError::WeightSumTooLarge { .. }));
    }
}
