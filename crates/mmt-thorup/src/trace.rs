//! Opt-in per-query lifecycle traces for the serving layer.
//!
//! The latency histograms in [`ServiceMetrics`](crate::service::ServiceMetrics)
//! answer "how slow" but not "why": was a slow query queued behind a burst,
//! held in a coalescing window, or simply expensive to solve? A
//! [`TraceEvent`] records one served query's full lifecycle — enqueue,
//! dequeue, coalesce, solve and reply timestamps, the work counters the
//! solve charged, and which coalesced batch (if any) carried it — and a
//! [`TraceSink`] receives one event per resolved query.
//!
//! Tracing is strictly opt-in via
//! [`QueryServiceBuilder::trace`](crate::service::QueryServiceBuilder::trace).
//! When no sink is installed the workers take one `Option` branch per
//! request and read no extra clocks or counters — the trace apparatus
//! costs nothing in production.
//!
//! Timestamps are microseconds relative to the service's construction
//! instant (its *epoch*), so events from one service are mutually
//! comparable without wall-clock plumbing. Counter fields on coalesced
//! members report the *batch totals* (members solve concurrently on
//! shared counters); singleton events report exact per-query work.

use mmt_graph::types::VertexId;
use parking_lot::Mutex;
use std::io::Write;

/// One query's lifecycle record, serialisable as a JSON line.
///
/// Every field is present in the JSON encoding; optional stages encode as
/// `null` (a query served outside a coalescing window has no
/// `coalesce_us`, and one rejected before solving has no `solve_us`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The admitted query's typed id, rendered (e.g. `"q7"`).
    pub query: String,
    /// The registered name of the graph the query ran on.
    pub graph: String,
    /// Request shape: `"full"`, `"target"` or `"batch"`.
    pub kind: String,
    /// The query's source vertex (original ids).
    pub source: VertexId,
    /// When the request was admitted to its shard queue.
    pub enqueue_us: u64,
    /// When a worker took the request off the queue.
    pub dequeue_us: u64,
    /// When a coalescing worker gathered this member into its forming
    /// batch; `None` for batch openers and non-coalesced requests.
    pub coalesce_us: Option<u64>,
    /// When the solve began; `None` when the request was resolved
    /// without solving (expired, cancelled, evicted).
    pub solve_us: Option<u64>,
    /// When the answer (or typed rejection) was handed to the reply
    /// channel.
    pub reply_us: u64,
    /// The coalesced batch this query was solved in, when it shared a
    /// [`BatchSolver`](crate::batch::BatchSolver) run with at least one
    /// other query.
    pub batch: Option<u64>,
    /// Members in the solving batch (1 when not coalesced).
    pub batch_size: u32,
    /// Edge relaxations charged to the solve (batch total for coalesced
    /// members; zero when counters were unavailable).
    pub relaxations: u64,
    /// CSR arcs scanned by the solve (batch total for coalesced members).
    pub arcs_scanned: u64,
    /// `"ok"` or the typed rejection's label (`"deadline"`,
    /// `"cancelled"`, `"worker-lost"`, ...).
    pub outcome: String,
}

fn opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

impl TraceEvent {
    /// Renders the event as one JSON object on one line (no trailing
    /// newline). Field order is fixed; absent stages are `null`.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"query\":\"{}\",\"graph\":\"{}\",\"kind\":\"{}\",",
                "\"source\":{},\"enqueue_us\":{},\"dequeue_us\":{},",
                "\"coalesce_us\":{},\"solve_us\":{},\"reply_us\":{},",
                "\"batch\":{},\"batch_size\":{},",
                "\"relaxations\":{},\"arcs_scanned\":{},\"outcome\":\"{}\"}}"
            ),
            self.query,
            self.graph,
            self.kind,
            self.source,
            self.enqueue_us,
            self.dequeue_us,
            opt(self.coalesce_us),
            opt(self.solve_us),
            self.reply_us,
            opt(self.batch),
            self.batch_size,
            self.relaxations,
            self.arcs_scanned,
            self.outcome,
        )
    }
}

/// Receives one [`TraceEvent`] per resolved query, on the worker thread
/// that resolved it. Implementations must be cheap and must not panic:
/// a sink runs inside the serving hot path (only when installed).
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Called once per resolved query.
    fn record(&self, event: &TraceEvent);
}

/// A [`TraceSink`] that buffers events in memory — the test- and
/// diagnosis-friendly default.
#[derive(Debug, Default)]
pub struct MemoryTraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemoryTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Every recorded event rendered as JSON lines.
    pub fn lines(&self) -> Vec<String> {
        self.events
            .lock()
            .iter()
            .map(TraceEvent::to_json_line)
            .collect()
    }
}

impl TraceSink for MemoryTraceSink {
    fn record(&self, event: &TraceEvent) {
        self.events.lock().push(event.clone());
    }
}

/// A [`TraceSink`] that writes each event as a JSON line to a writer
/// (file, stderr, pipe). Write errors are swallowed: tracing must never
/// take the serving path down.
pub struct JsonLinesSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> std::fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps a writer; each recorded event appends one line.
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Unwraps the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut out = self.out.lock();
        let _ = writeln!(out, "{}", event.to_json_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceEvent {
        TraceEvent {
            query: "q3".into(),
            graph: "usa-east".into(),
            kind: "full".into(),
            source: 17,
            enqueue_us: 100,
            dequeue_us: 150,
            coalesce_us: Some(160),
            solve_us: Some(170),
            reply_us: 900,
            batch: Some(2),
            batch_size: 4,
            relaxations: 12_345,
            arcs_scanned: 23_456,
            outcome: "ok".into(),
        }
    }

    #[test]
    fn json_line_has_every_field_and_encodes_nulls() {
        let line = sample().to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        for key in [
            "query",
            "graph",
            "kind",
            "source",
            "enqueue_us",
            "dequeue_us",
            "coalesce_us",
            "solve_us",
            "reply_us",
            "batch",
            "batch_size",
            "relaxations",
            "arcs_scanned",
            "outcome",
        ] {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
        let mut bare = sample();
        bare.coalesce_us = None;
        bare.solve_us = None;
        bare.batch = None;
        let line = bare.to_json_line();
        assert!(line.contains("\"coalesce_us\":null"));
        assert!(line.contains("\"solve_us\":null"));
        assert!(line.contains("\"batch\":null"));
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemoryTraceSink::new();
        let mut second = sample();
        second.query = "q4".into();
        sink.record(&sample());
        sink.record(&second);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].query, "q3");
        assert_eq!(events[1].query, "q4");
        assert_eq!(sink.lines()[1], second.to_json_line());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(&sample());
        sink.record(&sample());
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert_eq!(text.lines().next().unwrap(), sample().to_json_line());
    }
}
