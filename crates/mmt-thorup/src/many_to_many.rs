//! Many-to-many distance tables over a shared Component Hierarchy — the
//! paper's closing conjecture made concrete.
//!
//! The conclusion of the paper: road-network s–t schemes (transit-node
//! routing, highway hierarchies) spend hours of *serial* precomputation on
//! "Dijkstra-like searches through hierarchical data", and "this process
//! could be accelerated … by the basic idea of allowing multiple searches
//! to share a common component hierarchy". This module is that idea as an
//! API: batch SSSP from a hub set through [`crate::QueryEngine`], stored
//! as a [`HubDistances`] table, plus the triangle-inequality s–t upper
//! bound those schemes are built on.

use crate::batch::{BatchSolver, PooledDistances};
use crate::multi::BatchMode;
use crate::solver::ThorupSolver;
use mmt_graph::types::{Dist, VertexId, INF};

/// Distances from a set of hubs to every vertex (`hubs.len()` rows of
/// `n` distances), precomputed with simultaneous shared-CH queries.
///
/// ```
/// use mmt_ch::build_parallel;
/// use mmt_graph::{gen::shapes, CsrGraph};
/// use mmt_thorup::{HubDistances, ThorupSolver};
///
/// let el = shapes::star(6, 2); // all roads pass the centre
/// let g = CsrGraph::from_edge_list(&el);
/// let ch = build_parallel(&el);
/// let solver = ThorupSolver::new(&g, &ch);
/// let table = HubDistances::precompute(&solver, &[0]);
/// assert_eq!(table.via_hub_bound(1, 5), 4); // exact: 1 -> 0 -> 5
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HubDistances {
    hubs: Vec<VertexId>,
    rows: Vec<Vec<Dist>>,
}

impl HubDistances {
    /// Runs one SSSP per hub, simultaneously, over the solver's shared CH.
    /// Per-hub instances are pooled (peak-concurrency many, not
    /// `hubs.len()` many); the rows are detached from the batch pool since
    /// the table outlives it.
    pub fn precompute(solver: &ThorupSolver<'_>, hubs: &[VertexId]) -> Self {
        let batch = BatchSolver::new(solver);
        let rows: Vec<Vec<Dist>> = batch
            .solve_batch(hubs)
            .into_iter()
            .map(PooledDistances::detach)
            .collect();
        Self {
            hubs: hubs.to_vec(),
            rows,
        }
    }

    /// Sequential-baseline precomputation (what a system without a shared
    /// hierarchy has to do); result is identical.
    pub fn precompute_sequential(solver: &ThorupSolver<'_>, hubs: &[VertexId]) -> Self {
        let engine = crate::QueryEngine::new(*solver);
        let rows = engine.solve_batch(hubs, BatchMode::Sequential);
        Self {
            hubs: hubs.to_vec(),
            rows,
        }
    }

    /// The hub set.
    pub fn hubs(&self) -> &[VertexId] {
        &self.hubs
    }

    /// Distance from hub `i` to vertex `v`.
    #[inline]
    pub fn from_hub(&self, i: usize, v: VertexId) -> Dist {
        self.rows[i][v as usize]
    }

    /// The `|hubs| × |hubs|` hub-to-hub table (transit-node routing's core
    /// artifact).
    pub fn hub_table(&self) -> Vec<Vec<Dist>> {
        self.hubs
            .iter()
            .map(|&h| self.rows.iter().map(|r| r[h as usize]).collect())
            .collect()
    }

    /// Triangle-inequality upper bound on `δ(s, t)`: the best route through
    /// any hub (`min_h d(h,s) + d(h,t)`; graph is undirected). Exact
    /// whenever some shortest s–t path passes a hub — the transit-node
    /// property. Returns [`INF`] if no hub reaches both.
    pub fn via_hub_bound(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return 0;
        }
        self.rows
            .iter()
            .map(|r| {
                let (a, b) = (r[s as usize], r[t as usize]);
                if a == INF || b == INF {
                    INF
                } else {
                    a + b
                }
            })
            .min()
            .unwrap_or(INF)
    }

    /// The hub achieving [`via_hub_bound`], if any.
    pub fn best_hub(&self, s: VertexId, t: VertexId) -> Option<VertexId> {
        let mut best = (INF, None);
        for (i, r) in self.rows.iter().enumerate() {
            let (a, b) = (r[s as usize], r[t as usize]);
            if a != INF && b != INF && a + b < best.0 {
                best = (a + b, Some(self.hubs[i]));
            }
        }
        best.1
    }

    /// Bytes held by the table.
    pub fn heap_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.len() * 8).sum::<usize>() + self.hubs.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_baselines::dijkstra;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::CsrGraph;

    #[test]
    fn rows_match_individual_sssp() {
        let spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6);
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let hubs = vec![0u32, 17, 99];
        let table = HubDistances::precompute(&solver, &hubs);
        for (i, &h) in hubs.iter().enumerate() {
            let want = dijkstra(&g, h);
            for v in 0..g.n() as u32 {
                assert_eq!(table.from_hub(i, v), want[v as usize]);
            }
        }
        assert_eq!(table, HubDistances::precompute_sequential(&solver, &hubs));
    }

    #[test]
    fn star_center_hub_is_exact_everywhere() {
        let el = shapes::star(12, 4);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let table = HubDistances::precompute(&solver, &[0]);
        let oracle: Vec<Vec<u64>> = (0..12u32).map(|s| dijkstra(&g, s)).collect();
        for s in 0..12u32 {
            for t in 0..12u32 {
                // Every path in a star passes the centre.
                assert_eq!(table.via_hub_bound(s, t), oracle[s as usize][t as usize]);
            }
        }
        assert_eq!(table.best_hub(3, 7), Some(0));
    }

    #[test]
    fn bound_is_an_upper_bound() {
        let spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 7, 5);
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let table = HubDistances::precompute(&solver, &[1, 2, 3, 4]);
        let d1 = dijkstra(&g, 10);
        for t in (0..g.n() as u32).step_by(13) {
            let bound = table.via_hub_bound(10, t);
            assert!(bound >= d1[t as usize], "t={t}");
        }
    }

    #[test]
    fn hub_table_shape_and_symmetry() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let table = HubDistances::precompute(&solver, &[0, 5]);
        let hh = table.hub_table();
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0][0], 0);
        assert_eq!(hh[0][1], hh[1][0], "undirected: symmetric hub table");
        assert_eq!(hh[0][1], 10);
        assert!(table.heap_bytes() > 0);
    }

    #[test]
    fn disconnected_hubs_give_inf_bound() {
        let el = mmt_graph::types::EdgeList::from_triples(4, [(0, 1, 2), (2, 3, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let table = HubDistances::precompute(&solver, &[0]);
        assert_eq!(table.via_hub_bound(2, 3), INF, "hub sees neither endpoint");
        assert_eq!(table.best_hub(2, 3), None);
    }
}
