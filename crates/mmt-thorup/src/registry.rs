//! The multi-graph registry: `Arc`-shared arenas, a layout cache with a
//! build-once/warm/evict lifecycle, and resident-bytes accounting.
//!
//! The paper amortises one Component Hierarchy over many queries; the
//! registry amortises many *graphs* over one process. Each registered
//! graph is canonicalised into a [`CsrArena`] (weight-sorted, `Arc`-shared
//! arc arrays) so that:
//!
//! * the Thorup serving path, every Δ-split view ([`GraphRegistry::split`])
//!   and the natural layout all reference **one** arc array per graph;
//! * permuted layouts — the only variants that genuinely need their own
//!   adjacency order — are built on demand, cached per
//!   (graph, [`LayoutKind`]), and evictable;
//! * everything the registry keeps resident is tallied in a
//!   [`MemoryGauge`], which the service's admission check reads to shed
//!   work under memory pressure.
//!
//! Identity is typed: [`GraphId`] routes requests to shards and
//! [`QueryId`] names an admitted request — no raw `usize` crosses the
//! public service surface.
//!
//! Eviction is refcounted, not forced: [`GraphRegistry::evict`] drops the
//! registry's own `Arc`s and subtracts the accounting immediately, but
//! in-flight solves holding layout `Arc`s finish normally — the data dies
//! when the last reference does.

use crate::error::{InputError, ServiceError};
use crate::layout::{GraphLayout, LayoutKind};
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::Weight;
use mmt_graph::{CsrArena, CsrGraph, SplitView};
use mmt_platform::{Counter, MemoryGauge};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Identifies a registered graph. Issued by [`GraphRegistry::register`];
/// routes requests to the graph's shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(u32);

impl GraphId {
    pub(crate) fn from_index(i: usize) -> Self {
        Self(i as u32)
    }

    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifies an admitted request, unique per service for its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    pub(crate) fn new(raw: u64) -> Self {
        Self(raw)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Layout-cache lifecycle counters for one registered graph.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Layout requests answered from the cache.
    pub hits: Counter,
    /// Layout requests that built a layout seen for the first time.
    pub misses: Counter,
    /// Layout requests that re-built a layout evicted earlier.
    pub rebuilds: Counter,
    /// Layouts (or the whole graph) evicted.
    pub evictions: Counter,
}

/// The shared, immutable data of one registered graph. Dropped as a unit
/// on eviction; kept alive by any in-flight layout `Arc`s.
#[derive(Debug)]
struct GraphData {
    arena: Arc<CsrArena>,
    ch: Arc<ComponentHierarchy>,
    /// The natural layout over the arena graph — zero marginal bytes, the
    /// default serving path.
    natural: Arc<GraphLayout>,
    /// Cached permuted layouts, keyed by kind. `Natural` never lives
    /// here (it is free).
    layouts: Mutex<HashMap<LayoutKind, Arc<GraphLayout>>>,
}

/// One registry slot. The name, stats and gauge survive eviction (so
/// metrics keep their history); the data does not.
#[derive(Debug)]
struct Slot {
    name: String,
    stats: Arc<CacheStats>,
    /// Per-graph resident bytes (arena + hierarchy + cached layout
    /// marginals). Mirrored into the registry-wide gauge.
    resident: Arc<MemoryGauge>,
    /// Layout kinds ever built for this graph — distinguishes a cache
    /// miss (first build) from a rebuild (post-eviction build).
    ever_built: Mutex<HashSet<LayoutKind>>,
    data: Mutex<Option<Arc<GraphData>>>,
}

/// A set of graphs served from shared arenas, with typed ids, a per-graph
/// layout cache and resident-bytes accounting.
///
/// Register graphs up front, then hand the registry to
/// [`QueryServiceBuilder::build_registry`](crate::QueryServiceBuilder::build_registry);
/// lifecycle operations (warm / evict) remain available through the
/// service's shared reference.
///
/// ```
/// use mmt_ch::{build_serial, ChMode};
/// use mmt_graph::{gen::shapes, CsrGraph};
/// use mmt_thorup::GraphRegistry;
///
/// let el = shapes::figure_one();
/// let g = CsrGraph::from_edge_list(&el);
/// let ch = build_serial(&el, ChMode::Collapsed);
/// let mut registry = GraphRegistry::new();
/// let id = registry.register("figure-one", &g, ch.into()).unwrap();
/// assert_eq!(registry.graph(id).unwrap().n(), 6);
/// ```
#[derive(Debug, Default)]
pub struct GraphRegistry {
    slots: Vec<Slot>,
    gauge: MemoryGauge,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` with its hierarchy under `name`, canonicalising
    /// the adjacency into a shared [`CsrArena`]. The arena plus hierarchy
    /// bytes are recorded as resident. Fails with
    /// [`InputError::GraphMismatch`] when the hierarchy was built for a
    /// different vertex count.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        graph: &CsrGraph,
        ch: Arc<ComponentHierarchy>,
    ) -> Result<GraphId, InputError> {
        let arena = CsrArena::new(graph);
        let natural = Arc::new(GraphLayout::build(
            LayoutKind::Natural,
            Arc::clone(arena.graph()),
            Arc::clone(&ch),
        )?);
        let id = GraphId::from_index(self.slots.len());
        let base_bytes = arena.arc_bytes() + ch.heap_bytes();
        let resident = Arc::new(MemoryGauge::new());
        resident.add(base_bytes);
        self.gauge.add(base_bytes);
        self.slots.push(Slot {
            name: name.into(),
            stats: Arc::new(CacheStats::default()),
            resident,
            ever_built: Mutex::new(HashSet::new()),
            data: Mutex::new(Some(Arc::new(GraphData {
                arena,
                ch,
                natural,
                layouts: Mutex::new(HashMap::new()),
            }))),
        });
        Ok(id)
    }

    /// Number of graphs ever registered (evicted slots included — ids are
    /// never reused).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Every id ever issued, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = GraphId> + '_ {
        (0..self.slots.len()).map(GraphId::from_index)
    }

    /// True when `id` is registered and not evicted.
    pub fn contains(&self, id: GraphId) -> bool {
        self.slot(id)
            .is_ok_and(|s| s.data.lock().expect("registry lock").is_some())
    }

    /// The name `id` was registered under.
    pub fn name(&self, id: GraphId) -> Result<&str, InputError> {
        self.slot(id).map(|s| s.name.as_str())
    }

    fn slot(&self, id: GraphId) -> Result<&Slot, InputError> {
        self.slots
            .get(id.index())
            .ok_or(InputError::UnknownGraph { graph: id })
    }

    fn data(&self, id: GraphId) -> Result<Arc<GraphData>, ServiceError> {
        let slot = self.slot(id)?;
        slot.data
            .lock()
            .expect("registry lock")
            .as_ref()
            .map(Arc::clone)
            .ok_or(ServiceError::GraphEvicted)
    }

    /// The graph in arena (weight-sorted) order — the adjacency every
    /// solver and view of this graph shares.
    pub fn graph(&self, id: GraphId) -> Result<Arc<CsrGraph>, ServiceError> {
        Ok(Arc::clone(self.data(id)?.arena.graph()))
    }

    /// The shared arena itself.
    pub fn arena(&self, id: GraphId) -> Result<Arc<CsrArena>, ServiceError> {
        Ok(Arc::clone(&self.data(id)?.arena))
    }

    /// The graph's Component Hierarchy (natural leaf order).
    pub fn hierarchy(&self, id: GraphId) -> Result<Arc<ComponentHierarchy>, ServiceError> {
        Ok(Arc::clone(&self.data(id)?.ch))
    }

    /// A Δ-split offset view over the graph's arena: `O(n)` marginal
    /// bytes, no arc duplication (see [`CsrArena::split`]).
    pub fn split(&self, id: GraphId, delta: Weight) -> Result<SplitView, ServiceError> {
        Ok(self.data(id)?.arena.split(delta))
    }

    /// The `(graph, kind)` layout, built on first request and cached.
    ///
    /// `Natural` is always a hit (it shares the arena and costs nothing).
    /// A permuted layout counts a miss on its first build, a rebuild when
    /// it was built before and evicted since, and a hit otherwise; its
    /// marginal bytes (permuted adjacency + leaf-permuted hierarchy +
    /// permutation tables) are added to the resident accounting while
    /// cached.
    pub fn layout(&self, id: GraphId, kind: LayoutKind) -> Result<Arc<GraphLayout>, ServiceError> {
        let slot = self.slot(id)?;
        let data = self.data(id)?;
        if kind == LayoutKind::Natural {
            slot.stats.hits.bump();
            return Ok(Arc::clone(&data.natural));
        }
        let mut layouts = data.layouts.lock().expect("registry lock");
        if let Some(l) = layouts.get(&kind) {
            slot.stats.hits.bump();
            return Ok(Arc::clone(l));
        }
        let layout = Arc::new(
            GraphLayout::build(kind, Arc::clone(data.arena.graph()), Arc::clone(&data.ch))
                .map_err(ServiceError::Input)?,
        );
        let marginal = layout_marginal_bytes(&layout);
        slot.resident.add(marginal);
        self.gauge.add(marginal);
        if slot.ever_built.lock().expect("registry lock").insert(kind) {
            slot.stats.misses.bump();
        } else {
            slot.stats.rebuilds.bump();
        }
        layouts.insert(kind, Arc::clone(&layout));
        Ok(layout)
    }

    /// Builds (and caches) every listed layout up front, so serving never
    /// pays a build latency. Errors abort the warm at the first failure.
    pub fn warm(&self, id: GraphId, kinds: &[LayoutKind]) -> Result<(), ServiceError> {
        for &kind in kinds {
            self.layout(id, kind)?;
        }
        Ok(())
    }

    /// Drops one cached layout, subtracting its marginal bytes. Returns
    /// true when the kind was cached. In-flight solves holding the layout
    /// keep it alive until they finish.
    pub fn evict_layout(&self, id: GraphId, kind: LayoutKind) -> bool {
        let Ok(slot) = self.slot(id) else {
            return false;
        };
        let Ok(data) = self.data(id) else {
            return false;
        };
        if kind == LayoutKind::Natural {
            return false; // the natural layout has no marginal bytes to free
        }
        let removed = data.layouts.lock().expect("registry lock").remove(&kind);
        match removed {
            Some(layout) => {
                let marginal = layout_marginal_bytes(&layout);
                slot.resident.sub(marginal);
                self.gauge.sub(marginal);
                slot.stats.evictions.bump();
                true
            }
            None => false,
        }
    }

    /// Evicts the whole graph: the registry drops its arena, hierarchy
    /// and cached layouts and subtracts all of the graph's resident
    /// bytes. Returns true when the graph was resident. The id stays
    /// issued (never reused); subsequent requests for it see
    /// [`ServiceError::GraphEvicted`].
    pub fn evict(&self, id: GraphId) -> bool {
        let Ok(slot) = self.slot(id) else {
            return false;
        };
        let data = slot.data.lock().expect("registry lock").take();
        match data {
            Some(_) => {
                let bytes = slot.resident.resident();
                slot.resident.sub(bytes);
                self.gauge.sub(bytes);
                slot.stats.evictions.bump();
                true
            }
            None => false,
        }
    }

    /// Layout-cache lifecycle counters for `id`.
    pub fn stats(&self, id: GraphId) -> Result<&Arc<CacheStats>, InputError> {
        self.slot(id).map(|s| &s.stats)
    }

    /// Resident bytes currently attributed to `id` (zero after eviction).
    pub fn graph_resident_bytes(&self, id: GraphId) -> Result<usize, InputError> {
        self.slot(id).map(|s| s.resident.resident())
    }

    /// The per-graph resident gauge (shared with metrics reporting).
    pub(crate) fn resident_gauge(&self, id: GraphId) -> Result<Arc<MemoryGauge>, InputError> {
        self.slot(id).map(|s| Arc::clone(&s.resident))
    }

    /// Total resident bytes across every registered graph.
    pub fn resident_bytes(&self) -> usize {
        self.gauge.resident()
    }
}

/// Bytes a cached layout keeps resident *beyond* the shared arena: zero
/// for the natural layout, otherwise the permuted adjacency, the
/// leaf-permuted hierarchy and the permutation tables.
fn layout_marginal_bytes(layout: &GraphLayout) -> usize {
    match layout.permutation() {
        None => 0,
        Some(perm) => {
            layout.graph().heap_bytes() + layout.hierarchy().heap_bytes() + perm.heap_bytes()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn fixture(seed: u64) -> (CsrGraph, Arc<ComponentHierarchy>) {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6);
        spec.seed = seed;
        let el = spec.generate();
        (
            CsrGraph::from_edge_list(&el),
            Arc::new(build_serial(&el, ChMode::Collapsed)),
        )
    }

    fn registry_with(n: usize) -> (GraphRegistry, Vec<GraphId>) {
        let mut reg = GraphRegistry::new();
        let ids = (0..n)
            .map(|i| {
                let (g, ch) = fixture(5 + i as u64);
                reg.register(format!("tenant-{i}"), &g, ch).unwrap()
            })
            .collect();
        (reg, ids)
    }

    #[test]
    fn typed_ids_display_and_route() {
        let (reg, ids) = registry_with(3);
        assert_eq!(reg.len(), 3);
        assert_eq!(ids[1].to_string(), "g1");
        assert_eq!(QueryId::new(7).to_string(), "q7");
        assert_eq!(reg.name(ids[2]).unwrap(), "tenant-2");
        let bogus = GraphId::from_index(9);
        assert!(matches!(
            reg.name(bogus),
            Err(InputError::UnknownGraph { graph }) if graph == bogus
        ));
    }

    #[test]
    fn n_graphs_store_each_arc_array_exactly_once() {
        let (reg, ids) = registry_with(4);
        // Natural serving path + any number of Δ views reference the one
        // arena allocation per graph.
        for &id in &ids {
            let arena = reg.arena(id).unwrap();
            let natural = reg.layout(id, LayoutKind::Natural).unwrap();
            assert!(Arc::ptr_eq(natural.graph(), arena.graph()));
            for delta in [2u32, 8, 32] {
                let view = reg.split(id, delta).unwrap();
                assert!(Arc::ptr_eq(view.arena().graph(), arena.graph()));
            }
        }
        // Resident accounting says so too: total resident equals the sum
        // of per-graph arena + hierarchy bytes — arcs are counted (because
        // stored) exactly once per graph, with no per-Δ or per-view term.
        let expected: usize = ids
            .iter()
            .map(|&id| reg.arena(id).unwrap().arc_bytes() + reg.hierarchy(id).unwrap().heap_bytes())
            .sum();
        assert_eq!(reg.resident_bytes(), expected);
    }

    #[test]
    fn layout_cache_counts_hit_miss_rebuild_evict() {
        let (reg, ids) = registry_with(1);
        let id = ids[0];
        let stats = Arc::clone(reg.stats(id).unwrap());
        let base = reg.resident_bytes();

        // First build: miss, resident grows by the marginal.
        let l1 = reg.layout(id, LayoutKind::Bfs).unwrap();
        assert_eq!(stats.misses.get(), 1);
        let with_bfs = reg.resident_bytes();
        assert!(with_bfs > base);

        // Second request: hit, same Arc, no growth.
        let l2 = reg.layout(id, LayoutKind::Bfs).unwrap();
        assert!(Arc::ptr_eq(&l1, &l2));
        assert_eq!(stats.hits.get(), 1);
        assert_eq!(reg.resident_bytes(), with_bfs);

        // Evict: marginal subtracted; the Arc we still hold stays valid.
        assert!(reg.evict_layout(id, LayoutKind::Bfs));
        assert_eq!(stats.evictions.get(), 1);
        assert_eq!(reg.resident_bytes(), base);
        assert_eq!(l1.kind(), LayoutKind::Bfs);

        // Build again: rebuild, not a miss.
        let _l3 = reg.layout(id, LayoutKind::Bfs).unwrap();
        assert_eq!(stats.rebuilds.get(), 1);
        assert_eq!(stats.misses.get(), 1);
        assert_eq!(reg.resident_bytes(), with_bfs);

        // Natural is always a free hit and never evictable.
        let _ = reg.layout(id, LayoutKind::Natural).unwrap();
        assert_eq!(stats.hits.get(), 2);
        assert!(!reg.evict_layout(id, LayoutKind::Natural));
    }

    #[test]
    fn warm_prebuilds_every_kind() {
        let (reg, ids) = registry_with(1);
        let id = ids[0];
        reg.warm(id, &LayoutKind::all()).unwrap();
        let stats = reg.stats(id).unwrap();
        assert_eq!(stats.misses.get(), 3, "three permuted kinds built");
        reg.warm(id, &LayoutKind::all()).unwrap();
        assert_eq!(stats.misses.get(), 3, "second warm is all hits");
        assert!(stats.hits.get() >= 4);
    }

    #[test]
    fn evict_is_refcounted_and_final() {
        let (reg, ids) = registry_with(2);
        let (a, b) = (ids[0], ids[1]);
        let held = reg.layout(a, LayoutKind::Natural).unwrap();
        let held_n = held.graph().n();

        assert!(reg.contains(a));
        assert!(reg.evict(a));
        assert!(!reg.contains(a));
        assert!(!reg.evict(a), "double evict is a no-op");

        // Evicted graphs answer with the typed error...
        assert!(matches!(reg.graph(a), Err(ServiceError::GraphEvicted)));
        assert!(matches!(
            reg.layout(a, LayoutKind::Bfs),
            Err(ServiceError::GraphEvicted)
        ));
        // ...their accounting drops to zero...
        assert_eq!(reg.graph_resident_bytes(a).unwrap(), 0);
        // ...the other tenant is untouched...
        assert!(reg.graph(b).is_ok());
        assert_eq!(
            reg.resident_bytes(),
            reg.graph_resident_bytes(b).unwrap(),
            "only b remains resident"
        );
        // ...and the Arc we held across the evict still works.
        assert_eq!(held.graph().n(), held_n);
    }

    #[test]
    fn mismatched_hierarchy_is_rejected_at_registration() {
        let (g, _) = fixture(1);
        let (_, small_ch) = {
            let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 5, 4);
            spec.seed = 2;
            let el = spec.generate();
            ((), Arc::new(build_serial(&el, ChMode::Collapsed)))
        };
        let mut reg = GraphRegistry::new();
        assert!(matches!(
            reg.register("bad", &g, small_ch),
            Err(InputError::GraphMismatch { .. })
        ));
        assert_eq!(reg.resident_bytes(), 0);
    }
}
