//! The multithreaded Thorup SSSP solver.
//!
//! Thorup's insight (his Lemma, the paper's Lemma 1): if the vertex set
//! splits into parts with all inter-part edges of weight ≥ Δ = 2^α, then a
//! vertex minimising `d` within its part can be settled as soon as its `d`
//! is within Δ of the global minimum — which is exactly what bucketing the
//! parts by `min d >> α` detects. Applied recursively over the Component
//! Hierarchy, whole buckets of components become visitable **in arbitrary
//! order, in parallel**.
//!
//! Implementation follows the paper's engineering choices:
//!
//! * buckets are *virtual* — a child is "in bucket `j`" iff
//!   `mind(child) >> α == j`, so insertion is one atomic write and the
//!   per-iteration bucket contents are recovered by the `toVisit` scan
//!   ([`crate::tovisit`], the paper's Figure 3 / Table 6 optimisation);
//! * `mind` updates are propagated **leaf-to-root** with CAS-min, stopping
//!   at the first ancestor that already knows a smaller value ("mind values
//!   are not propagated very far up the CH in practice");
//! * raising `mind` past an exhausted bucket is done by a *pull refresh*
//!   (min over children) applied with a compare-exchange so that a
//!   concurrent lowering from a cross-component relaxation is never lost;
//! * a component returns control to its parent as soon as its `mind` leaves
//!   the parent's current bucket, or when it has no unsettled vertices.

use crate::instance::ThorupInstance;
use crate::tovisit::{scan_children, ToVisitStrategy};
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use mmt_platform::atomic::saturating_shr;
use mmt_platform::EventCounters;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

#[cfg(test)]
mod target_tests {
    use super::*;
    use crate::instance::ThorupInstance;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;

    #[test]
    fn targeted_query_is_exact_and_partial() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        // Target inside the source triangle: the far triangle need not be
        // settled at all.
        let d = solver.solve_target(&inst, 0, 2);
        assert_eq!(d, 1);
        assert!(inst.is_settled(2));
        assert!(inst.settled_count() < 6, "early exit skipped work");
        // Far target: exact as well.
        inst.reset(&ch);
        assert_eq!(solver.solve_target(&inst, 0, 5), 10);
    }

    #[test]
    fn targeted_query_unreachable() {
        let el = mmt_graph::types::EdgeList::from_triples(3, [(0, 1, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        assert_eq!(solver.solve_target(&inst, 0, 2), INF);
    }

    #[test]
    fn target_equals_source() {
        let el = shapes::path(4, 3);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        assert_eq!(solver.solve_target(&inst, 2, 2), 0);
    }
}

/// Configuration of a Thorup solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThorupConfig {
    /// How `toVisit` sets are gathered (Table 6's experiment).
    pub strategy: ToVisitStrategy,
    /// Run child visits within a bucket sequentially even when the gather
    /// found several (used by the multi-query engine to dedicate the pool
    /// to cross-query parallelism).
    pub serial_visits: bool,
}

impl ThorupConfig {
    /// Fully serial configuration: serial gathers and serial child visits.
    pub fn serial() -> Self {
        Self {
            strategy: ToVisitStrategy::Serial,
            serial_visits: true,
        }
    }
}

/// A Thorup SSSP solver bound to a graph and its Component Hierarchy.
///
/// The solver itself is immutable and shareable; all query state lives in a
/// [`ThorupInstance`].
#[derive(Debug, Clone, Copy)]
pub struct ThorupSolver<'a> {
    graph: &'a CsrGraph,
    ch: &'a ComponentHierarchy,
    config: ThorupConfig,
    counters: Option<&'a EventCounters>,
}

impl<'a> ThorupSolver<'a> {
    /// Creates a solver. `ch` must have been built for `graph`.
    pub fn new(graph: &'a CsrGraph, ch: &'a ComponentHierarchy) -> Self {
        assert_eq!(graph.n(), ch.n(), "hierarchy was built for a different graph");
        Self {
            graph,
            ch,
            config: ThorupConfig::default(),
            counters: None,
        }
    }

    /// Sets the configuration.
    pub fn with_config(mut self, config: ThorupConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches event counters (instrumented runs).
    pub fn with_counters(mut self, counters: &'a EventCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// The hierarchy this solver walks.
    pub fn hierarchy(&self) -> &'a ComponentHierarchy {
        self.ch
    }

    /// Convenience: allocate an instance, solve, return distances.
    pub fn solve(&self, source: VertexId) -> Vec<Dist> {
        let inst = ThorupInstance::new(self.ch);
        self.solve_into(&inst, source);
        inst.distances()
    }

    /// Runs one query into a caller-owned (fresh or reset) instance.
    pub fn solve_into(&self, inst: &ThorupInstance, source: VertexId) {
        self.run(inst, source, None);
    }

    /// Point-to-point query: runs from `source` and stops as soon as
    /// `target` settles. Returns the exact distance `δ(source, target)`.
    ///
    /// Thorup's traversal settles vertices in nondecreasing bucket order,
    /// so stopping at the target skips the rest of the graph beyond the
    /// target's bucket — a real saving when the target is close. The
    /// instance is left partially solved: only `dist_of(target)` (and
    /// distances of already-settled vertices) are final.
    pub fn solve_target(&self, inst: &ThorupInstance, source: VertexId, target: VertexId) -> Dist {
        assert!((target as usize) < self.graph.n(), "target out of range");
        self.run(inst, source, Some(target));
        if inst.is_settled(target) {
            inst.dist_of(target)
        } else {
            INF
        }
    }

    fn run(&self, inst: &ThorupInstance, source: VertexId, target: Option<VertexId>) {
        assert!((source as usize) < self.graph.n(), "source out of range");
        debug_assert_eq!(inst.mind.len(), self.ch.num_nodes());
        inst.dist[source as usize].fetch_min(0);
        self.propagate_mind_inst(inst, self.ch.leaf_of_vertex(source), 0);
        // The root is visited under a sentinel parent: shift 64 saturates
        // every finite mind into "bucket 0", so the root only returns when
        // its subtree is exhausted (all settled or remainder unreachable).
        self.visit(inst, self.ch.root(), 64, 0, target);
    }

    /// Recursive component visit. Invariant on entry: the parent observed
    /// `mind(node) >> parent_alpha == bucket` (or the sentinel for the
    /// root). Returns when the component is done or its `mind` leaves that
    /// bucket.
    fn visit(
        &self,
        inst: &ThorupInstance,
        node: u32,
        parent_alpha: u8,
        bucket: u64,
        target: Option<VertexId>,
    ) {
        if self.ch.is_leaf(node) {
            self.settle_leaf(inst, node, target);
            return;
        }
        let alpha = self.ch.alpha(node);
        let children = self.ch.children(node);
        loop {
            if target.is_some() && inst.stop.load(Ordering::Acquire) {
                return;
            }
            let m0 = inst.mind[node as usize].load();
            if m0 == INF {
                // Done: every vertex below is settled or unreachable.
                return;
            }
            if saturating_shr(m0, parent_alpha as u32) != bucket {
                // Moved past the parent's bucket: hand control back (the
                // parent re-buckets us by the current mind).
                return;
            }
            if let Some(ev) = self.counters {
                ev.bucket_expansions.bump();
            }
            let own_bucket = saturating_shr(m0, alpha as u32);
            let scan = scan_children(
                self.config.strategy,
                children,
                &inst.mind,
                alpha,
                own_bucket,
                self.counters,
            );
            if scan.min_mind != m0 {
                // Children moved under us (concurrent relaxations, or our
                // previous expansions emptied the bucket): publish the
                // fresh minimum and re-evaluate. A failed CAS means someone
                // lowered `mind` meanwhile — loop and recompute.
                let _ = inst.mind[node as usize].compare_exchange(m0, scan.min_mind);
                continue;
            }
            debug_assert!(
                !scan.tovisit.is_empty(),
                "a child holding the minimum must be in its own bucket"
            );
            if scan.tovisit.len() == 1 {
                self.visit(inst, scan.tovisit[0], alpha, own_bucket, target);
            } else if self.config.serial_visits {
                for &c in &scan.tovisit {
                    self.visit(inst, c, alpha, own_bucket, target);
                }
            } else {
                // Thorup's arbitrary-order guarantee: the whole bucket is
                // expanded concurrently.
                scan.tovisit
                    .par_iter()
                    .for_each(|&c| self.visit(inst, c, alpha, own_bucket, target));
            }
        }
    }

    /// Settles the vertex of `leaf` and relaxes its edges. Idempotent: a
    /// stale `mind` may route a second visit here, which only re-clears it.
    fn settle_leaf(&self, inst: &ThorupInstance, leaf: u32, target: Option<VertexId>) {
        let v = self.ch.vertex_of_leaf(leaf);
        // Clear before relaxing so parents stop re-bucketing this leaf.
        inst.mind[leaf as usize].store(INF);
        if !inst.settled.set(v as usize) {
            return;
        }
        if target == Some(v) {
            inst.stop.store(true, Ordering::Release);
        }
        if let Some(ev) = self.counters {
            ev.settled.bump();
        }
        // Thorup's lemma guarantees d(v) = δ(v) here.
        let d = inst.dist[v as usize].load();
        debug_assert_ne!(d, INF, "settling an unreached vertex");
        // One fewer unsettled vertex everywhere up the chain.
        let mut x = leaf;
        loop {
            inst.unsettled[x as usize].fetch_sub(1, Ordering::AcqRel);
            let p = self.ch.parent(x);
            if p == x {
                break;
            }
            x = p;
        }
        // Relax v's edges.
        let (targets, weights) = self.graph.neighbors(v);
        if let Some(ev) = self.counters {
            ev.relaxations.add(targets.len() as u64);
        }
        for (&u, &w) in targets.iter().zip(weights) {
            let nd = d + w as Dist;
            if inst.dist[u as usize].fetch_min(nd) && !inst.settled.get(u as usize) {
                if let Some(ev) = self.counters {
                    ev.improvements.bump();
                }
                self.propagate_mind_inst(inst, self.ch.leaf_of_vertex(u), nd);
            }
        }
    }

    /// Pushes a lowered distance up the hierarchy: CAS-min each ancestor,
    /// stopping at the first that already knows something at least as
    /// small. This early stop is the paper's contention argument.
    fn propagate_mind_inst(&self, inst: &ThorupInstance, leaf: u32, value: Dist) {
        let mut x = leaf;
        loop {
            if !inst.mind[x as usize].fetch_min(value) {
                break;
            }
            if let Some(ev) = self.counters {
                ev.mind_propagation_hops.bump();
            }
            let p = self.ch.parent(x);
            if p == x {
                break;
            }
            x = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;

    fn solve(el: &EdgeList, source: VertexId) -> Vec<Dist> {
        let g = CsrGraph::from_edge_list(el);
        let ch = build_serial(el, ChMode::Collapsed);
        ThorupSolver::new(&g, &ch).solve(source)
    }

    #[test]
    fn figure_one_distances() {
        let d = solve(&shapes::figure_one(), 0);
        assert_eq!(d, vec![0, 1, 1, 9, 10, 10]);
    }

    #[test]
    fn path_graph() {
        assert_eq!(solve(&shapes::path(5, 3), 0), vec![0, 3, 6, 9, 12]);
        assert_eq!(solve(&shapes::path(5, 3), 4), vec![12, 9, 6, 3, 0]);
    }

    #[test]
    fn single_vertex() {
        assert_eq!(solve(&EdgeList::new(1), 0), vec![0]);
    }

    #[test]
    fn disconnected_unreachable_inf() {
        let el = EdgeList::from_triples(4, [(0, 1, 2)]);
        assert_eq!(solve(&el, 0), vec![0, 2, INF, INF]);
        assert_eq!(solve(&el, 2), vec![INF, INF, 0, INF]);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let el = EdgeList::from_triples(2, [(0, 0, 4), (0, 1, 9), (0, 1, 2)]);
        assert_eq!(solve(&el, 0), vec![0, 2]);
    }

    #[test]
    fn cheaper_detour_beats_direct_edge() {
        let el = EdgeList::from_triples(3, [(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        assert_eq!(solve(&el, 0), vec![0, 2, 1]);
    }
}
