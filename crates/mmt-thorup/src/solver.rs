//! The multithreaded Thorup SSSP solver.
//!
//! Thorup's insight (his Lemma, the paper's Lemma 1): if the vertex set
//! splits into parts with all inter-part edges of weight ≥ Δ = 2^α, then a
//! vertex minimising `d` within its part can be settled as soon as its `d`
//! is within Δ of the global minimum — which is exactly what bucketing the
//! parts by `min d >> α` detects. Applied recursively over the Component
//! Hierarchy, whole buckets of components become visitable **in arbitrary
//! order, in parallel**.
//!
//! Implementation follows the paper's engineering choices:
//!
//! * buckets are *virtual* — a child is "in bucket `j`" iff
//!   `mind(child) >> α == j`, so insertion is one atomic write and the
//!   per-iteration bucket contents are recovered by the `toVisit` scan
//!   ([`crate::tovisit`], the paper's Figure 3 / Table 6 optimisation);
//! * `mind` updates are propagated **leaf-to-root** with CAS-min, stopping
//!   at the first ancestor that already knows a smaller value ("mind values
//!   are not propagated very far up the CH in practice");
//! * raising `mind` past an exhausted bucket is done by a *pull refresh*
//!   (min over children) applied with a compare-exchange so that a
//!   concurrent lowering from a cross-component relaxation is never lost;
//! * a component returns control to its parent as soon as its `mind` leaves
//!   the parent's current bucket, or when it has no unsettled vertices.

use crate::error::InputError;
use crate::instance::{CompactThorupInstance, ThorupInstance, ThorupInstanceIn};
use crate::tovisit::{scan_children_into, ToVisitStrategy};
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::{CompactError, CsrGraph};
use mmt_platform::atomic::saturating_shr;
use mmt_platform::{CancelToken, EventCounters, MinCell};
use rayon::prelude::*;
use std::sync::atomic::Ordering;

#[cfg(test)]
mod target_tests {
    use super::*;
    use crate::instance::ThorupInstance;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;

    #[test]
    fn targeted_query_is_exact_and_partial() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        // Target inside the source triangle: the far triangle need not be
        // settled at all.
        let d = solver.solve_target(&inst, 0, 2);
        assert_eq!(d, 1);
        assert!(inst.is_settled(2));
        assert!(inst.settled_count() < 6, "early exit skipped work");
        // Far target: exact as well.
        inst.reset(&ch);
        assert_eq!(solver.solve_target(&inst, 0, 5), 10);
    }

    #[test]
    fn targeted_query_unreachable() {
        let el = mmt_graph::types::EdgeList::from_triples(3, [(0, 1, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        assert_eq!(solver.solve_target(&inst, 0, 2), INF);
    }

    #[test]
    fn target_equals_source() {
        let el = shapes::path(4, 3);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        assert_eq!(solver.solve_target(&inst, 2, 2), 0);
    }
}

/// Configuration of a Thorup solve.
///
/// Construct with the chainable builder methods:
///
/// ```
/// use mmt_thorup::{ThorupConfig, ToVisitStrategy};
///
/// let cfg = ThorupConfig::new()
///     .with_strategy(ToVisitStrategy::AlwaysParallel)
///     .with_serial_visits(false);
/// assert!(!cfg.serial_visits());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ThorupConfig {
    /// How `toVisit` sets are gathered (Table 6's experiment).
    #[deprecated(
        since = "0.2.0",
        note = "use ThorupConfig::new().with_strategy(..) and .strategy()"
    )]
    pub strategy: ToVisitStrategy,
    /// Run child visits within a bucket sequentially even when the gather
    /// found several (used by the multi-query engine to dedicate the pool
    /// to cross-query parallelism).
    #[deprecated(
        since = "0.2.0",
        note = "use ThorupConfig::new().with_serial_visits(..) and .serial_visits()"
    )]
    pub serial_visits: bool,
}

#[allow(deprecated)]
impl ThorupConfig {
    /// The default configuration (selective-default gathers, parallel
    /// child visits).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fully serial configuration: serial gathers and serial child visits.
    pub fn serial() -> Self {
        Self::new()
            .with_strategy(ToVisitStrategy::Serial)
            .with_serial_visits(true)
    }

    /// Sets how `toVisit` sets are gathered.
    pub fn with_strategy(mut self, strategy: ToVisitStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets whether child visits within a bucket run sequentially.
    pub fn with_serial_visits(mut self, serial_visits: bool) -> Self {
        self.serial_visits = serial_visits;
        self
    }

    /// The configured gather strategy.
    pub fn strategy(&self) -> ToVisitStrategy {
        self.strategy
    }

    /// Whether child visits within a bucket run sequentially.
    pub fn serial_visits(&self) -> bool {
        self.serial_visits
    }
}

/// A Thorup SSSP solver bound to a graph and its Component Hierarchy.
///
/// The solver itself is immutable and shareable; all query state lives in a
/// [`ThorupInstance`].
#[derive(Debug, Clone, Copy)]
pub struct ThorupSolver<'a> {
    graph: &'a CsrGraph,
    ch: &'a ComponentHierarchy,
    config: ThorupConfig,
    counters: Option<&'a EventCounters>,
}

impl<'a> ThorupSolver<'a> {
    /// Creates a solver. `ch` must have been built for `graph`.
    ///
    /// # Panics
    ///
    /// Panics when the hierarchy's vertex count disagrees with the
    /// graph's. Use [`ThorupSolver::try_new`] to get a typed error
    /// instead.
    pub fn new(graph: &'a CsrGraph, ch: &'a ComponentHierarchy) -> Self {
        Self::try_new(graph, ch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a solver, reporting a mismatched hierarchy as an error.
    pub fn try_new(graph: &'a CsrGraph, ch: &'a ComponentHierarchy) -> Result<Self, InputError> {
        if graph.n() != ch.n() {
            return Err(InputError::GraphMismatch {
                graph_n: graph.n(),
                ch_n: ch.n(),
            });
        }
        Ok(Self {
            graph,
            ch,
            config: ThorupConfig::default(),
            counters: None,
        })
    }

    /// Sets the configuration.
    pub fn with_config(mut self, config: ThorupConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches event counters (instrumented runs).
    pub fn with_counters(mut self, counters: &'a EventCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// The hierarchy this solver walks.
    pub fn hierarchy(&self) -> &'a ComponentHierarchy {
        self.ch
    }

    /// Convenience: allocate an instance, solve, return distances.
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range; see
    /// [`ThorupSolver::try_solve`].
    pub fn solve(&self, source: VertexId) -> Vec<Dist> {
        let inst = ThorupInstance::new(self.ch);
        self.solve_into(&inst, source);
        inst.distances()
    }

    /// As [`ThorupSolver::solve`], reporting an out-of-range source as a
    /// typed error instead of panicking.
    pub fn try_solve(&self, source: VertexId) -> Result<Vec<Dist>, InputError> {
        self.check_source(source)?;
        Ok(self.solve(source))
    }

    /// Convenience: certify the graph for `u32` cells, allocate a
    /// [`CompactThorupInstance`], solve, return distances. On `Err` the
    /// graph cannot be narrowed — callers fall back to
    /// [`ThorupSolver::solve`], trading the memory economy back for
    /// unrestricted weights.
    pub fn solve_compact(&self, source: VertexId) -> Result<Vec<Dist>, CompactError> {
        let inst = CompactThorupInstance::try_new(self.ch, self.graph)?;
        self.solve_into(&inst, source);
        Ok(inst.distances())
    }

    /// Runs one query into a caller-owned (fresh or reset) instance of
    /// either cell width.
    pub fn solve_into<C: MinCell>(&self, inst: &ThorupInstanceIn<C>, source: VertexId) {
        self.run(inst, source, None, None);
    }

    /// As [`ThorupSolver::solve_into`], but polls `cancel` at every
    /// bucket-expansion boundary and abandons the solve once it reads
    /// cancelled (explicit cancellation, expired deadline, or linked
    /// shutdown flag).
    ///
    /// Returns `true` when the solve ran to completion — the instance
    /// then holds exact distances. Returns `false` when interrupted; the
    /// instance is left partially solved and must be reset before reuse.
    pub fn solve_into_with_cancel<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        source: VertexId,
        cancel: &CancelToken,
    ) -> bool {
        if cancel.is_cancelled() {
            return false;
        }
        self.run(inst, source, None, Some(cancel));
        !cancel.is_cancelled()
    }

    /// Point-to-point query: runs from `source` and stops as soon as
    /// `target` settles. Returns the exact distance `δ(source, target)`.
    ///
    /// Thorup's traversal settles vertices in nondecreasing bucket order,
    /// so stopping at the target skips the rest of the graph beyond the
    /// target's bucket — a real saving when the target is close. The
    /// instance is left partially solved: only `dist_of(target)` (and
    /// distances of already-settled vertices) are final.
    pub fn solve_target<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        source: VertexId,
        target: VertexId,
    ) -> Dist {
        assert!((target as usize) < self.graph.n(), "target out of range");
        self.run(inst, source, Some(target), None);
        if inst.is_settled(target) {
            inst.dist_of(target)
        } else {
            INF
        }
    }

    /// As [`ThorupSolver::solve_target`], reporting out-of-range
    /// endpoints as typed errors instead of panicking.
    pub fn try_solve_target<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        source: VertexId,
        target: VertexId,
    ) -> Result<Dist, InputError> {
        self.check_source(source)?;
        self.check_target(target)?;
        Ok(self.solve_target(inst, source, target))
    }

    /// As [`ThorupSolver::solve_target`], but cancellable (see
    /// [`ThorupSolver::solve_into_with_cancel`]).
    ///
    /// Returns `Some(distance)` when the query produced an exact answer
    /// (the target settled, or the traversal exhausted the component and
    /// proved the target unreachable) and `None` when interrupted first.
    pub fn solve_target_with_cancel<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        source: VertexId,
        target: VertexId,
        cancel: &CancelToken,
    ) -> Option<Dist> {
        assert!((target as usize) < self.graph.n(), "target out of range");
        if cancel.is_cancelled() {
            return None;
        }
        self.run(inst, source, Some(target), Some(cancel));
        if inst.is_settled(target) {
            Some(inst.dist_of(target))
        } else if cancel.is_cancelled() {
            None
        } else {
            Some(INF)
        }
    }

    fn check_source(&self, source: VertexId) -> Result<(), InputError> {
        if (source as usize) < self.graph.n() {
            Ok(())
        } else {
            Err(InputError::SourceOutOfRange {
                source,
                n: self.graph.n(),
            })
        }
    }

    fn check_target(&self, target: VertexId) -> Result<(), InputError> {
        if (target as usize) < self.graph.n() {
            Ok(())
        } else {
            Err(InputError::TargetOutOfRange {
                target,
                n: self.graph.n(),
            })
        }
    }

    fn run<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        source: VertexId,
        target: Option<VertexId>,
        cancel: Option<&CancelToken>,
    ) {
        assert!((source as usize) < self.graph.n(), "source out of range");
        debug_assert_eq!(inst.mind.len(), self.ch.num_nodes());
        inst.dist[source as usize].fetch_min(0);
        self.propagate_mind_inst(inst, self.ch.leaf_of_vertex(source), 0);
        // The root is visited under a sentinel parent: shift 64 saturates
        // every finite mind into "bucket 0", so the root only returns when
        // its subtree is exhausted (all settled or remainder unreachable).
        self.visit(inst, self.ch.root(), 64, 0, target, cancel);
    }

    /// Recursive component visit. Invariant on entry: the parent observed
    /// `mind(node) >> parent_alpha == bucket` (or the sentinel for the
    /// root). Returns when the component is done or its `mind` leaves that
    /// bucket.
    fn visit<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        node: u32,
        parent_alpha: u8,
        bucket: u64,
        target: Option<VertexId>,
        cancel: Option<&CancelToken>,
    ) {
        if self.ch.is_leaf(node) {
            self.settle_leaf(inst, node, target);
            return;
        }
        // One pooled scan buffer serves every phase of this visit frame,
        // then goes back for sibling/descendant frames and later queries.
        let mut tovisit = inst.scan_pool.acquire();
        self.visit_phases(
            inst,
            node,
            parent_alpha,
            bucket,
            target,
            cancel,
            &mut tovisit,
        );
        inst.scan_pool.release(tovisit);
    }

    /// The phase loop of [`visit`](Self::visit), with the scan buffer
    /// lifted out so re-expansions reuse it instead of reallocating.
    #[allow(clippy::too_many_arguments)]
    fn visit_phases<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        node: u32,
        parent_alpha: u8,
        bucket: u64,
        target: Option<VertexId>,
        cancel: Option<&CancelToken>,
        tovisit: &mut Vec<u32>,
    ) {
        let alpha = self.ch.alpha(node);
        let children = self.ch.children(node);
        loop {
            // The stop flag is raised by a settled target or an observed
            // cancellation; either way every visit unwinds from here.
            if inst.stop.load(Ordering::Acquire) {
                return;
            }
            // Bucket-expansion boundaries are the solver's cooperative
            // cancellation points: coarse enough to stay off the hot
            // relaxation path, frequent enough to stop a big solve in a
            // handful of expansions.
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    inst.stop.store(true, Ordering::Release);
                    return;
                }
            }
            let m0 = inst.mind[node as usize].load();
            if m0 == INF {
                // Done: every vertex below is settled or unreachable.
                return;
            }
            if saturating_shr(m0, parent_alpha as u32) != bucket {
                // Moved past the parent's bucket: hand control back (the
                // parent re-buckets us by the current mind).
                return;
            }
            if let Some(ev) = self.counters {
                ev.bucket_expansions.bump();
            }
            let own_bucket = saturating_shr(m0, alpha as u32);
            let min_mind = scan_children_into(
                self.config.strategy(),
                children,
                &inst.mind,
                alpha,
                own_bucket,
                self.counters,
                tovisit,
            );
            if min_mind != m0 {
                // Children moved under us (concurrent relaxations, or our
                // previous expansions emptied the bucket): publish the
                // fresh minimum and re-evaluate. A failed CAS means someone
                // lowered `mind` meanwhile — loop and recompute.
                let _ = inst.mind[node as usize].compare_exchange(m0, min_mind);
                continue;
            }
            debug_assert!(
                !tovisit.is_empty(),
                "a child holding the minimum must be in its own bucket"
            );
            if tovisit.len() == 1 {
                self.visit(inst, tovisit[0], alpha, own_bucket, target, cancel);
            } else if self.config.serial_visits() {
                for &c in tovisit.iter() {
                    self.visit(inst, c, alpha, own_bucket, target, cancel);
                }
            } else {
                // Thorup's arbitrary-order guarantee: the whole bucket is
                // expanded concurrently.
                tovisit
                    .par_iter()
                    .for_each(|&c| self.visit(inst, c, alpha, own_bucket, target, cancel));
            }
        }
    }

    /// Settles the vertex of `leaf` and relaxes its edges. Idempotent: a
    /// stale `mind` may route a second visit here, which only re-clears it.
    fn settle_leaf<C: MinCell>(
        &self,
        inst: &ThorupInstanceIn<C>,
        leaf: u32,
        target: Option<VertexId>,
    ) {
        let v = self.ch.vertex_of_leaf(leaf);
        // Clear before relaxing so parents stop re-bucketing this leaf.
        inst.mind[leaf as usize].store(INF);
        if !inst.settled.set(v as usize) {
            return;
        }
        if target == Some(v) {
            inst.stop.store(true, Ordering::Release);
        }
        if let Some(ev) = self.counters {
            ev.settled.bump();
        }
        // Thorup's lemma guarantees d(v) = δ(v) here.
        let d = inst.dist[v as usize].load();
        debug_assert_ne!(d, INF, "settling an unreached vertex");
        // One fewer unsettled vertex everywhere up the chain.
        let mut x = leaf;
        loop {
            inst.unsettled[x as usize].fetch_sub(1, Ordering::AcqRel);
            let p = self.ch.parent(x);
            if p == x {
                break;
            }
            x = p;
        }
        // Relax v's edges.
        let (targets, weights) = self.graph.neighbors(v);
        if let Some(ev) = self.counters {
            ev.arcs_scanned.add(targets.len() as u64);
            ev.relaxations.add(targets.len() as u64);
        }
        for (&u, &w) in targets.iter().zip(weights) {
            let nd = d + w as Dist;
            if inst.dist[u as usize].fetch_min(nd) && !inst.settled.get(u as usize) {
                if let Some(ev) = self.counters {
                    ev.improvements.bump();
                }
                self.propagate_mind_inst(inst, self.ch.leaf_of_vertex(u), nd);
            }
        }
    }

    /// Pushes a lowered distance up the hierarchy: CAS-min each ancestor,
    /// stopping at the first that already knows something at least as
    /// small. This early stop is the paper's contention argument.
    fn propagate_mind_inst<C: MinCell>(&self, inst: &ThorupInstanceIn<C>, leaf: u32, value: Dist) {
        let mut x = leaf;
        loop {
            if !inst.mind[x as usize].fetch_min(value) {
                break;
            }
            if let Some(ev) = self.counters {
                ev.mind_propagation_hops.bump();
            }
            let p = self.ch.parent(x);
            if p == x {
                break;
            }
            x = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;

    fn solve(el: &EdgeList, source: VertexId) -> Vec<Dist> {
        let g = CsrGraph::from_edge_list(el);
        let ch = build_serial(el, ChMode::Collapsed);
        ThorupSolver::new(&g, &ch).solve(source)
    }

    #[test]
    fn figure_one_distances() {
        let d = solve(&shapes::figure_one(), 0);
        assert_eq!(d, vec![0, 1, 1, 9, 10, 10]);
    }

    #[test]
    fn path_graph() {
        assert_eq!(solve(&shapes::path(5, 3), 0), vec![0, 3, 6, 9, 12]);
        assert_eq!(solve(&shapes::path(5, 3), 4), vec![12, 9, 6, 3, 0]);
    }

    #[test]
    fn single_vertex() {
        assert_eq!(solve(&EdgeList::new(1), 0), vec![0]);
    }

    #[test]
    fn disconnected_unreachable_inf() {
        let el = EdgeList::from_triples(4, [(0, 1, 2)]);
        assert_eq!(solve(&el, 0), vec![0, 2, INF, INF]);
        assert_eq!(solve(&el, 2), vec![INF, INF, 0, INF]);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let el = EdgeList::from_triples(2, [(0, 0, 4), (0, 1, 9), (0, 1, 2)]);
        assert_eq!(solve(&el, 0), vec![0, 2]);
    }

    #[test]
    fn cheaper_detour_beats_direct_edge() {
        let el = EdgeList::from_triples(3, [(0, 1, 10), (0, 2, 1), (2, 1, 1)]);
        assert_eq!(solve(&el, 0), vec![0, 2, 1]);
    }

    #[test]
    fn try_new_rejects_mismatched_hierarchy() {
        use crate::error::InputError;
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let other = shapes::path(4, 1);
        let ch = build_serial(&other, ChMode::Collapsed);
        let err = ThorupSolver::try_new(&g, &ch).unwrap_err();
        assert_eq!(
            err,
            InputError::GraphMismatch {
                graph_n: 6,
                ch_n: 4
            }
        );
    }

    #[test]
    fn try_solve_rejects_out_of_range_source() {
        use crate::error::InputError;
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::try_new(&g, &ch).unwrap();
        assert_eq!(
            solver.try_solve(99).unwrap_err(),
            InputError::SourceOutOfRange { source: 99, n: 6 }
        );
        let inst = ThorupInstance::new(&ch);
        assert_eq!(
            solver.try_solve_target(&inst, 0, 99).unwrap_err(),
            InputError::TargetOutOfRange { target: 99, n: 6 }
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_settling() {
        use mmt_platform::CancelToken;
        let el = shapes::path(64, 1);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        inst.reset(&ch);
        let token = CancelToken::new();
        token.cancel();
        assert!(!solver.solve_into_with_cancel(&inst, 0, &token));
        assert_eq!(inst.settled_count(), 0);
    }

    #[test]
    fn cancelled_instance_resolves_fully_after_reset() {
        use mmt_platform::CancelToken;
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        inst.reset(&ch);
        let token = CancelToken::new();
        token.cancel();
        assert!(!solver.solve_into_with_cancel(&inst, 0, &token));
        // The instance is reusable: a reset clears the aborted state.
        inst.reset(&ch);
        assert!(solver.solve_into_with_cancel(&inst, 0, &CancelToken::new()));
        assert_eq!(inst.distances(), vec![0, 1, 1, 9, 10, 10]);
    }

    #[test]
    fn scan_buffers_stop_growing_after_warmup() {
        use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6);
        spec.seed = 7;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        // Serial visits: one frame live at a time, so the pool must
        // converge and later queries must not allocate a single buffer.
        let solver = ThorupSolver::new(&g, &ch).with_config(ThorupConfig::serial());
        let inst = ThorupInstance::new(&ch);
        let want = {
            inst.reset(&ch);
            solver.solve_into(&inst, 0);
            inst.distances()
        };
        let warm = inst.scan_buffers_created();
        assert!(warm >= 1);
        for s in [1u32, 5, 9, 0] {
            inst.reset(&ch);
            solver.solve_into(&inst, s);
        }
        assert_eq!(
            inst.scan_buffers_created(),
            warm,
            "steady-state visits must reuse pooled scan buffers"
        );
        inst.reset(&ch);
        solver.solve_into(&inst, 0);
        assert_eq!(inst.distances(), want);
    }

    /// The compact instance is bit-identical to the wide one on certified
    /// graphs, and certification failure falls back cleanly.
    #[test]
    fn compact_solve_matches_wide_and_falls_back() {
        use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
        for (class, wd) in [
            (GraphClass::Random, WeightDist::Uniform),
            (GraphClass::Rmat, WeightDist::PolyLog),
        ] {
            let mut spec = WorkloadSpec::new(class, wd, 8, 8);
            spec.seed = 17;
            let el = spec.generate();
            let g = CsrGraph::from_edge_list(&el);
            let ch = build_serial(&el, ChMode::Collapsed);
            let solver = ThorupSolver::new(&g, &ch);
            for s in [0u32, 17, 200] {
                let wide = solver.solve(s);
                let compact = solver.solve_compact(s).unwrap();
                assert_eq!(wide, compact, "{} source {s}", spec.name());
            }
            // A reset compact instance re-solves exactly (instance reuse).
            let inst = crate::instance::CompactThorupInstance::try_new(&ch, &g).unwrap();
            solver.solve_into(&inst, 0);
            let first = inst.distances();
            inst.reset(&ch);
            solver.solve_into(&inst, 0);
            assert_eq!(inst.distances(), first);
        }
        // Weight sums past the sentinel refuse to narrow.
        let el = EdgeList::from_triples(3, [(0, 1, u32::MAX), (1, 2, u32::MAX)]);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        assert!(solver.solve_compact(0).is_err());
        assert_eq!(
            solver.solve(0),
            vec![0, u32::MAX as Dist, 2 * u32::MAX as Dist]
        );
    }

    #[test]
    fn expired_deadline_token_interrupts_solve() {
        use mmt_platform::CancelToken;
        use std::time::Instant;
        // A deadline already in the past: the solver must notice at its
        // first expansion boundary and report an interrupted solve.
        let el = shapes::path(256, 1);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let inst = ThorupInstance::new(&ch);
        inst.reset(&ch);
        let token = CancelToken::with_deadline(Instant::now());
        assert!(!solver.solve_into_with_cancel(&inst, 0, &token));
        assert!(inst.settled_count() < 256);
    }
}
