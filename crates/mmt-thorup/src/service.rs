//! The long-lived SSSP serving layer: multi-graph, sharded, and typed.
//!
//! The paper's deployment story — build the hierarchy once, then serve a
//! stream of shortest-path queries from many clients — needs more than a
//! batch call: resident worker pools, per-worker reusable instances,
//! bounded admission, per-request deadlines, cancellation, and clean
//! shutdown. This module is that serving layer, generalised from one
//! graph to a [`GraphRegistry`] of tenants:
//!
//! * **Sharded routing.** Every registered graph gets its own bounded
//!   queue and worker pool; a request names its tenant with a typed
//!   [`GraphId`] (no raw indices cross the public surface) and is routed
//!   to that shard. One tenant's overload or eviction never blocks
//!   another's queue.
//! * **Typed requests.** [`submit`](QueryService::submit) /
//!   [`try_submit`](QueryService::try_submit) /
//!   [`submit_batch`](QueryService::submit_batch) take a chainable
//!   [`QueryRequest`] / [`BatchRequest`] carrying graph, source, optional
//!   deadline and per-request layout override; point-to-point queries go
//!   through [`submit_p2p`](QueryService::submit_p2p), which *requires*
//!   the target the full-SSSP path *rejects*. Shape errors are values
//!   ([`InputError::UnexpectedTarget`] / [`InputError::MissingTarget`]),
//!   never silent reinterpretation.
//! * **Shared arenas.** All shards serve off the registry's `Arc`-shared
//!   [`CsrArena`](mmt_graph::CsrArena)s: N graphs store each arc array
//!   exactly once, and the registry's resident-bytes gauge feeds the
//!   optional [`memory_limit`](QueryServiceBuilder::memory_limit)
//!   admission check ([`ServiceError::MemoryPressure`]).
//! * **Lifecycle.** [`QueryService::evict_graph`] closes one shard,
//!   resolves its queued requests to [`ServiceError::GraphEvicted`],
//!   joins its workers and drops the registry's data. Eviction is
//!   refcounted: in-flight solves keep their layout `Arc`s alive and
//!   finish normally.
//! * **Coalescing scheduler.** A worker that dequeues a full-SSSP query
//!   gathers queued queries for the same graph and layout — up to
//!   [`coalesce_batch_cap`](QueryServiceBuilder::coalesce_batch_cap),
//!   waiting at most [`coalesce_budget`](QueryServiceBuilder::coalesce_budget)
//!   and never past the earliest member deadline — and solves them in one
//!   [`BatchSolver`] run, converting the batch path's amortisation into
//!   serving throughput. The default zero budget adds no latency: batches
//!   form exactly when a backlog exists. `coalesced_batches` /
//!   `coalesced_queries` in [`ServiceMetrics`] observe it;
//!   [`QueryServiceBuilder::no_coalescing`] turns it off.
//!
//! Each worker owns one [`ThorupInstance`] (a `w`-worker shard pins
//! exactly `w` instances — the paper's Section 5.2 memory model), pulls
//! requests from its shard's **bounded** queue, and answers through a
//! per-request reply channel. Admission control is typed: when the queue
//! is full, [`QueryService::try_submit`] returns
//! [`ServiceError::Overloaded`] instead of blocking. Every request
//! carries a [`CancelToken`]; dropping a handle, an expired deadline, or
//! an abort-mode shutdown stops the query — checked at dequeue *and*
//! cooperatively inside the solver at bucket-expansion boundaries.
//!
//! The service also degrades gracefully instead of deadlocking:
//!
//! * **Poisoned workers.** A panic while a request is in flight is
//!   caught ([`std::panic::catch_unwind`]); the request resolves to
//!   [`ServiceError::WorkerLost`], the worker's per-query state is torn
//!   down and respawned, and the pool returns to full strength
//!   ([`ServiceMetrics::workers_restarted`] /
//!   [`ServiceMetrics::requests_lost`] record the damage).
//! * **Load shedding.** Under sustained overload,
//!   [`ShedPolicy::RejectOldestExpired`] evicts queued requests whose
//!   deadline has already passed (or that were cancelled) to admit fresh
//!   work; evicted requests resolve to [`ServiceError::Shed`] — never a
//!   timeout-by-silence — and queue depth never exceeds capacity.
//! * **Fault injection.** The chaos suite threads a seeded
//!   [`mmt_platform::FaultPlan`] through the workers via
//!   [`QueryServiceBuilder::fault_plan`]. Beyond panics, stalls and
//!   allocation pressure, `FaultKind::DropReply` severs the reply channel
//!   at the worker's reply site (the client sees a disconnect, the
//!   service counts `requests_lost`), and `FaultSite::ClientWait` fires
//!   on the *client* thread inside [`QueryHandle::wait`] — a stall there
//!   simulates a slow client, a drop there withdraws the query.
//!   `DropReply` is honoured at the `Reply` and `ClientWait` sites and
//!   ignored elsewhere. Production services pay one `Option` branch per
//!   injection site.
//!
//! ```
//! use mmt_ch::build_parallel;
//! use mmt_graph::{gen::shapes, CsrGraph};
//! use mmt_thorup::service::QueryRequest;
//! use mmt_thorup::{GraphRegistry, QueryService};
//!
//! let el = shapes::figure_one();
//! let g = CsrGraph::from_edge_list(&el);
//! let ch = build_parallel(&el);
//! let mut registry = GraphRegistry::new();
//! let id = registry.register("figure-one", &g, ch.into()).unwrap();
//! let service = QueryService::builder()
//!     .workers(2)
//!     .queue_capacity(64)
//!     .build_registry(registry)
//!     .unwrap();
//! let handle = service.submit(QueryRequest::on(id, 0)).unwrap();
//! assert_eq!(handle.wait().unwrap()[5], 10);
//! assert_eq!(service.metrics().served_full(), 1);
//! ```

use crate::batch::{BatchSolver, DistancePool, PooledDistances};
use crate::error::{InputError, ServiceError};
use crate::instance::ThorupInstance;
use crate::layout::{GraphLayout, LayoutKind};
use crate::registry::{GraphId, GraphRegistry, QueryId};
use crate::solver::{ThorupConfig, ThorupSolver};
use crate::trace::{TraceEvent, TraceSink};
use crossbeam::channel::{bounded, Receiver, Sender};
use mmt_baselines::{
    adaptive_delta, bidirectional_st, delta_stepping_st, BidiScratch, DeltaScratch,
};
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId};
use mmt_graph::{CsrGraph, SplitCsr};
use mmt_platform::{
    AtomicLog2Histogram, CancelToken, CoalescePop, Counter, CountersSnapshot, CpuTopology,
    EventCounters, FaultEffect, FaultPlan, FaultSite, Log2Histogram, MemoryGauge, PinPolicy,
    PushRejected, QuantileSummary, ShedQueue,
};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One queued unit of work, routed to a shard at admission.
struct Request {
    kind: RequestKind,
    token: CancelToken,
    enqueued: Instant,
    /// Per-request layout override, resolved against the registry at
    /// admission; `None` solves on the shard's default layout.
    layout: Option<Arc<GraphLayout>>,
    /// The typed id the admitting submit handed back; trace events carry
    /// it so a client can correlate a slow handle with its lifecycle.
    id: QueryId,
}

enum RequestKind {
    Full {
        source: VertexId,
        reply: Sender<Result<Vec<Dist>, ServiceError>>,
    },
    Target {
        source: VertexId,
        target: VertexId,
        algo: P2pAlgo,
        reply: Sender<Result<Dist, ServiceError>>,
    },
    Batch {
        source: VertexId,
        member: BatchMember,
    },
}

/// Shared completion state of one batch: one slot per source, a countdown,
/// and the signal that flips when the countdown hits zero. All member
/// metrics are recorded here — exactly once per slot, whatever path
/// resolved it (worker answer, dequeue-time failure, or a request dropped
/// by shutdown).
struct BatchCollector {
    slots: Mutex<Vec<Option<Result<PooledDistances, ServiceError>>>>,
    remaining: AtomicUsize,
    done: Sender<()>,
    metrics: Arc<ServiceMetrics>,
    stats: Arc<GraphStats>,
}

impl BatchCollector {
    fn fulfil(&self, slot: usize, result: Result<PooledDistances, ServiceError>) {
        match &result {
            Ok(_) => {
                self.metrics.served_batch.bump();
                self.stats.served.bump();
            }
            Err(e) => self.metrics.note_failure(e),
        }
        self.slots.lock()[slot] = Some(result);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _ = self.done.send(());
        }
    }
}

/// One batch slot's write-once capability. If the request carrying it is
/// dropped unresolved (e.g. discarded from the queue at shutdown), the
/// slot resolves to [`ServiceError::ShutDown`] so the batch never hangs.
struct BatchMember {
    collector: Arc<BatchCollector>,
    slot: usize,
    resolved: bool,
}

impl BatchMember {
    fn new(collector: Arc<BatchCollector>, slot: usize) -> Self {
        Self {
            collector,
            slot,
            resolved: false,
        }
    }

    fn fulfil(mut self, result: Result<PooledDistances, ServiceError>) {
        self.resolved = true;
        self.collector.fulfil(self.slot, result);
    }
}

impl Drop for BatchMember {
    fn drop(&mut self) {
        if !self.resolved {
            self.collector
                .fulfil(self.slot, Err(ServiceError::ShutDown));
        }
    }
}

/// A handle to an in-flight batch of full SSSP queries. Dropping it
/// without waiting cancels every member.
pub struct BatchHandle {
    done: Option<Receiver<()>>,
    collector: Arc<BatchCollector>,
    token: CancelToken,
    id: QueryId,
    faults: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for BatchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchHandle")
            .field("id", &self.id)
            .field("waited", &self.done.is_none())
            .finish_non_exhaustive()
    }
}

impl BatchHandle {
    /// The typed id this batch was admitted under.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Blocks until every member has an answer or a typed rejection,
    /// returning per-source results in submission order. Result vectors
    /// are on loan from the service's pool: dropping one recycles its
    /// buffer for later queries.
    pub fn wait(mut self) -> Vec<Result<PooledDistances, ServiceError>> {
        if let Some(plan) = &self.faults {
            // A client-side drop withdraws the not-yet-answered members;
            // the batch still resolves every slot (Cancelled or Ok).
            if plan.fire(FaultSite::ClientWait).drops_reply() {
                self.token.cancel();
            }
        }
        let done = self.done.take().expect("done receiver taken once");
        // Every member slot is guaranteed to resolve (worker, dequeue
        // check, or drop guard), so this cannot hang; a disconnect would
        // mean the collector died, which the Arc we hold rules out.
        let _ = done.recv();
        let mut slots = self.collector.slots.lock();
        slots
            .drain(..)
            .map(|r| r.expect("all slots resolved before done fires"))
            .collect()
    }

    /// Requests cancellation of every not-yet-answered member.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

impl Drop for BatchHandle {
    fn drop(&mut self) {
        if self.done.is_some() {
            self.token.cancel();
        }
    }
}

macro_rules! impl_handle {
    ($(#[$doc:meta])* $name:ident, $ok:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            reply: Option<Receiver<Result<$ok, ServiceError>>>,
            token: CancelToken,
            id: QueryId,
            faults: Option<Arc<FaultPlan>>,
        }

        impl $name {
            /// The typed id this request was admitted under.
            pub fn id(&self) -> QueryId {
                self.id
            }

            /// Fires the client-wait fault site, if a plan is installed.
            /// A stall there simulates a slow client; a reply-drop there
            /// withdraws the query from the client side.
            fn fire_client_wait(&self) -> bool {
                let Some(plan) = &self.faults else {
                    return false;
                };
                if plan.fire(FaultSite::ClientWait).drops_reply() {
                    self.token.cancel();
                    return true;
                }
                false
            }

            /// Blocks until the answer (or a typed rejection) arrives.
            ///
            /// [`ServiceError::ShutDown`] is returned when the service
            /// stopped before answering.
            pub fn wait(mut self) -> Result<$ok, ServiceError> {
                if self.fire_client_wait() {
                    return Err(ServiceError::Cancelled);
                }
                let reply = self.reply.take().expect("reply receiver taken once");
                match reply.recv() {
                    Ok(result) => result,
                    Err(_) => Err(ServiceError::ShutDown),
                }
            }

            /// As [`wait`](Self::wait), giving up (and cancelling the
            /// query) when no answer arrives within `timeout`.
            pub fn wait_timeout(mut self, timeout: Duration) -> Result<$ok, ServiceError> {
                if self.fire_client_wait() {
                    return Err(ServiceError::Cancelled);
                }
                let reply = self.reply.take().expect("reply receiver taken once");
                match reply.recv_timeout(timeout) {
                    Ok(result) => result,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        self.token.cancel();
                        Err(ServiceError::DeadlineExceeded)
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        Err(ServiceError::ShutDown)
                    }
                }
            }

            /// Requests cancellation of the in-flight query without
            /// consuming the handle. The eventual [`wait`](Self::wait)
            /// reports [`ServiceError::Cancelled`] unless the answer was
            /// already produced.
            pub fn cancel(&self) {
                self.token.cancel();
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                // A handle dropped without being waited on withdraws the
                // query: queued requests are discarded at dequeue and
                // in-flight solves stop at the next expansion boundary.
                if self.reply.is_some() {
                    self.token.cancel();
                }
            }
        }
    };
}

impl_handle!(
    /// A handle to an in-flight full SSSP query. Dropping it without
    /// waiting cancels the query.
    QueryHandle,
    Vec<Dist>
);
impl_handle!(
    /// A handle to an in-flight point-to-point query. Dropping it
    /// without waiting cancels the query.
    TargetHandle,
    Dist
);

/// Per-graph serving counters, listed in [`MetricsSnapshot::graphs`]. The
/// resident gauge is shared with the registry, so the snapshot reflects
/// evictions immediately.
#[derive(Debug)]
struct GraphStats {
    name: String,
    served: Counter,
    shed: Counter,
    resident: Arc<MemoryGauge>,
}

/// Live service counters and histograms. All updates are relaxed; read
/// them individually or atomically-enough via
/// [`snapshot`](ServiceMetrics::snapshot).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    served_full: Counter,
    served_target: Counter,
    served_batch: Counter,
    rejected_overload: Counter,
    rejected_deadline: Counter,
    rejected_shutdown: Counter,
    rejected_input: Counter,
    rejected_evicted: Counter,
    rejected_memory: Counter,
    cancelled: Counter,
    requests_lost: Counter,
    shed: Counter,
    workers_restarted: Counter,
    queue_depth: Counter,
    inflight: Counter,
    coalesced_batches: Counter,
    coalesced_queries: Counter,
    latency_us: AtomicLog2Histogram,
    queue_wait_us: AtomicLog2Histogram,
    /// One entry per registered graph, fixed at build time.
    graphs: Mutex<Vec<Arc<GraphStats>>>,
}

impl ServiceMetrics {
    /// Full queries answered.
    pub fn served_full(&self) -> u64 {
        self.served_full.get()
    }

    /// Targeted queries answered.
    pub fn served_target(&self) -> u64 {
        self.served_target.get()
    }

    /// Batch-member queries answered (one per source per batch).
    pub fn served_batch(&self) -> u64 {
        self.served_batch.get()
    }

    /// Requests refused at admission because the queue was full.
    pub fn rejected_overload(&self) -> u64 {
        self.rejected_overload.get()
    }

    /// Requests whose deadline passed before an answer was produced.
    pub fn rejected_deadline(&self) -> u64 {
        self.rejected_deadline.get()
    }

    /// Requests refused or abandoned because the service shut down.
    pub fn rejected_shutdown(&self) -> u64 {
        self.rejected_shutdown.get()
    }

    /// Requests refused because they were malformed (e.g. an
    /// out-of-range source).
    pub fn rejected_input(&self) -> u64 {
        self.rejected_input.get()
    }

    /// Requests refused or abandoned because their graph was evicted
    /// from the registry.
    pub fn rejected_evicted(&self) -> u64 {
        self.rejected_evicted.get()
    }

    /// Requests refused at admission because registry resident bytes
    /// exceeded the configured memory limit.
    pub fn rejected_memory(&self) -> u64 {
        self.rejected_memory.get()
    }

    /// Queries cancelled by their holder (dropped or cancelled handles).
    pub fn cancelled(&self) -> u64 {
        self.cancelled.get()
    }

    /// Requests whose worker panicked mid-flight (each resolved to
    /// [`ServiceError::WorkerLost`]) plus answers lost to an injected
    /// reply-channel drop — never silently uncounted.
    pub fn requests_lost(&self) -> u64 {
        self.requests_lost.get()
    }

    /// Queued requests evicted by the load-shedding policy.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Workers respawned after a panic; the pool is back at full
    /// strength once the counter stops moving.
    pub fn workers_restarted(&self) -> u64 {
        self.workers_restarted.get()
    }

    /// Requests currently sitting in a shard queue (gauge, all shards).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get()
    }

    /// Requests currently being solved (gauge, all shards).
    pub fn inflight(&self) -> u64 {
        self.inflight.get()
    }

    /// Coalesced batches formed: dequeue-time groupings of two or more
    /// queued full-SSSP queries solved by one `BatchSolver` run.
    /// Singleton formations are not counted.
    pub fn coalesced_batches(&self) -> u64 {
        self.coalesced_batches.get()
    }

    /// Queries that rode a coalesced batch (members of formations counted
    /// by [`coalesced_batches`](Self::coalesced_batches)).
    pub fn coalesced_queries(&self) -> u64 {
        self.coalesced_queries.get()
    }

    /// End-to-end latency (enqueue to answer) of served queries, in
    /// microseconds.
    pub fn latency_us(&self) -> Log2Histogram {
        self.latency_us.snapshot()
    }

    /// Time served queries spent queued before a worker picked them up,
    /// in microseconds.
    pub fn queue_wait_us(&self) -> Log2Histogram {
        self.queue_wait_us.snapshot()
    }

    /// A point-in-time copy of every counter and histogram, per-graph
    /// sections included.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            served_full: self.served_full(),
            served_target: self.served_target(),
            served_batch: self.served_batch(),
            rejected_overload: self.rejected_overload(),
            rejected_deadline: self.rejected_deadline(),
            rejected_shutdown: self.rejected_shutdown(),
            rejected_input: self.rejected_input(),
            rejected_evicted: self.rejected_evicted(),
            rejected_memory: self.rejected_memory(),
            cancelled: self.cancelled(),
            requests_lost: self.requests_lost(),
            shed: self.shed(),
            workers_restarted: self.workers_restarted(),
            queue_depth: self.queue_depth(),
            inflight: self.inflight(),
            coalesced_batches: self.coalesced_batches(),
            coalesced_queries: self.coalesced_queries(),
            graphs: self
                .graphs
                .lock()
                .iter()
                .map(|g| GraphMetricsSnapshot {
                    name: g.name.clone(),
                    served: g.served.get(),
                    shed: g.shed.get(),
                    resident_bytes: g.resident.resident() as u64,
                })
                .collect(),
            latency_us: self.latency_us(),
            queue_wait_us: self.queue_wait_us(),
        }
    }

    /// Records a terminal rejection against the matching counter.
    fn note_failure(&self, err: &ServiceError) {
        match err {
            ServiceError::Overloaded { .. } => self.rejected_overload.bump(),
            ServiceError::DeadlineExceeded => self.rejected_deadline.bump(),
            ServiceError::ShutDown => self.rejected_shutdown.bump(),
            ServiceError::Cancelled => self.cancelled.bump(),
            ServiceError::WorkerLost => self.requests_lost.bump(),
            ServiceError::Shed => self.shed.bump(),
            ServiceError::GraphEvicted => self.rejected_evicted.bump(),
            ServiceError::MemoryPressure { .. } => self.rejected_memory.bump(),
            ServiceError::Input(_) => self.rejected_input.bump(),
        }
    }
}

/// One graph's section of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphMetricsSnapshot {
    /// The name the graph was registered under.
    pub name: String,
    /// Queries answered for this graph (full, targeted and batch).
    pub served: u64,
    /// Queued requests of this graph evicted by the load-shedding policy.
    pub shed: u64,
    /// Registry bytes currently resident for this graph (arena +
    /// hierarchy + cached layout marginals; zero after eviction).
    pub resident_bytes: u64,
}

/// A point-in-time copy of [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Full queries answered.
    pub served_full: u64,
    /// Targeted queries answered.
    pub served_target: u64,
    /// Batch-member queries answered.
    pub served_batch: u64,
    /// Requests refused at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests whose deadline passed before an answer was produced.
    pub rejected_deadline: u64,
    /// Requests refused or abandoned because the service shut down.
    pub rejected_shutdown: u64,
    /// Malformed requests.
    pub rejected_input: u64,
    /// Requests refused or abandoned because their graph was evicted.
    pub rejected_evicted: u64,
    /// Requests refused by the memory-pressure admission check.
    pub rejected_memory: u64,
    /// Queries cancelled by their holder.
    pub cancelled: u64,
    /// Requests lost to a worker panic or an injected reply drop.
    pub requests_lost: u64,
    /// Queued requests evicted by the load-shedding policy.
    pub shed: u64,
    /// Workers respawned after a panic.
    pub workers_restarted: u64,
    /// Requests queued at snapshot time (gauge).
    pub queue_depth: u64,
    /// Requests being solved at snapshot time (gauge).
    pub inflight: u64,
    /// Coalesced (≥ 2-member) batches formed at dequeue.
    pub coalesced_batches: u64,
    /// Queries that rode a coalesced batch.
    pub coalesced_queries: u64,
    /// Per-graph served/shed/resident sections, in registration order.
    pub graphs: Vec<GraphMetricsSnapshot>,
    /// End-to-end latency of served queries (µs).
    pub latency_us: Log2Histogram,
    /// Queue wait of dequeued requests (µs).
    pub queue_wait_us: Log2Histogram,
}

impl MetricsSnapshot {
    /// Queries answered, of any kind.
    pub fn served_total(&self) -> u64 {
        self.served_full + self.served_target + self.served_batch
    }

    /// Requests that terminated without an answer, for any reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_overload
            + self.rejected_deadline
            + self.rejected_shutdown
            + self.rejected_input
            + self.rejected_evicted
            + self.rejected_memory
            + self.cancelled
            + self.requests_lost
            + self.shed
    }

    /// p50/p95/p99 summary of the end-to-end latency histogram. Reported
    /// percentiles carry the histogram's log2 bucket-bound error: for a
    /// nonzero exact quantile `q`, `q <= reported <= 2*q - 1` (see
    /// [`Log2Histogram::quantiles`]).
    pub fn latency_quantiles(&self) -> QuantileSummary {
        self.latency_us.quantiles()
    }

    /// p50/p95/p99 summary of the queue-wait histogram, with the same
    /// bucket-bound error as [`latency_quantiles`](Self::latency_quantiles).
    pub fn queue_wait_quantiles(&self) -> QuantileSummary {
        self.queue_wait_us.quantiles()
    }

    /// Renders the snapshot as a JSON object (histograms and per-graph
    /// sections included).
    pub fn to_json(&self) -> String {
        let graphs: Vec<String> = self
            .graphs
            .iter()
            .map(|g| {
                format!(
                    "{{\"name\":\"{}\",\"served\":{},\"shed\":{},\"resident_bytes\":{}}}",
                    escape_json(&g.name),
                    g.served,
                    g.shed,
                    g.resident_bytes,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"served_full\":{},\"served_target\":{},",
                "\"served_batch\":{},",
                "\"rejected_overload\":{},\"rejected_deadline\":{},",
                "\"rejected_shutdown\":{},\"rejected_input\":{},",
                "\"rejected_evicted\":{},\"rejected_memory\":{},",
                "\"cancelled\":{},\"requests_lost\":{},\"shed\":{},",
                "\"workers_restarted\":{},",
                "\"queue_depth\":{},\"inflight\":{},",
                "\"coalesced_batches\":{},\"coalesced_queries\":{},",
                "\"graphs\":[{}],",
                "\"latency_quantiles_us\":{},\"queue_wait_quantiles_us\":{},",
                "\"latency_us\":{},\"queue_wait_us\":{}}}"
            ),
            self.served_full,
            self.served_target,
            self.served_batch,
            self.rejected_overload,
            self.rejected_deadline,
            self.rejected_shutdown,
            self.rejected_input,
            self.rejected_evicted,
            self.rejected_memory,
            self.cancelled,
            self.requests_lost,
            self.shed,
            self.workers_restarted,
            self.queue_depth,
            self.inflight,
            self.coalesced_batches,
            self.coalesced_queries,
            graphs.join(","),
            self.latency_quantiles().to_json(),
            self.queue_wait_quantiles().to_json(),
            self.latency_us.to_json(),
            self.queue_wait_us.to_json(),
        )
    }
}

/// Minimal string escaping for the hand-rolled JSON artifacts: quotes,
/// backslashes and control characters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How [`QueryService::shutdown`] treats outstanding work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admission, answer everything already queued, then stop.
    Drain,
    /// Stop admission and abandon queued and in-flight queries: their
    /// handles resolve to [`ServiceError::ShutDown`] promptly (in-flight
    /// solves stop at the next bucket-expansion boundary).
    Abort,
}

/// What the service does with an arriving request when the bounded queue
/// is already full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the arriving request: `try_submit` reports
    /// [`ServiceError::Overloaded`], blocking `submit` waits for room.
    /// The default — exactly the pre-shedding behaviour.
    #[default]
    RejectNewest,
    /// Evict queued requests that are already dead — deadline passed,
    /// handle dropped, or service aborting — oldest first, to admit the
    /// arriving one. Evicted requests resolve to [`ServiceError::Shed`].
    /// When nothing is evictable this degrades to [`RejectNewest`](Self::RejectNewest).
    RejectOldestExpired,
}

/// A chainable full-SSSP or point-to-point query description.
///
/// Built from a bare source (`submit(3)` — routed to the first registered
/// graph) or explicitly with [`QueryRequest::on`]; point-to-point queries
/// start from [`QueryRequest::st`] / [`QueryRequest::st_on`]; refined with
/// [`target`](QueryRequest::target), [`deadline`](QueryRequest::deadline),
/// [`layout`](QueryRequest::layout) and [`algo`](QueryRequest::algo). The
/// full-SSSP entry points
/// reject a request with a target set, and [`QueryService::submit_p2p`]
/// rejects one without — the request's shape is checked, not guessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRequest {
    graph: GraphId,
    source: VertexId,
    target: Option<VertexId>,
    deadline: Option<Duration>,
    layout: Option<LayoutKind>,
    algo: P2pAlgo,
}

/// Which solver answers a point-to-point ([`QueryRequest::st`]) request.
///
/// All three are exact: they agree with each other and with full SSSP at
/// the target on every input (the verify harness runs them as the
/// `p2p-bidi`/`p2p-delta-early` differential engines), and all of them
/// prove unreachability rather than timing out. They differ only in how
/// much of the graph they touch before the stopping criterion fires —
/// `bench_road` measures exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum P2pAlgo {
    /// Thorup's hierarchy-guided search with target early exit — the
    /// default, reusing the worker's resident solver and instance.
    #[default]
    Thorup,
    /// Bidirectional Dijkstra: forward and backward searches meet in the
    /// middle, stopping when `top(fwd) + top(bwd) ≥ best` meeting.
    Bidirectional,
    /// Δ-stepping that stops once the target's bucket has settled.
    DeltaEarly,
}

impl QueryRequest {
    /// A query on the *first* registered graph — the single-tenant
    /// convenience, equivalent to the pre-registry API.
    pub fn new(source: VertexId) -> Self {
        Self::on(GraphId::from_index(0), source)
    }

    /// A query on a specific registered graph.
    pub fn on(graph: GraphId, source: VertexId) -> Self {
        Self {
            graph,
            source,
            target: None,
            deadline: None,
            layout: None,
            algo: P2pAlgo::default(),
        }
    }

    /// A point-to-point query on the *first* registered graph — shorthand
    /// for `QueryRequest::new(source).target(target)`, ready for
    /// [`QueryService::submit_p2p`].
    pub fn st(source: VertexId, target: VertexId) -> Self {
        Self::new(source).target(target)
    }

    /// A point-to-point query on a specific registered graph.
    pub fn st_on(graph: GraphId, source: VertexId, target: VertexId) -> Self {
        Self::on(graph, source).target(target)
    }

    /// Sets the target vertex, making this a point-to-point request for
    /// [`QueryService::submit_p2p`].
    pub fn target(mut self, target: VertexId) -> Self {
        self.target = Some(target);
        self
    }

    /// Selects the point-to-point solver (default [`P2pAlgo::Thorup`]).
    /// Meaningful only for requests with a target; the full-SSSP entry
    /// points ignore it.
    pub fn algo(mut self, algo: P2pAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets a per-request deadline (overriding the builder's default).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Solves this request on a specific cached layout instead of the
    /// service default. The layout is resolved (and built on first use)
    /// through the registry's layout cache at admission.
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.layout = Some(layout);
        self
    }
}

impl From<VertexId> for QueryRequest {
    fn from(source: VertexId) -> Self {
        Self::new(source)
    }
}

impl From<(GraphId, VertexId)> for QueryRequest {
    fn from((graph, source): (GraphId, VertexId)) -> Self {
        Self::on(graph, source)
    }
}

/// A chainable batch description: one full SSSP query per source, all on
/// one graph, sharing a deadline, a cancellation token and a completion
/// signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    graph: GraphId,
    sources: Vec<VertexId>,
    deadline: Option<Duration>,
    layout: Option<LayoutKind>,
}

impl BatchRequest {
    /// A batch on the *first* registered graph.
    pub fn new(sources: impl Into<Vec<VertexId>>) -> Self {
        Self::on(GraphId::from_index(0), sources)
    }

    /// A batch on a specific registered graph.
    pub fn on(graph: GraphId, sources: impl Into<Vec<VertexId>>) -> Self {
        Self {
            graph,
            sources: sources.into(),
            deadline: None,
            layout: None,
        }
    }

    /// Sets a deadline applied to every member (overriding the builder's
    /// default).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Solves every member on a specific cached layout instead of the
    /// service default.
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.layout = Some(layout);
        self
    }
}

impl From<&[VertexId]> for BatchRequest {
    fn from(sources: &[VertexId]) -> Self {
        Self::new(sources.to_vec())
    }
}

impl<const N: usize> From<&[VertexId; N]> for BatchRequest {
    fn from(sources: &[VertexId; N]) -> Self {
        Self::new(sources.to_vec())
    }
}

impl From<&Vec<VertexId>> for BatchRequest {
    fn from(sources: &Vec<VertexId>) -> Self {
        Self::new(sources.clone())
    }
}

impl From<Vec<VertexId>> for BatchRequest {
    fn from(sources: Vec<VertexId>) -> Self {
        Self::new(sources)
    }
}

/// The dequeue-time coalescing configuration one worker observes.
#[derive(Debug, Clone, Copy)]
struct CoalesceSettings {
    enabled: bool,
    budget: Duration,
    cap: usize,
}

impl Default for CoalesceSettings {
    fn default() -> Self {
        Self {
            enabled: true,
            budget: Duration::ZERO,
            cap: 16,
        }
    }
}

/// Builder for [`QueryService`]; obtained from [`QueryService::builder`].
#[derive(Debug, Clone)]
pub struct QueryServiceBuilder {
    workers: Option<usize>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    layout: LayoutKind,
    shed_policy: ShedPolicy,
    fault_plan: Option<Arc<FaultPlan>>,
    memory_limit: Option<usize>,
    coalesce: CoalesceSettings,
    trace: Option<Arc<dyn TraceSink>>,
    pin: Option<PinPolicy>,
}

impl Default for QueryServiceBuilder {
    fn default() -> Self {
        Self {
            workers: None,
            queue_capacity: 1024,
            default_deadline: None,
            layout: LayoutKind::Natural,
            shed_policy: ShedPolicy::default(),
            fault_plan: None,
            memory_limit: None,
            coalesce: CoalesceSettings::default(),
            trace: None,
            pin: None,
        }
    }
}

impl QueryServiceBuilder {
    /// Sets the number of resident worker threads *per shard* (per
    /// registered graph). Defaults to the hardware thread count. `0` is
    /// allowed and spawns no workers — requests queue up to capacity
    /// without being answered, which is useful for admission-control
    /// tests and staged startup.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets each shard's bounded request-queue capacity (clamped to at
    /// least 1; default 1024). When a shard's queue is full, `try_submit`
    /// returns [`ServiceError::Overloaded`] and blocking `submit` waits.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets a deadline applied to every request that does not carry its
    /// own. Default: none.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the memory layout every shard solves on by default (default
    /// [`LayoutKind::Natural`], which shares the registry's arena and
    /// costs no marginal bytes). A non-natural layout is built through
    /// the registry's cache once per graph at service construction;
    /// every query then runs on the permuted structures and pays one
    /// O(n) scatter to answer in original vertex ids — callers never see
    /// internal ids. Individual requests may override this with
    /// [`QueryRequest::layout`].
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the overload policy applied at enqueue when a shard's
    /// bounded queue is full (default [`ShedPolicy::RejectNewest`]).
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Installs a fault-injection plan observed by every worker — the
    /// chaos suite's hook. Default: none, costing one `Option` branch
    /// per injection site.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Caps registry resident bytes at admission: a request arriving
    /// while [`GraphRegistry::resident_bytes`] exceeds `bytes` is
    /// refused with [`ServiceError::MemoryPressure`]. The check is
    /// advisory (admission-time, not allocation-time) and applies to
    /// every shard. Default: unlimited.
    pub fn memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Sets how long a worker that just dequeued a full-SSSP query may
    /// wait for more same-graph, same-layout queries to coalesce into one
    /// [`BatchSolver`] run (default [`Duration::ZERO`]: the worker grabs
    /// whatever is *already* queued and never waits, so coalescing adds
    /// no latency and batches form exactly when there is a backlog).
    ///
    /// The window is always clamped to the earliest member deadline —
    /// coalescing never waits a member past its deadline — and a member
    /// whose deadline does expire while the batch forms is shed loudly
    /// ([`ServiceError::DeadlineExceeded`]), never solved late.
    pub fn coalesce_budget(mut self, budget: Duration) -> Self {
        self.coalesce.enabled = true;
        self.coalesce.budget = budget;
        self
    }

    /// Caps how many queries one coalesced batch may carry (clamped to at
    /// least 1; default 16). Reaching the cap ends the coalescing window
    /// early.
    pub fn coalesce_batch_cap(mut self, cap: usize) -> Self {
        self.coalesce.cap = cap.max(1);
        self
    }

    /// Disables dequeue-time coalescing: every full-SSSP query solves
    /// alone, exactly as before the scheduler existed. Chaos tests that
    /// pin per-request fault ordinals use this.
    pub fn no_coalescing(mut self) -> Self {
        self.coalesce.enabled = false;
        self
    }

    /// Sets how shard workers are pinned to CPUs. Defaults to the
    /// `MMT_PIN` environment variable ([`PinPolicy::from_env`]): unset or
    /// unrecognised means no pinning. Pinning is advisory — on platforms
    /// where affinity cannot be set the workers run unpinned and nothing
    /// else changes.
    pub fn pin_policy(mut self, pin: PinPolicy) -> Self {
        self.pin = Some(pin);
        self
    }

    /// Installs a per-query trace sink. Every resolved query then emits
    /// one [`TraceEvent`] (enqueue/dequeue/coalesce/solve/reply
    /// timestamps, work counters, coalesced-batch membership) to `sink`
    /// from the worker that resolved it. Default: none — the workers read
    /// no extra clocks or counters, so tracing is zero-cost when off.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Spawns one worker pool per registered graph and starts the
    /// service. The builder's default [`layout`](Self::layout) is built
    /// (and cached) for every graph up front, so serving never pays a
    /// layout-build latency.
    ///
    /// Fails with [`ServiceError::GraphEvicted`] when a graph was
    /// evicted from `registry` before the service was built, or with
    /// [`ServiceError::Input`] when a layout cannot be built.
    pub fn build_registry(self, registry: GraphRegistry) -> Result<QueryService, ServiceError> {
        let registry = Arc::new(registry);
        let worker_count = self.workers.unwrap_or_else(mmt_platform::available_threads);
        let pin = self.pin.unwrap_or_else(PinPolicy::from_env);
        // One plan for every shard: worker i of each shard lands on the
        // same CPU, so a shard's workers spread the same way the pool's
        // would. Advisory — an unpinnable platform yields all-None.
        let pin_plan: Arc<Vec<Option<usize>>> = Arc::new(if pin == PinPolicy::None {
            vec![None; worker_count]
        } else {
            CpuTopology::discover().pin_plan(pin, worker_count)
        });
        let metrics = Arc::new(ServiceMetrics::default());
        let abort = Arc::new(AtomicBool::new(false));
        let trace = self.trace.map(|sink| {
            Arc::new(TraceShared {
                sink,
                epoch: Instant::now(),
                next_batch: AtomicU64::new(0),
            })
        });
        let mut shards = Vec::with_capacity(registry.len());
        for id in registry.ids() {
            let layout = registry.layout(id, self.layout)?;
            let stats = Arc::new(GraphStats {
                name: registry.name(id).map_err(ServiceError::Input)?.to_string(),
                served: Counter::new(),
                shed: Counter::new(),
                resident: registry.resident_gauge(id).map_err(ServiceError::Input)?,
            });
            metrics.graphs.lock().push(Arc::clone(&stats));
            let queue = Arc::new(ShedQueue::new(self.queue_capacity));
            let distances = DistancePool::new();
            let evicted = Arc::new(AtomicBool::new(false));
            let workers = (0..worker_count)
                .map(|i| {
                    let shared = WorkerShared {
                        layout: Arc::clone(&layout),
                        queue: Arc::clone(&queue),
                        metrics: Arc::clone(&metrics),
                        stats: Arc::clone(&stats),
                        distances: distances.clone(),
                        faults: self.fault_plan.clone(),
                        evicted: Arc::clone(&evicted),
                        coalesce: self.coalesce,
                        trace: trace.clone(),
                    };
                    let plan = Arc::clone(&pin_plan);
                    std::thread::Builder::new()
                        .name(format!("mmt-query-{id}-{i}"))
                        .spawn(move || {
                            if let Some(cpu) = plan.get(i).copied().flatten() {
                                let _ = mmt_platform::topology::pin_current_thread(cpu);
                            }
                            worker_thread(&shared)
                        })
                        .expect("spawn service worker")
                })
                .collect();
            shards.push(Shard {
                queue,
                workers: Mutex::new(workers),
                graph_n: layout.graph().n(),
                distances,
                stats,
                evicted,
            });
        }
        Ok(QueryService {
            registry,
            shards,
            metrics,
            abort,
            queue_capacity: self.queue_capacity,
            default_deadline: self.default_deadline,
            worker_count,
            shed_policy: self.shed_policy,
            default_layout: self.layout,
            memory_limit: self.memory_limit,
            faults: self.fault_plan,
            coalesce: self.coalesce,
            pin,
            next_query: AtomicU64::new(0),
        })
    }

    /// Spawns the workers and starts a single-graph service.
    ///
    /// Fails with [`ServiceError::Input`] when the hierarchy was built
    /// for a different graph.
    #[deprecated(
        note = "use build_registry: register the graph in a GraphRegistry and route \
                requests with QueryRequest::on"
    )]
    pub fn build(
        self,
        graph: Arc<CsrGraph>,
        ch: Arc<ComponentHierarchy>,
    ) -> Result<QueryService, ServiceError> {
        let mut registry = GraphRegistry::new();
        registry
            .register("default", &graph, ch)
            .map_err(ServiceError::Input)?;
        self.build_registry(registry)
    }
}

/// One graph's serving lane: a bounded queue and a worker pool. Closed
/// independently of the others on eviction.
struct Shard {
    queue: Arc<ShedQueue<Request>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    graph_n: usize,
    distances: DistancePool,
    stats: Arc<GraphStats>,
    /// Shared with every worker: a coalescing worker checks it after
    /// gathering so members dequeued across an eviction resolve to
    /// [`ServiceError::GraphEvicted`], not a stale answer.
    evicted: Arc<AtomicBool>,
}

/// The running service. Dropping it drains outstanding queries and joins
/// every shard's workers (equivalent to
/// [`shutdown(Drain)`](QueryService::shutdown)).
pub struct QueryService {
    registry: Arc<GraphRegistry>,
    shards: Vec<Shard>,
    metrics: Arc<ServiceMetrics>,
    abort: Arc<AtomicBool>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    worker_count: usize,
    shed_policy: ShedPolicy,
    default_layout: LayoutKind,
    memory_limit: Option<usize>,
    faults: Option<Arc<FaultPlan>>,
    coalesce: CoalesceSettings,
    pin: PinPolicy,
    next_query: AtomicU64,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("graphs", &self.shards.len())
            .field("workers_per_shard", &self.worker_count)
            .field("queue_capacity", &self.queue_capacity)
            .field("default_deadline", &self.default_deadline)
            .field("layout", &self.default_layout)
            .field("shed_policy", &self.shed_policy)
            .field("memory_limit", &self.memory_limit)
            .finish_non_exhaustive()
    }
}

impl QueryService {
    /// Starts configuring a service; finish with
    /// [`build_registry`](QueryServiceBuilder::build_registry).
    pub fn builder() -> QueryServiceBuilder {
        QueryServiceBuilder::default()
    }

    /// The pin policy the worker pool was started with (after resolving
    /// the `MMT_PIN` default). Purely informational — pinning is advisory
    /// and may have been a no-op on platforms without exposed topology.
    pub fn pin_policy(&self) -> PinPolicy {
        self.pin
    }

    /// Enqueues a full SSSP query, blocking while the shard's queue is
    /// full. Takes anything convertible into a [`QueryRequest`] — a bare
    /// source routes to the first registered graph. A request with a
    /// target set is refused ([`InputError::UnexpectedTarget`]); use
    /// [`submit_p2p`](Self::submit_p2p).
    pub fn submit(&self, request: impl Into<QueryRequest>) -> Result<QueryHandle, ServiceError> {
        self.submit_full(request.into(), /*blocking=*/ true)
    }

    /// As [`submit`](Self::submit) without blocking: a full shard queue
    /// is reported as [`ServiceError::Overloaded`].
    pub fn try_submit(
        &self,
        request: impl Into<QueryRequest>,
    ) -> Result<QueryHandle, ServiceError> {
        self.submit_full(request.into(), /*blocking=*/ false)
    }

    /// Enqueues a point-to-point query (early-terminating), blocking
    /// while the shard's queue is full. The request must carry a target
    /// ([`QueryRequest::target`]); one without is refused
    /// ([`InputError::MissingTarget`]).
    pub fn submit_p2p(
        &self,
        request: impl Into<QueryRequest>,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_targeted(request.into(), /*blocking=*/ true)
    }

    /// As [`submit_p2p`](Self::submit_p2p) without blocking.
    pub fn try_submit_p2p(
        &self,
        request: impl Into<QueryRequest>,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_targeted(request.into(), /*blocking=*/ false)
    }

    /// As [`submit`](Self::submit) with a per-request deadline.
    #[deprecated(note = "use submit(QueryRequest::new(source).deadline(deadline))")]
    pub fn submit_with_deadline(
        &self,
        source: VertexId,
        deadline: Duration,
    ) -> Result<QueryHandle, ServiceError> {
        self.submit(QueryRequest::new(source).deadline(deadline))
    }

    /// As [`try_submit`](Self::try_submit) with a per-request deadline.
    #[deprecated(note = "use try_submit(QueryRequest::new(source).deadline(deadline))")]
    pub fn try_submit_with_deadline(
        &self,
        source: VertexId,
        deadline: Duration,
    ) -> Result<QueryHandle, ServiceError> {
        self.try_submit(QueryRequest::new(source).deadline(deadline))
    }

    /// Enqueues a point-to-point query, blocking while the queue is full.
    #[deprecated(note = "use submit_p2p(QueryRequest::new(source).target(target))")]
    pub fn submit_target(
        &self,
        source: VertexId,
        target: VertexId,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_p2p(QueryRequest::new(source).target(target))
    }

    /// Non-blocking point-to-point submit.
    #[deprecated(note = "use try_submit_p2p(QueryRequest::new(source).target(target))")]
    pub fn try_submit_target(
        &self,
        source: VertexId,
        target: VertexId,
    ) -> Result<TargetHandle, ServiceError> {
        self.try_submit_p2p(QueryRequest::new(source).target(target))
    }

    /// Point-to-point submit with a per-request deadline.
    #[deprecated(
        note = "use submit_p2p(QueryRequest::new(source).target(target).deadline(deadline))"
    )]
    pub fn submit_target_with_deadline(
        &self,
        source: VertexId,
        target: VertexId,
        deadline: Duration,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_p2p(QueryRequest::new(source).target(target).deadline(deadline))
    }

    /// Non-blocking point-to-point submit with a per-request deadline.
    #[deprecated(
        note = "use try_submit_p2p(QueryRequest::new(source).target(target).deadline(deadline))"
    )]
    pub fn try_submit_target_with_deadline(
        &self,
        source: VertexId,
        target: VertexId,
        deadline: Duration,
    ) -> Result<TargetHandle, ServiceError> {
        self.try_submit_p2p(QueryRequest::new(source).target(target).deadline(deadline))
    }

    /// Enqueues one full SSSP query per source as a single batch, blocking
    /// while the shard's queue is full. Takes anything convertible into a
    /// [`BatchRequest`] — a bare source slice routes to the first
    /// registered graph. The whole batch shares one cancellation token
    /// (cancelling the handle cancels every unanswered member) and one
    /// completion signal; answers come back as pooled buffers, so a
    /// steady stream of batches stops allocating result vectors once the
    /// shard's pool is warm.
    ///
    /// Any out-of-range source rejects the whole batch up front — nothing
    /// is enqueued.
    pub fn submit_batch(
        &self,
        request: impl Into<BatchRequest>,
    ) -> Result<BatchHandle, ServiceError> {
        self.submit_batch_inner(request.into())
    }

    /// As [`submit_batch`](Self::submit_batch) with a deadline applied to
    /// every member.
    #[deprecated(note = "use submit_batch(BatchRequest::new(sources).deadline(deadline))")]
    pub fn submit_batch_with_deadline(
        &self,
        sources: &[VertexId],
        deadline: Duration,
    ) -> Result<BatchHandle, ServiceError> {
        self.submit_batch(BatchRequest::new(sources.to_vec()).deadline(deadline))
    }

    /// The registry this service serves from. Lifecycle operations
    /// (layout warm/evict, resident-bytes queries) go through here.
    pub fn registry(&self) -> &Arc<GraphRegistry> {
        &self.registry
    }

    /// Closes one graph's shard and evicts the graph from the registry.
    ///
    /// Admission for the graph stops immediately; its queued requests
    /// resolve to [`ServiceError::GraphEvicted`]; its workers are joined;
    /// then the registry drops the graph's data and subtracts its
    /// resident bytes. In-flight solves hold layout `Arc`s and finish
    /// normally — eviction is refcounted, never a use-after-free. Other
    /// shards are untouched.
    ///
    /// Returns `Ok(true)` when this call performed the eviction,
    /// `Ok(false)` when the graph was already evicted.
    pub fn evict_graph(&self, id: GraphId) -> Result<bool, ServiceError> {
        let shard = self
            .shards
            .get(id.index())
            .ok_or(ServiceError::Input(InputError::UnknownGraph { graph: id }))?;
        if shard.evicted.swap(true, Ordering::AcqRel) {
            return Ok(false);
        }
        shard.queue.close();
        // Queued-but-unserved requests resolve typed; whatever a worker
        // already popped is in flight and finishes normally.
        for req in shard.queue.drain_now() {
            self.metrics.queue_depth.sub(1);
            resolve_request(req, ServiceError::GraphEvicted, &self.metrics);
        }
        let workers: Vec<_> = shard.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // Zero-worker shards (and rare races with worker exit) can leave
        // stragglers behind the join; sweep them too.
        for req in shard.queue.drain_now() {
            self.metrics.queue_depth.sub(1);
            resolve_request(req, ServiceError::GraphEvicted, &self.metrics);
        }
        self.registry.evict(id);
        Ok(true)
    }

    /// Result-distance buffers the service has ever allocated, summed
    /// over every shard's pool. Flat across a window of batches ⇒ that
    /// window served every answer from the pools.
    pub fn distance_buffers_created(&self) -> usize {
        self.shards.iter().map(|s| s.distances.created()).sum()
    }

    /// Live metrics: served/rejected counters, queue-depth and inflight
    /// gauges, latency and queue-wait histograms, per-graph sections.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Number of worker threads per shard (per registered graph).
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// The default memory layout shards solve on. Whatever it is, every
    /// submitted source and every answered distance vector uses original
    /// vertex ids.
    pub fn layout(&self) -> LayoutKind {
        self.default_layout
    }

    /// Each shard's bounded queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The deadline applied to requests that do not carry their own.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// The admission-time resident-bytes cap, if one is configured.
    pub fn memory_limit(&self) -> Option<usize> {
        self.memory_limit
    }

    /// Stops the service. Idempotent; safe to call from any thread.
    ///
    /// [`ShutdownMode::Drain`] answers everything already admitted, then
    /// joins the workers. [`ShutdownMode::Abort`] additionally flips the
    /// service-wide abort flag that every request token observes, so
    /// queued queries are discarded and in-flight solves stop at their
    /// next bucket-expansion boundary; abandoned handles resolve to
    /// [`ServiceError::ShutDown`].
    pub fn shutdown(&self, mode: ShutdownMode) {
        if mode == ShutdownMode::Abort {
            self.abort.store(true, Ordering::Release);
        }
        // Close every shard's admission first so all pools drain
        // concurrently, then join shard by shard.
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &self.shards {
            let workers: Vec<_> = shard.workers.lock().drain(..).collect();
            for w in workers {
                let _ = w.join();
            }
            // Zero-worker shards (and aborted ones racing their workers'
            // exit) may leave requests queued after the join; discard them
            // so their handles resolve to ShutDown promptly rather than
            // waiting for the queue Arc to die with the last clone.
            for req in shard.queue.drain_now() {
                self.metrics.queue_depth.sub(1);
                drop(req);
            }
        }
    }

    /// The overload policy applied at enqueue when a shard's queue is
    /// full.
    pub fn shed_policy(&self) -> ShedPolicy {
        self.shed_policy
    }

    /// The coalescing wait budget, or `None` when coalescing is disabled
    /// ([`QueryServiceBuilder::no_coalescing`]).
    pub fn coalesce_budget(&self) -> Option<Duration> {
        self.coalesce.enabled.then_some(self.coalesce.budget)
    }

    /// The most queries one coalesced batch may carry.
    pub fn coalesce_batch_cap(&self) -> usize {
        self.coalesce.cap
    }

    /// Notes a terminal admission failure and hands the error back.
    fn reject(&self, err: ServiceError) -> ServiceError {
        self.metrics.note_failure(&err);
        err
    }

    /// Routes a typed graph id to its shard, refusing unknown and
    /// evicted graphs.
    fn route(&self, id: GraphId) -> Result<&Shard, ServiceError> {
        let Some(shard) = self.shards.get(id.index()) else {
            return Err(self.reject(ServiceError::Input(InputError::UnknownGraph { graph: id })));
        };
        if shard.evicted.load(Ordering::Acquire) {
            return Err(self.reject(ServiceError::GraphEvicted));
        }
        Ok(shard)
    }

    /// The memory-pressure admission check: refuses work while the
    /// registry's resident bytes exceed the configured limit.
    fn check_memory(&self) -> Result<(), ServiceError> {
        if let Some(limit) = self.memory_limit {
            let resident = self.registry.resident_bytes();
            if resident > limit {
                return Err(self.reject(ServiceError::MemoryPressure { resident, limit }));
            }
        }
        Ok(())
    }

    /// Resolves a per-request layout override through the registry's
    /// cache. Requests for the service default ride the shard's resident
    /// layout for free.
    fn resolve_layout(
        &self,
        graph: GraphId,
        kind: Option<LayoutKind>,
    ) -> Result<Option<Arc<GraphLayout>>, ServiceError> {
        match kind {
            None => Ok(None),
            Some(k) if k == self.default_layout => Ok(None),
            Some(k) => match self.registry.layout(graph, k) {
                Ok(layout) => Ok(Some(layout)),
                Err(e) => Err(self.reject(e)),
            },
        }
    }

    fn next_query_id(&self) -> QueryId {
        QueryId::new(self.next_query.fetch_add(1, Ordering::Relaxed))
    }

    fn submit_full(
        &self,
        request: QueryRequest,
        blocking: bool,
    ) -> Result<QueryHandle, ServiceError> {
        let shard = self.route(request.graph)?;
        if let Some(target) = request.target {
            return Err(self.reject(ServiceError::Input(InputError::UnexpectedTarget { target })));
        }
        self.check_vertex(shard, request.source, /*is_source=*/ true)?;
        self.check_memory()?;
        let layout = self.resolve_layout(request.graph, request.layout)?;
        let token = self.make_token(request.deadline);
        let id = self.next_query_id();
        let (reply_tx, reply_rx) = bounded(1);
        self.enqueue(
            shard,
            Request {
                kind: RequestKind::Full {
                    source: request.source,
                    reply: reply_tx,
                },
                token: token.clone(),
                enqueued: Instant::now(),
                layout,
                id,
            },
            blocking,
        )?;
        Ok(QueryHandle {
            reply: Some(reply_rx),
            token,
            id,
            faults: self.faults.clone(),
        })
    }

    fn submit_targeted(
        &self,
        request: QueryRequest,
        blocking: bool,
    ) -> Result<TargetHandle, ServiceError> {
        let shard = self.route(request.graph)?;
        let Some(target) = request.target else {
            return Err(self.reject(ServiceError::Input(InputError::MissingTarget)));
        };
        self.check_vertex(shard, request.source, /*is_source=*/ true)?;
        self.check_vertex(shard, target, /*is_source=*/ false)?;
        self.check_memory()?;
        let layout = self.resolve_layout(request.graph, request.layout)?;
        let token = self.make_token(request.deadline);
        let id = self.next_query_id();
        let (reply_tx, reply_rx) = bounded(1);
        self.enqueue(
            shard,
            Request {
                kind: RequestKind::Target {
                    source: request.source,
                    target,
                    algo: request.algo,
                    reply: reply_tx,
                },
                token: token.clone(),
                enqueued: Instant::now(),
                layout,
                id,
            },
            blocking,
        )?;
        Ok(TargetHandle {
            reply: Some(reply_rx),
            token,
            id,
            faults: self.faults.clone(),
        })
    }

    fn submit_batch_inner(&self, request: BatchRequest) -> Result<BatchHandle, ServiceError> {
        let shard = self.route(request.graph)?;
        for &s in &request.sources {
            self.check_vertex(shard, s, /*is_source=*/ true)?;
        }
        self.check_memory()?;
        let layout = self.resolve_layout(request.graph, request.layout)?;
        let token = self.make_token(request.deadline);
        let (done_tx, done_rx) = bounded(1);
        let collector = Arc::new(BatchCollector {
            slots: Mutex::new((0..request.sources.len()).map(|_| None).collect()),
            remaining: AtomicUsize::new(request.sources.len()),
            done: done_tx,
            metrics: Arc::clone(&self.metrics),
            stats: Arc::clone(&shard.stats),
        });
        if request.sources.is_empty() {
            let _ = collector.done.send(());
        }
        // Member metrics are recorded exclusively by the collector, so an
        // enqueue failure just drops the member guard — the slot resolves
        // to ShutDown and is counted exactly once.
        let id = self.next_query_id();
        for (slot, &source) in request.sources.iter().enumerate() {
            let member = BatchMember::new(Arc::clone(&collector), slot);
            let queued = Request {
                kind: RequestKind::Batch { source, member },
                token: token.clone(),
                enqueued: Instant::now(),
                layout: layout.clone(),
                id,
            };
            let expired = |r: &Request| r.token.is_cancelled();
            let evictable: Option<&dyn Fn(&Request) -> bool> = match self.shed_policy {
                ShedPolicy::RejectNewest => None,
                ShedPolicy::RejectOldestExpired => Some(&expired),
            };
            match shard.queue.push(queued, /*block=*/ true, evictable) {
                Ok(shed) => {
                    self.metrics.queue_depth.bump();
                    self.resolve_shed(shard, shed);
                }
                // A blocking push only fails once the queue has closed;
                // dropping the request fires the member's ShutDown guard.
                Err(PushRejected::Closed(queued)) | Err(PushRejected::Full(queued)) => drop(queued),
            }
        }
        Ok(BatchHandle {
            done: Some(done_rx),
            collector,
            token,
            id,
            faults: self.faults.clone(),
        })
    }

    fn check_vertex(
        &self,
        shard: &Shard,
        v: VertexId,
        is_source: bool,
    ) -> Result<(), ServiceError> {
        if (v as usize) < shard.graph_n {
            return Ok(());
        }
        let err = ServiceError::Input(if is_source {
            InputError::SourceOutOfRange {
                source: v,
                n: shard.graph_n,
            }
        } else {
            InputError::TargetOutOfRange {
                target: v,
                n: shard.graph_n,
            }
        });
        Err(self.reject(err))
    }

    fn make_token(&self, deadline: Option<Duration>) -> CancelToken {
        let token = match deadline.or(self.default_deadline) {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        token.linked_to(Arc::clone(&self.abort))
    }

    fn enqueue(&self, shard: &Shard, request: Request, blocking: bool) -> Result<(), ServiceError> {
        let expired = |r: &Request| r.token.is_cancelled();
        let evictable: Option<&dyn Fn(&Request) -> bool> = match self.shed_policy {
            ShedPolicy::RejectNewest => None,
            ShedPolicy::RejectOldestExpired => Some(&expired),
        };
        match shard.queue.push(request, blocking, evictable) {
            Ok(shed) => {
                self.metrics.queue_depth.bump();
                self.resolve_shed(shard, shed);
                Ok(())
            }
            Err(PushRejected::Full(_)) => Err(self.reject(ServiceError::Overloaded {
                capacity: self.queue_capacity,
            })),
            Err(PushRejected::Closed(_)) => Err(self.reject(ServiceError::ShutDown)),
        }
    }

    /// Resolves requests evicted by the shedding policy: each fails loudly
    /// with [`ServiceError::Shed`] — never its (already-expired) token
    /// error, so the shed counter alone accounts for every eviction.
    fn resolve_shed(&self, shard: &Shard, shed: Vec<Request>) {
        for victim in shed {
            self.metrics.queue_depth.sub(1);
            shard.stats.shed.bump();
            resolve_request(victim, ServiceError::Shed, &self.metrics);
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown(ShutdownMode::Drain);
    }
}

fn token_failure(token: &CancelToken) -> Option<ServiceError> {
    if token.linked_flag_set() {
        Some(ServiceError::ShutDown)
    } else if token.explicitly_cancelled() {
        Some(ServiceError::Cancelled)
    } else if token.deadline_expired() {
        Some(ServiceError::DeadlineExceeded)
    } else {
        None
    }
}

/// Everything one worker needs; cloned per worker at build time and reused
/// across respawns, so a restarted worker rejoins the same shard's queue,
/// metrics, and buffer pool.
struct WorkerShared {
    layout: Arc<GraphLayout>,
    queue: Arc<ShedQueue<Request>>,
    metrics: Arc<ServiceMetrics>,
    stats: Arc<GraphStats>,
    distances: DistancePool,
    faults: Option<Arc<FaultPlan>>,
    /// The shard's eviction flag (see [`Shard::evicted`]).
    evicted: Arc<AtomicBool>,
    coalesce: CoalesceSettings,
    trace: Option<Arc<TraceShared>>,
}

/// The service-wide trace state: one sink, one epoch all timestamps are
/// relative to, and the coalesced-batch id allocator.
struct TraceShared {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    next_batch: AtomicU64,
}

impl TraceShared {
    fn us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }
}

/// The label a trace event reports for a typed rejection.
fn error_label(err: &ServiceError) -> &'static str {
    match err {
        ServiceError::Overloaded { .. } => "overloaded",
        ServiceError::DeadlineExceeded => "deadline",
        ServiceError::ShutDown => "shutdown",
        ServiceError::Cancelled => "cancelled",
        ServiceError::WorkerLost => "worker-lost",
        ServiceError::Shed => "shed",
        ServiceError::GraphEvicted => "evicted",
        ServiceError::MemoryPressure { .. } => "memory",
        ServiceError::Input(_) => "input",
    }
}

/// Two queued requests may share a coalesced batch only when they solve
/// on the same layout: both on the shard default, or both overriding to
/// the *same* registry-cached layout.
fn layouts_match(a: &Option<Arc<GraphLayout>>, b: &Option<Arc<GraphLayout>>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
        _ => false,
    }
}

/// How one `worker_loop` incarnation ended.
enum WorkerExit {
    /// The queue closed and drained; the shard is shutting down.
    Drained,
    /// A panic was caught mid-request; the in-flight request has already
    /// been resolved to [`ServiceError::WorkerLost`].
    Poisoned,
}

/// The worker supervisor: runs [`worker_loop`] incarnations until the
/// queue drains, respawning (in-thread, with a fresh solver and instance —
/// per-query state a panic may have corrupted) after every caught panic.
/// The pool therefore returns to full strength without growing new OS
/// threads, and a panic storm cannot deadlock the bounded queue.
fn worker_thread(shared: &WorkerShared) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(WorkerExit::Drained) => break,
            Ok(WorkerExit::Poisoned) | Err(_) => shared.metrics.workers_restarted.bump(),
        }
    }
}

/// Resolves `req` with `err`: counts it (batch members count through their
/// collector) and delivers the typed error to the waiting handle.
fn resolve_request(req: Request, err: ServiceError, metrics: &ServiceMetrics) {
    match req.kind {
        RequestKind::Full { reply, .. } => {
            metrics.note_failure(&err);
            drop(reply.send(Err(err)));
        }
        RequestKind::Target { reply, .. } => {
            metrics.note_failure(&err);
            drop(reply.send(Err(err)));
        }
        RequestKind::Batch { member, .. } => member.fulfil(Err(err)),
    }
}

/// One `Option` branch when no plan is installed — the production cost of
/// the whole injection apparatus.
#[inline]
fn fire_fault(plan: &Option<Arc<FaultPlan>>, site: FaultSite) -> FaultEffect {
    match plan {
        Some(plan) => plan.fire(site),
        None => FaultEffect::None,
    }
}

fn worker_loop(shared: &WorkerShared) -> WorkerExit {
    let layout: &GraphLayout = &shared.layout;
    let metrics: &ServiceMetrics = &shared.metrics;
    let ch: &ComponentHierarchy = layout.hierarchy();
    // Per-query work counters exist only while a trace sink is installed;
    // every other configuration never allocates or reads them.
    let counters = shared.trace.as_ref().map(|_| EventCounters::new());
    // Workers solve serially: the service's parallelism is across queries
    // and across shards. All solving happens in the layout's internal id
    // space; ids are translated at this loop's edges only.
    let mut solver = ThorupSolver::new(layout.graph(), ch).with_config(ThorupConfig::serial());
    if let Some(c) = counters.as_ref() {
        solver = solver.with_counters(c);
    }
    // The coalescing scheduler amortises gathered members through pooled
    // batch instances; one BatchSolver per worker incarnation keeps those
    // pools warm across batches.
    let batcher = BatchSolver::new(&solver);
    let inst = ThorupInstance::new(ch);
    // Holds internal-order distances long enough to scatter them out; only
    // non-natural layouts touch it.
    let mut internal_buf: Vec<Dist> = Vec::new();
    // Lazily-built per-worker state for the non-default P2P solvers; a
    // worker that never sees a Bidirectional/DeltaEarly request pays
    // nothing for them.
    let mut p2p = P2pState::default();
    while let Some(req) = shared.queue.pop() {
        let dequeued = Instant::now();
        metrics.queue_depth.sub(1);
        metrics
            .queue_wait_us
            .record(dequeued.saturating_duration_since(req.enqueued).as_micros() as u64);
        // The dequeue fault site fires while we hold the request, so a
        // panic here is indistinguishable from one in the bookkeeping
        // between dequeue and solve: the request resolves to WorkerLost.
        // A DropReply scheduled here is ignored — the drop semantic is
        // defined at the Reply and ClientWait sites only.
        if catch_unwind(AssertUnwindSafe(|| {
            let _ = fire_fault(&shared.faults, FaultSite::Dequeue);
        }))
        .is_err()
        {
            resolve_request(req, ServiceError::WorkerLost, metrics);
            return WorkerExit::Poisoned;
        }
        // Deadline/cancellation/shutdown enforcement at dequeue: expired
        // work is discarded without touching the solver. Batch-member
        // metrics are the collector's job — the others are recorded here.
        if let Some(err) = token_failure(&req.token) {
            resolve_request(req, err, metrics);
            continue;
        }
        // The coalescing scheduler: a dequeued full-SSSP query opens a
        // batch that gathers matching queued queries (same graph, same
        // layout) under a deadline-clamped window, then solves them in
        // one BatchSolver run.
        if shared.coalesce.enabled && matches!(req.kind, RequestKind::Full { .. }) {
            let exit = match req.layout.clone() {
                Some(over) => {
                    let ov_ch = over.hierarchy();
                    let mut ov_solver =
                        ThorupSolver::new(over.graph(), ov_ch).with_config(ThorupConfig::serial());
                    if let Some(c) = counters.as_ref() {
                        ov_solver = ov_solver.with_counters(c);
                    }
                    let ov_batcher = BatchSolver::new(&ov_solver);
                    serve_coalesced(req, dequeued, &over, &ov_batcher, counters.as_ref(), shared)
                }
                None => serve_coalesced(req, dequeued, layout, &batcher, counters.as_ref(), shared),
            };
            match exit {
                Some(exit) => return exit,
                None => continue,
            }
        }
        metrics.inflight.bump();
        // A per-request layout override solves on a registry-cached layout
        // instead of the shard's resident one. The override pays a
        // solver+instance construction per request — it is an escape
        // hatch for A/B'ing layouts in place, not the fast path.
        let exit = match req.layout.clone() {
            Some(over) => {
                let ov_ch = over.hierarchy();
                let mut ov_solver =
                    ThorupSolver::new(over.graph(), ov_ch).with_config(ThorupConfig::serial());
                if let Some(c) = counters.as_ref() {
                    ov_solver = ov_solver.with_counters(c);
                }
                let ov_inst = ThorupInstance::new(ov_ch);
                // Override layouts get fresh P2P state too: their internal
                // id space (and thus graph) differs from the resident one.
                let mut ov_p2p = P2pState::default();
                serve_one(
                    req,
                    dequeued,
                    &over,
                    &ov_solver,
                    &ov_inst,
                    &mut internal_buf,
                    &mut ov_p2p,
                    shared,
                    counters.as_ref(),
                )
            }
            None => serve_one(
                req,
                dequeued,
                layout,
                &solver,
                &inst,
                &mut internal_buf,
                &mut p2p,
                shared,
                counters.as_ref(),
            ),
        };
        if let Some(exit) = exit {
            return exit;
        }
    }
    WorkerExit::Drained
}

/// One gathered member of a forming coalesced batch, with its reply
/// capability held OUTSIDE every `catch_unwind` so each slot resolves
/// exactly once no matter where a panic lands.
struct CoalesceMember {
    source: VertexId,
    reply: Sender<Result<Vec<Dist>, ServiceError>>,
    token: CancelToken,
    enqueued: Instant,
    dequeued: Instant,
    /// When the coalescing worker gathered this member; `None` for the
    /// batch's opener (which was dequeued normally).
    gathered: Option<Instant>,
    id: QueryId,
}

impl CoalesceMember {
    /// Destructures a queued full-SSSP request; the caller guarantees the
    /// request kind (the gather predicate admits nothing else).
    fn from_request(req: Request, dequeued: Instant, gathered: Option<Instant>) -> Self {
        let Request {
            kind,
            token,
            enqueued,
            id,
            ..
        } = req;
        let RequestKind::Full { source, reply } = kind else {
            unreachable!("coalesce gather admits only full requests");
        };
        Self {
            source,
            reply,
            token,
            enqueued,
            dequeued,
            gathered,
            id,
        }
    }

    /// Resolves this member with a typed rejection (counted) and traces
    /// it as never having reached the solve stage.
    fn reject(self, err: ServiceError, shared: &WorkerShared) {
        shared.metrics.note_failure(&err);
        // Trace before sending so the record exists by the time the
        // client's `wait` returns.
        emit_trace(
            shared,
            self.id,
            "full",
            self.source,
            self.enqueued,
            self.dequeued,
            self.gathered,
            None,
            (0, 0),
            None,
            1,
            error_label(&err),
        );
        let _ = self.reply.send(Err(err));
    }
}

/// Batch-total (relaxations, arcs_scanned) charged since `before`.
fn work_delta(before: Option<CountersSnapshot>, counters: Option<&EventCounters>) -> (u64, u64) {
    match (before, counters) {
        (Some(b), Some(c)) => {
            let after = c.snapshot();
            (
                after.relaxations.saturating_sub(b.relaxations),
                after.arcs_scanned.saturating_sub(b.arcs_scanned),
            )
        }
        _ => (0, 0),
    }
}

/// Records one resolved query's lifecycle with the installed trace sink;
/// free (one `Option` branch) when tracing is off.
#[allow(clippy::too_many_arguments)]
fn emit_trace(
    shared: &WorkerShared,
    id: QueryId,
    kind: &str,
    source: VertexId,
    enqueued: Instant,
    dequeued: Instant,
    gathered: Option<Instant>,
    solve_started: Option<Instant>,
    work: (u64, u64),
    batch: Option<u64>,
    batch_size: u32,
    outcome: &str,
) {
    let Some(tr) = shared.trace.as_deref() else {
        return;
    };
    let event = TraceEvent {
        query: id.to_string(),
        graph: shared.stats.name.clone(),
        kind: kind.to_string(),
        source,
        enqueue_us: tr.us(enqueued),
        dequeue_us: tr.us(dequeued),
        coalesce_us: gathered.map(|g| tr.us(g)),
        solve_us: solve_started.map(|s| tr.us(s)),
        reply_us: tr.us(Instant::now()),
        batch,
        batch_size,
        relaxations: work.0,
        arcs_scanned: work.1,
        outcome: outcome.to_string(),
    };
    tr.sink.record(&event);
}

/// The coalescing scheduler's serve path: `opener` (a dequeued, still-live
/// full-SSSP request) opens a batch; matching queued requests are gathered
/// up to the batch cap under a time window that never extends past the
/// earliest member deadline; the whole batch solves in one
/// [`BatchSolver`] run and every member's reply slot resolves exactly
/// once.
///
/// Fault-site semantics on this path: `Coalesce` fires once per formation
/// (after the opener is held, before gathering), `Solve` fires once per
/// batch, and `Reply` fires once per member in gather order. A panic at
/// `Coalesce` or `Solve` loses exactly the members held at that point
/// (each a typed [`ServiceError::WorkerLost`]); a panic at a member's
/// `Reply` loses that member and the not-yet-replied remainder, never an
/// already-delivered answer.
fn serve_coalesced(
    opener: Request,
    dequeued: Instant,
    layout: &GraphLayout,
    batcher: &BatchSolver<'_>,
    counters: Option<&EventCounters>,
    shared: &WorkerShared,
) -> Option<WorkerExit> {
    let metrics: &ServiceMetrics = &shared.metrics;
    let opener_layout = opener.layout.clone();
    let mut members = vec![CoalesceMember::from_request(opener, dequeued, None)];
    // The formation fault site: a stall here holds the worker mid-coalesce
    // (the eviction and deadline chaos tests lean on that determinism); a
    // panic loses exactly the opener. DropReply is ignored here, as at
    // Dequeue.
    if catch_unwind(AssertUnwindSafe(|| {
        let _ = fire_fault(&shared.faults, FaultSite::Coalesce);
    }))
    .is_err()
    {
        for m in members {
            metrics.note_failure(&ServiceError::WorkerLost);
            let _ = m.reply.send(Err(ServiceError::WorkerLost));
        }
        return Some(WorkerExit::Poisoned);
    }
    // Gather under the window. With a zero budget the window is already
    // closed and only requests *already queued* are taken — coalescing
    // then costs no latency and batches form exactly under backlog. The
    // window is clamped to every member's deadline as it joins, so the
    // scheduler never waits past the earliest deadline in the batch.
    let mut window_end = Instant::now() + shared.coalesce.budget;
    if let Some(d) = members[0].token.deadline() {
        window_end = window_end.min(d);
    }
    let pred = |r: &Request| {
        matches!(r.kind, RequestKind::Full { .. }) && layouts_match(&opener_layout, &r.layout)
    };
    while members.len() < shared.coalesce.cap {
        match shared.queue.pop_match_until(&pred, window_end) {
            CoalescePop::Item(req) => {
                let now = Instant::now();
                metrics.queue_depth.sub(1);
                metrics
                    .queue_wait_us
                    .record(now.saturating_duration_since(req.enqueued).as_micros() as u64);
                if let Some(d) = req.token.deadline() {
                    window_end = window_end.min(d);
                }
                members.push(CoalesceMember::from_request(req, now, Some(now)));
            }
            CoalescePop::Mismatch | CoalescePop::TimedOut | CoalescePop::Closed => break,
        }
    }
    // Members dequeued across an eviction must not be answered from a
    // graph the registry already dropped; the shard queue is closed by
    // then, so everything this worker holds resolves typed.
    if shared.evicted.load(Ordering::Acquire) {
        for m in members {
            m.reject(ServiceError::GraphEvicted, shared);
        }
        return None;
    }
    // A member whose deadline expired (or that was cancelled, or whose
    // service is aborting) while the batch formed is shed loudly — typed,
    // counted, never solved late.
    let mut live = Vec::with_capacity(members.len());
    for m in members {
        match token_failure(&m.token) {
            Some(err) => m.reject(err, shared),
            None => live.push(m),
        }
    }
    let members = live;
    if members.is_empty() {
        return None;
    }
    if members.len() >= 2 {
        metrics.coalesced_batches.bump();
        metrics.coalesced_queries.add(members.len() as u64);
    }
    let batch_size = members.len() as u32;
    let batch_id = match (&shared.trace, members.len() >= 2) {
        (Some(tr), true) => Some(tr.next_batch.fetch_add(1, Ordering::Relaxed)),
        _ => None,
    };
    metrics.inflight.add(members.len() as u64);
    let sources: Vec<VertexId> = members
        .iter()
        .map(|m| layout.to_internal(m.source))
        .collect();
    let tokens: Vec<CancelToken> = members.iter().map(|m| m.token.clone()).collect();
    let solve_started = shared.trace.as_ref().map(|_| Instant::now());
    let before = counters.map(EventCounters::snapshot);
    // One Solve fault firing and one catch_unwind for the whole batch: a
    // panic mid-batch-solve loses exactly these members, each typed.
    let solved = catch_unwind(AssertUnwindSafe(|| {
        let _ = fire_fault(&shared.faults, FaultSite::Solve);
        batcher.solve_batch_with_cancel(&sources, &tokens)
    }));
    let Ok(results) = solved else {
        metrics.inflight.sub(members.len() as u64);
        for m in members {
            metrics.note_failure(&ServiceError::WorkerLost);
            let _ = m.reply.send(Err(ServiceError::WorkerLost));
        }
        return Some(WorkerExit::Poisoned);
    };
    let work = work_delta(before, counters);
    // Deliver in gather order. The Reply fault fires once per member;
    // metrics for each member are settled before its reply is sent, and a
    // poisoned worker still resolves every remaining slot before dying.
    let mut pairs: Vec<(CoalesceMember, Option<PooledDistances>)> =
        members.into_iter().zip(results).collect();
    pairs.reverse();
    let mut exit = None;
    while let Some((m, res)) = pairs.pop() {
        if exit.is_some() {
            metrics.note_failure(&ServiceError::WorkerLost);
            metrics.inflight.sub(1);
            let _ = m.reply.send(Err(ServiceError::WorkerLost));
            continue;
        }
        let fired = catch_unwind(AssertUnwindSafe(|| {
            fire_fault(&shared.faults, FaultSite::Reply)
        }));
        let Ok(effect) = fired else {
            metrics.note_failure(&ServiceError::WorkerLost);
            metrics.inflight.sub(1);
            let _ = m.reply.send(Err(ServiceError::WorkerLost));
            exit = Some(WorkerExit::Poisoned);
            continue;
        };
        if effect.drops_reply() {
            metrics.requests_lost.bump();
            metrics.inflight.sub(1);
            drop(m.reply);
            continue;
        }
        let result = match res {
            Some(pooled) => {
                if layout.permutation().is_some() {
                    let mut out = Vec::with_capacity(pooled.len());
                    layout.scatter_into(&pooled, &mut out);
                    Ok(out)
                } else {
                    // Detaching hands the buffer to the client outright —
                    // the same one-allocation-per-answer cost as the
                    // non-coalesced path.
                    Ok(pooled.detach())
                }
            }
            None => Err(token_failure(&m.token).unwrap_or(ServiceError::Cancelled)),
        };
        match &result {
            Ok(_) => {
                metrics.served_full.bump();
                shared.stats.served.bump();
                metrics
                    .latency_us
                    .record(m.enqueued.elapsed().as_micros() as u64);
            }
            Err(e) => metrics.note_failure(e),
        }
        metrics.inflight.sub(1);
        let outcome = match &result {
            Ok(_) => "ok",
            Err(e) => error_label(e),
        };
        // Trace before sending so the record exists by the time the
        // client's `wait` returns.
        emit_trace(
            shared,
            m.id,
            "full",
            m.source,
            m.enqueued,
            m.dequeued,
            m.gathered,
            solve_started,
            work,
            batch_id,
            batch_size,
            outcome,
        );
        let _ = m.reply.send(result);
    }
    exit
}

/// Solves one dequeued request on `layout` and delivers its answer.
///
/// Metrics (including the inflight decrement, which `worker_loop` has
/// already bumped) are settled BEFORE the reply is sent, so a client that
/// has seen its answer also sees a snapshot that accounts for it.
///
/// Each solve runs under `catch_unwind` with the reply capability held
/// OUTSIDE the closure: a panicking solve (injected or real) cannot take
/// the reply channel down with it, so the client sees a typed
/// `WorkerLost`, never a silent disconnect. A `DropReply` effect fired at
/// the reply site does the opposite on purpose: the reply capability is
/// discarded, the client observes a disconnect (surfaced as
/// [`ServiceError::ShutDown`] by the handle), and the service counts the
/// request under `requests_lost`.
///
/// Returns `Some(exit)` when the worker must die (poisoned), `None` to
/// keep serving.
/// Per-worker solver state for the non-default [`P2pAlgo`] variants, built
/// lazily on first use and reused across requests (the scratches reset in
/// `O(search)`; the pre-split CSR is immutable). One per worker incarnation
/// for the resident layout; override-layout requests build a fresh one.
#[derive(Default)]
struct P2pState {
    bidi: Option<BidiScratch>,
    delta: Option<(SplitCsr, DeltaScratch)>,
}

impl P2pState {
    fn bidi(&mut self) -> &mut BidiScratch {
        self.bidi.get_or_insert_with(BidiScratch::new)
    }

    /// The cached pre-split view (adaptive Δ) plus scratch for early-exit
    /// Δ-stepping over `layout`'s internal-order graph.
    fn delta(&mut self, layout: &GraphLayout) -> (&SplitCsr, &mut DeltaScratch) {
        let (split, scratch) = self.delta.get_or_insert_with(|| {
            let g: &CsrGraph = layout.graph();
            let delta = adaptive_delta(g).min(u32::MAX as u64) as u32;
            let split = SplitCsr::new(g, delta.max(1));
            let scratch = DeltaScratch::new(&split);
            (split, scratch)
        });
        (&*split, scratch)
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_one(
    req: Request,
    dequeued: Instant,
    layout: &GraphLayout,
    solver: &ThorupSolver<'_>,
    inst: &ThorupInstance,
    internal_buf: &mut Vec<Dist>,
    p2p: &mut P2pState,
    shared: &WorkerShared,
    counters: Option<&EventCounters>,
) -> Option<WorkerExit> {
    let metrics: &ServiceMetrics = &shared.metrics;
    let ch = layout.hierarchy();
    let Request {
        kind,
        token,
        enqueued,
        id,
        ..
    } = req;
    let solve_started = shared.trace.as_ref().map(|_| Instant::now());
    let before = counters.map(EventCounters::snapshot);
    match kind {
        RequestKind::Full { source, reply } => {
            let solve = catch_unwind(AssertUnwindSafe(|| {
                let _ = fire_fault(&shared.faults, FaultSite::Solve);
                inst.reset(ch);
                let internal_source = layout.to_internal(source);
                let result = if solver.solve_into_with_cancel(inst, internal_source, &token) {
                    if layout.permutation().is_some() {
                        inst.copy_distances_into(internal_buf);
                        let mut out = Vec::with_capacity(internal_buf.len());
                        layout.scatter_into(internal_buf, &mut out);
                        Ok(out)
                    } else {
                        Ok(inst.distances())
                    }
                } else {
                    Err(token_failure(&token).unwrap_or(ServiceError::Cancelled))
                };
                let effect = fire_fault(&shared.faults, FaultSite::Reply);
                (result, effect)
            }));
            let Ok((result, effect)) = solve else {
                metrics.note_failure(&ServiceError::WorkerLost);
                metrics.inflight.sub(1);
                drop(reply.send(Err(ServiceError::WorkerLost)));
                return Some(WorkerExit::Poisoned);
            };
            if effect.drops_reply() {
                metrics.requests_lost.bump();
                metrics.inflight.sub(1);
                drop(reply);
                return None;
            }
            match &result {
                Ok(_) => {
                    metrics.served_full.bump();
                    shared.stats.served.bump();
                    metrics
                        .latency_us
                        .record(enqueued.elapsed().as_micros() as u64);
                }
                Err(e) => metrics.note_failure(e),
            }
            metrics.inflight.sub(1);
            let outcome = match &result {
                Ok(_) => "ok",
                Err(e) => error_label(e),
            };
            // Trace before sending so the record exists by the time the
            // client's `wait` returns.
            emit_trace(
                shared,
                id,
                "full",
                source,
                enqueued,
                dequeued,
                None,
                solve_started,
                work_delta(before, counters),
                None,
                1,
                outcome,
            );
            let _ = reply.send(result);
        }
        RequestKind::Target {
            source,
            target,
            algo,
            reply,
        } => {
            let solve = catch_unwind(AssertUnwindSafe(|| {
                let _ = fire_fault(&shared.faults, FaultSite::Solve);
                let s = layout.to_internal(source);
                let t = layout.to_internal(target);
                // All three P2P solvers run in the layout's internal id
                // space and return None iff the token fired mid-solve.
                let answer = match algo {
                    P2pAlgo::Thorup => {
                        inst.reset(ch);
                        solver.solve_target_with_cancel(inst, s, t, &token)
                    }
                    P2pAlgo::Bidirectional => {
                        bidirectional_st(layout.graph(), s, t, p2p.bidi(), Some(&token)).map(
                            |(d, stats)| {
                                if let Some(c) = counters {
                                    c.arcs_scanned.add(stats.arcs_scanned);
                                    c.relaxations.add(stats.arcs_scanned);
                                    c.settled.add(stats.settled);
                                }
                                d
                            },
                        )
                    }
                    P2pAlgo::DeltaEarly => {
                        let (split, scratch) = p2p.delta(layout);
                        delta_stepping_st(split, s, t, scratch, counters, Some(&token))
                    }
                };
                // A distance is layout-invariant: only ids move.
                let result = match answer {
                    Some(d) => Ok(d),
                    None => Err(token_failure(&token).unwrap_or(ServiceError::Cancelled)),
                };
                let effect = fire_fault(&shared.faults, FaultSite::Reply);
                (result, effect)
            }));
            let Ok((result, effect)) = solve else {
                metrics.note_failure(&ServiceError::WorkerLost);
                metrics.inflight.sub(1);
                drop(reply.send(Err(ServiceError::WorkerLost)));
                return Some(WorkerExit::Poisoned);
            };
            if effect.drops_reply() {
                metrics.requests_lost.bump();
                metrics.inflight.sub(1);
                drop(reply);
                return None;
            }
            match &result {
                Ok(_) => {
                    metrics.served_target.bump();
                    shared.stats.served.bump();
                    metrics
                        .latency_us
                        .record(enqueued.elapsed().as_micros() as u64);
                }
                Err(e) => metrics.note_failure(e),
            }
            metrics.inflight.sub(1);
            let outcome = match &result {
                Ok(_) => "ok",
                Err(e) => error_label(e),
            };
            emit_trace(
                shared,
                id,
                "target",
                source,
                enqueued,
                dequeued,
                None,
                solve_started,
                work_delta(before, counters),
                None,
                1,
                outcome,
            );
            let _ = reply.send(result);
        }
        RequestKind::Batch { source, member } => {
            let solve = catch_unwind(AssertUnwindSafe(|| {
                let _ = fire_fault(&shared.faults, FaultSite::Solve);
                inst.reset(ch);
                let internal_source = layout.to_internal(source);
                let result = if solver.solve_into_with_cancel(inst, internal_source, &token) {
                    let mut buf = shared.distances.acquire();
                    if layout.permutation().is_some() {
                        inst.copy_distances_into(internal_buf);
                        layout.scatter_into(internal_buf, &mut buf);
                    } else {
                        inst.copy_distances_into(&mut buf);
                    }
                    Ok(shared.distances.wrap(buf))
                } else {
                    Err(token_failure(&token).unwrap_or(ServiceError::Cancelled))
                };
                let effect = fire_fault(&shared.faults, FaultSite::Reply);
                (result, effect)
            }));
            let Ok((result, effect)) = solve else {
                metrics.inflight.sub(1);
                member.fulfil(Err(ServiceError::WorkerLost));
                return Some(WorkerExit::Poisoned);
            };
            if effect.drops_reply() {
                // A batch member cannot disconnect individually — its slot
                // must resolve for the batch to complete — so a dropped
                // batch reply surfaces as a typed WorkerLost, counted
                // under requests_lost by the collector.
                metrics.inflight.sub(1);
                member.fulfil(Err(ServiceError::WorkerLost));
                return None;
            }
            if result.is_ok() {
                metrics
                    .latency_us
                    .record(enqueued.elapsed().as_micros() as u64);
            }
            metrics.inflight.sub(1);
            let outcome = match &result {
                Ok(_) => "ok",
                Err(e) => error_label(e),
            };
            emit_trace(
                shared,
                id,
                "batch",
                source,
                enqueued,
                dequeued,
                None,
                solve_started,
                work_delta(before, counters),
                None,
                1,
                outcome,
            );
            member.fulfil(result);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InputError;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn fixture(log_n: u32) -> (Arc<CsrGraph>, Arc<ComponentHierarchy>) {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, 6);
        spec.seed = 5;
        let el = spec.generate();
        (
            Arc::new(CsrGraph::from_edge_list(&el)),
            Arc::new(build_serial(&el, ChMode::Collapsed)),
        )
    }

    fn single_registry(g: &CsrGraph, ch: Arc<ComponentHierarchy>) -> GraphRegistry {
        let mut registry = GraphRegistry::new();
        registry.register("default", g, ch).unwrap();
        registry
    }

    fn service(log_n: u32, workers: usize) -> (Arc<CsrGraph>, QueryService) {
        let (g, ch) = fixture(log_n);
        let svc = QueryService::builder()
            .workers(workers)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        (g, svc)
    }

    #[test]
    fn serves_correct_answers() {
        let (g, service) = service(8, 3);
        assert_eq!(service.workers(), 3);
        let handles: Vec<_> = (0..20u32)
            .map(|s| (s, service.submit(s % 64).unwrap()))
            .collect();
        for (i, (s, h)) in handles.into_iter().enumerate() {
            let got = h.wait().unwrap();
            assert_eq!(got, mmt_baselines::dijkstra(&g, s % 64), "request {i}");
        }
        assert_eq!(service.metrics().served_full(), 20);
        let snap = service.metrics().snapshot();
        assert_eq!(snap.served_total(), 20);
        assert_eq!(snap.rejected_total(), 0);
        assert_eq!(snap.latency_us.total(), 20);
        assert_eq!(snap.queue_wait_us.total(), 20);
    }

    #[test]
    fn targeted_queries_served() {
        let (g, service) = service(8, 2);
        let oracle = mmt_baselines::dijkstra(&g, 7);
        let handles: Vec<_> = (0..10u32)
            .map(|t| {
                let h = service
                    .submit_p2p(QueryRequest::new(7).target(t * 13))
                    .unwrap();
                (t * 13, h)
            })
            .collect();
        for (t, h) in handles {
            assert_eq!(h.wait().unwrap(), oracle[t as usize]);
        }
        assert_eq!(service.metrics().served_target(), 10);
    }

    #[test]
    fn every_p2p_algo_serves_the_same_answer() {
        let (g, service) = service(8, 2);
        let oracle = mmt_baselines::dijkstra(&g, 7);
        for algo in [P2pAlgo::Thorup, P2pAlgo::Bidirectional, P2pAlgo::DeltaEarly] {
            let handles: Vec<_> = (0..8u32)
                .map(|t| {
                    let h = service
                        .submit_p2p(QueryRequest::st(7, t * 29).algo(algo))
                        .unwrap();
                    (t * 29, h)
                })
                .collect();
            for (t, h) in handles {
                assert_eq!(h.wait().unwrap(), oracle[t as usize], "{algo:?} t={t}");
            }
        }
        assert_eq!(service.metrics().served_target(), 24);
    }

    #[test]
    fn p2p_algos_handle_s_equals_t_and_unreachable() {
        use mmt_graph::types::INF;
        // A 5-vertex path plus an isolated vertex 5: reachable, s==t, and
        // proven-unreachable answers all flow through the served plane.
        let mut el = shapes::path(5, 3);
        el.n = 6;
        let g = CsrGraph::from_edge_list(&el);
        let ch = Arc::new(build_serial(&el, ChMode::Collapsed));
        let service = QueryService::builder()
            .workers(1)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        for algo in [P2pAlgo::Thorup, P2pAlgo::Bidirectional, P2pAlgo::DeltaEarly] {
            let at = |s, t| {
                service
                    .submit_p2p(QueryRequest::st(s, t).algo(algo))
                    .unwrap()
                    .wait()
                    .unwrap()
            };
            assert_eq!(at(0, 4), 12, "{algo:?}");
            assert_eq!(at(2, 2), 0, "{algo:?} s==t");
            assert_eq!(at(0, 5), INF, "{algo:?} unreachable");
            assert_eq!(at(5, 0), INF, "{algo:?} unreachable reversed");
        }
        assert_eq!(service.metrics().served_target(), 12);
    }

    #[test]
    fn p2p_algos_serve_on_layout_overrides() {
        // Override-layout requests build fresh per-request P2P state; the
        // answers must be identical to the resident layout's.
        let (g, service) = service(7, 1);
        let oracle = mmt_baselines::dijkstra(&g, 3);
        for algo in [P2pAlgo::Bidirectional, P2pAlgo::DeltaEarly] {
            for kind in [LayoutKind::Natural, LayoutKind::Bfs, LayoutKind::Degree] {
                let d = service
                    .submit_p2p(QueryRequest::st(3, 40).algo(algo).layout(kind))
                    .unwrap()
                    .wait()
                    .unwrap();
                assert_eq!(d, oracle[40], "{algo:?} on {kind:?}");
            }
        }
    }

    #[test]
    fn p2p_algo_deadline_already_expired_is_typed() {
        let (_g, service) = service(6, 1);
        for algo in [P2pAlgo::Bidirectional, P2pAlgo::DeltaEarly] {
            let err = service
                .submit_p2p(QueryRequest::st(0, 5).algo(algo).deadline(Duration::ZERO))
                .unwrap()
                .wait()
                .unwrap_err();
            assert!(
                matches!(err, ServiceError::DeadlineExceeded),
                "{algo:?}: {err:?}"
            );
        }
    }

    #[test]
    fn concurrent_clients() {
        let (g, service) = service(8, 4);
        let service = Arc::new(service);
        let oracle = mmt_baselines::dijkstra(&g, 0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let service = Arc::clone(&service);
                let oracle = &oracle;
                s.spawn(move || {
                    for _ in 0..5 {
                        let d = service.submit(0u32).unwrap().wait().unwrap();
                        assert_eq!(&d, oracle);
                    }
                });
            }
        });
        assert_eq!(service.metrics().served_full(), 30);
    }

    #[test]
    fn drop_joins_cleanly_with_queued_work() {
        let (_g, service) = service(9, 1);
        // Enqueue, keep the handles, drop the service first: drain-mode
        // shutdown answers both before the worker exits.
        let h1 = service.submit(0u32).unwrap();
        let h2 = service.submit(1u32).unwrap();
        drop(service);
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
    }

    #[test]
    fn figure_one_answers() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = Arc::new(build_serial(&el, ChMode::Collapsed));
        let service = QueryService::builder()
            .workers(2)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        assert_eq!(
            service.submit(0u32).unwrap().wait().unwrap(),
            vec![0, 1, 1, 9, 10, 10]
        );
        assert_eq!(
            service
                .submit_p2p(QueryRequest::new(0).target(4))
                .unwrap()
                .wait()
                .unwrap(),
            10
        );
    }

    #[test]
    fn mismatched_hierarchy_is_a_typed_error() {
        let (g, _) = fixture(6);
        let other = shapes::figure_one();
        let ch = Arc::new(build_serial(&other, ChMode::Collapsed));
        let mut registry = GraphRegistry::new();
        let err = registry.register("default", &g, ch).unwrap_err();
        assert!(matches!(err, InputError::GraphMismatch { .. }));
    }

    #[test]
    fn out_of_range_queries_are_typed_errors() {
        let (g, service) = service(6, 1);
        let n = g.n();
        let bad = n as VertexId;
        assert!(matches!(
            service.submit(bad),
            Err(ServiceError::Input(InputError::SourceOutOfRange { .. }))
        ));
        assert!(matches!(
            service.submit_p2p(QueryRequest::new(0).target(bad)),
            Err(ServiceError::Input(InputError::TargetOutOfRange { .. }))
        ));
        assert_eq!(service.metrics().rejected_input(), 2);
    }

    #[test]
    fn request_shape_errors_are_typed() {
        let (_g, service) = service(6, 1);
        // A full-SSSP submit must not smuggle a target.
        assert!(matches!(
            service.submit(QueryRequest::new(0).target(3)),
            Err(ServiceError::Input(InputError::UnexpectedTarget {
                target: 3
            }))
        ));
        // A point-to-point submit must carry one.
        assert!(matches!(
            service.submit_p2p(QueryRequest::new(0)),
            Err(ServiceError::Input(InputError::MissingTarget))
        ));
        // A graph id the registry never issued is refused, not indexed.
        let ghost = GraphId::from_index(7);
        assert!(matches!(
            service.submit(QueryRequest::on(ghost, 0)),
            Err(ServiceError::Input(InputError::UnknownGraph { graph })) if graph == ghost
        ));
        assert_eq!(service.metrics().rejected_input(), 3);
    }

    #[test]
    fn query_ids_are_unique_and_typed() {
        let (_g, service) = service(6, 2);
        let h1 = service.submit(0u32).unwrap();
        let h2 = service.submit(1u32).unwrap();
        let b = service.submit_batch(&[2u32, 3]).unwrap();
        let mut ids = vec![h1.id(), h2.id(), b.id()];
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3, "every admitted request gets a fresh id");
        assert_eq!(h1.id().to_string(), "q0");
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
        b.wait();
    }

    #[test]
    fn queue_full_rejects_without_blocking() {
        // Zero workers: nothing drains the queue, so admission control is
        // exercised deterministically.
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(2)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let h1 = service.try_submit(0u32).unwrap();
        let h2 = service.try_submit(1u32).unwrap();
        let err = service.try_submit(2u32).unwrap_err();
        assert_eq!(err, ServiceError::Overloaded { capacity: 2 });
        assert_eq!(service.metrics().rejected_overload(), 1);
        assert_eq!(service.metrics().queue_depth(), 2);
        // Dropping the service abandons the queued work; the held handles
        // resolve to ShutDown rather than hanging.
        drop(service);
        assert_eq!(h1.wait().unwrap_err(), ServiceError::ShutDown);
        assert_eq!(h2.wait().unwrap_err(), ServiceError::ShutDown);
    }

    #[test]
    fn expired_deadline_is_enforced_at_dequeue() {
        let (_g, service) = service(8, 1);
        let h = service
            .submit(QueryRequest::new(0).deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(h.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        let ht = service
            .submit_p2p(QueryRequest::new(0).target(5).deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(ht.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        assert_eq!(service.metrics().rejected_deadline(), 2);
        assert_eq!(service.metrics().served_full(), 0);
        // The worker is still healthy afterwards.
        assert!(service.submit(0u32).unwrap().wait().is_ok());
    }

    #[test]
    fn dropped_handle_cancels_query() {
        // One worker and a graph big enough that the solve cannot finish
        // in the instants before the drop lands: whether the cancellation
        // is observed at dequeue or mid-solve, the query must terminate
        // as Cancelled and the worker must move on.
        let (_g, service) = service(13, 1);
        let big = service.submit(0u32).unwrap();
        drop(big); // cancels
        let marker = service.submit(1u32).unwrap();
        assert!(marker.wait().is_ok());
        assert_eq!(service.metrics().cancelled(), 1);
        assert_eq!(service.metrics().served_full(), 1);
    }

    #[test]
    fn explicit_cancel_then_wait_reports_cancelled() {
        let (g, ch) = fixture(7);
        let service = QueryService::builder()
            .workers(1)
            .queue_capacity(8)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let h = service.submit(0u32).unwrap();
        h.cancel();
        // Either the worker saw the cancellation (Cancelled) or it had
        // already produced the answer (Ok) — both are legal; what must
        // never happen is a hang or a panic.
        match h.wait() {
            Ok(_) | Err(ServiceError::Cancelled) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn shutdown_abort_abandons_queued_work() {
        let (_g, service) = service(10, 1);
        let handles: Vec<_> = (0..6u32).map(|s| service.submit(s).unwrap()).collect();
        service.shutdown(ShutdownMode::Abort);
        let mut served = 0u64;
        let mut shut_down = 0u64;
        for h in handles {
            match h.wait() {
                Ok(_) => served += 1,
                Err(ServiceError::ShutDown) => shut_down += 1,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert_eq!(served + shut_down, 6);
        assert!(shut_down > 0, "abort must abandon queued work");
        let snap = service.metrics().snapshot();
        assert_eq!(snap.served_total() + snap.rejected_total(), 6);
        // Submission after shutdown is a typed error.
        assert_eq!(service.submit(0u32).unwrap_err(), ServiceError::ShutDown);
        // Idempotent.
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn shutdown_drain_answers_everything() {
        let (_g, service) = service(9, 2);
        let handles: Vec<_> = (0..8u32).map(|s| service.submit(s).unwrap()).collect();
        service.shutdown(ShutdownMode::Drain);
        for h in handles {
            assert!(h.wait().is_ok());
        }
        assert_eq!(service.metrics().served_full(), 8);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let (_g, service) = service(7, 1);
        service.submit(0u32).unwrap().wait().unwrap();
        let json = service.metrics().snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"served_full\":1"));
        assert!(json.contains("\"latency_us\":{\"total\":1"));
        assert!(json.contains("\"graphs\":[{\"name\":\"default\",\"served\":1"));
    }

    #[test]
    fn batch_answers_match_dijkstra_in_order() {
        let (g, service) = service(8, 3);
        let sources: Vec<u32> = (0..12u32).map(|i| i * 11 % 64).collect();
        let results = service.submit_batch(&sources).unwrap().wait();
        assert_eq!(results.len(), sources.len());
        for (i, (s, r)) in sources.iter().zip(&results).enumerate() {
            let got = r.as_ref().unwrap();
            assert_eq!(&got[..], &mmt_baselines::dijkstra(&g, *s)[..], "slot {i}");
        }
        assert_eq!(service.metrics().served_batch(), 12);
        assert_eq!(service.metrics().snapshot().served_total(), 12);
    }

    #[test]
    fn batch_steady_state_reuses_distance_buffers() {
        let (g, service) = service(7, 2);
        let sources: Vec<u32> = (0..8).collect();
        let want: Vec<Vec<Dist>> = sources
            .iter()
            .map(|&s| mmt_baselines::dijkstra(&g, s))
            .collect();
        // Warm-up: the pool grows to at most one buffer per in-flight
        // result (all batch results are held until `wait` returns).
        let rows = service.submit_batch(&sources).unwrap().wait();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
        }
        drop(rows); // every buffer returns to the pool
        let warm = service.distance_buffers_created();
        assert!(warm >= 1 && warm <= sources.len());
        for _ in 0..3 {
            let rows = service.submit_batch(&sources).unwrap().wait();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
            }
        }
        assert_eq!(
            service.distance_buffers_created(),
            warm,
            "steady-state batches must serve every answer from the pool"
        );
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let (_g, service) = service(6, 1);
        let results = service.submit_batch(Vec::new()).unwrap().wait();
        assert!(results.is_empty());
        assert_eq!(service.metrics().served_batch(), 0);
    }

    #[test]
    fn batch_with_bad_source_is_rejected_whole() {
        let (g, service) = service(6, 1);
        let bad = g.n() as VertexId;
        let err = service.submit_batch(&[0, bad]).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Input(InputError::SourceOutOfRange { .. })
        ));
        assert_eq!(service.metrics().served_batch(), 0);
        assert_eq!(service.metrics().queue_depth(), 0, "nothing enqueued");
    }

    #[test]
    fn batch_expired_deadline_resolves_every_member() {
        let (_g, service) = service(8, 1);
        let handle = service
            .submit_batch(BatchRequest::new([0, 1, 2]).deadline(Duration::ZERO))
            .unwrap();
        let results = handle.wait();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(*r.as_ref().unwrap_err(), ServiceError::DeadlineExceeded);
        }
        assert_eq!(service.metrics().rejected_deadline(), 3);
        // The worker is still healthy afterwards.
        assert!(service.submit(0u32).unwrap().wait().is_ok());
    }

    #[test]
    fn batch_abandoned_by_shutdown_never_hangs() {
        let (g, ch) = fixture(7);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(16)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let handle = service.submit_batch(&[0u32, 1, 2, 3]).unwrap();
        // No workers: the queued members are dropped with the service and
        // their slots resolve to ShutDown instead of leaving `wait` stuck.
        drop(service);
        let results = handle.wait();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(*r.as_ref().unwrap_err(), ServiceError::ShutDown);
        }
    }

    #[test]
    fn snapshot_json_includes_batch_counter() {
        let (_g, service) = service(6, 1);
        service.submit_batch(&[0u32, 1]).unwrap().wait();
        let json = service.metrics().snapshot().to_json();
        assert!(json.contains("\"served_batch\":2"), "{json}");
    }

    #[test]
    fn layout_services_answer_in_original_ids() {
        use crate::layout::LayoutKind;
        let (g, ch) = fixture(8);
        for kind in LayoutKind::all() {
            let service = QueryService::builder()
                .workers(2)
                .layout(kind)
                .build_registry(single_registry(&g, Arc::clone(&ch)))
                .unwrap();
            assert_eq!(service.layout(), kind);
            // Full query: distances come back indexed by original vertex.
            let want = mmt_baselines::dijkstra(&g, 5);
            assert_eq!(
                service.submit(5u32).unwrap().wait().unwrap(),
                want,
                "{}",
                kind.short_name()
            );
            // Targeted query: both endpoints are original ids.
            assert_eq!(
                service
                    .submit_p2p(QueryRequest::new(5).target(40))
                    .unwrap()
                    .wait()
                    .unwrap(),
                want[40],
                "{}",
                kind.short_name()
            );
            // Batch: every row in original order.
            let sources = [0u32, 9, 31];
            let rows = service.submit_batch(&sources).unwrap().wait();
            for (s, r) in sources.iter().zip(&rows) {
                assert_eq!(
                    &r.as_ref().unwrap()[..],
                    &mmt_baselines::dijkstra(&g, *s)[..],
                    "{} source {s}",
                    kind.short_name()
                );
            }
        }
    }

    #[test]
    fn layout_batches_still_reuse_distance_buffers() {
        use crate::layout::LayoutKind;
        let (g, ch) = fixture(7);
        let service = QueryService::builder()
            .workers(2)
            .layout(LayoutKind::ChDfs)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let sources: Vec<u32> = (0..8).collect();
        let want: Vec<Vec<Dist>> = sources
            .iter()
            .map(|&s| mmt_baselines::dijkstra(&g, s))
            .collect();
        let rows = service.submit_batch(&sources).unwrap().wait();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
        }
        drop(rows);
        let warm = service.distance_buffers_created();
        for _ in 0..3 {
            let rows = service.submit_batch(&sources).unwrap().wait();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
            }
        }
        assert_eq!(
            service.distance_buffers_created(),
            warm,
            "the scatter path must not defeat the buffer pool"
        );
    }

    #[test]
    fn wait_timeout_on_stalled_queue() {
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let h = service.try_submit(0u32).unwrap();
        assert_eq!(
            h.wait_timeout(Duration::from_millis(10)).unwrap_err(),
            ServiceError::DeadlineExceeded
        );
    }

    /// Keeps injected panics out of the test output while leaving genuine
    /// panics (including assertion failures on other test threads) on the
    /// default hook.
    fn silence_injected_panics() {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info
                    .payload()
                    .downcast_ref::<mmt_platform::InjectedPanic>()
                    .is_none()
                {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn shed_policy_evicts_expired_queued_requests() {
        // Zero workers: the queue fills deterministically. Two requests
        // with already-expired deadlines occupy it; a fresh submission
        // under RejectOldestExpired evicts both.
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(2)
            .shed_policy(ShedPolicy::RejectOldestExpired)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        assert_eq!(service.shed_policy(), ShedPolicy::RejectOldestExpired);
        let dead1 = service
            .try_submit(QueryRequest::new(0).deadline(Duration::ZERO))
            .unwrap();
        let dead2 = service
            .try_submit(QueryRequest::new(1).deadline(Duration::ZERO))
            .unwrap();
        let fresh = service.try_submit(2u32).unwrap();
        // The evicted requests fail loudly and typed — never by silence.
        assert_eq!(dead1.wait().unwrap_err(), ServiceError::Shed);
        assert_eq!(dead2.wait().unwrap_err(), ServiceError::Shed);
        assert_eq!(service.metrics().shed(), 2);
        assert_eq!(
            service.metrics().queue_depth(),
            1,
            "depth never exceeds capacity"
        );
        // The shed count is also attributed to the graph that shed it.
        let snap = service.metrics().snapshot();
        assert_eq!(snap.graphs[0].shed, 2);
        drop(fresh);
        drop(service);
    }

    #[test]
    fn shed_policy_with_nothing_evictable_still_rejects_newest() {
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(1)
            .shed_policy(ShedPolicy::RejectOldestExpired)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let _live = service.try_submit(0u32).unwrap();
        // The queued request is healthy, so nothing is evictable and the
        // arriving request is refused exactly as under RejectNewest.
        let err = service.try_submit(1u32).unwrap_err();
        assert_eq!(err, ServiceError::Overloaded { capacity: 1 });
        assert_eq!(service.metrics().shed(), 0);
    }

    #[test]
    fn injected_panic_resolves_worker_lost_and_respawns() {
        silence_injected_panics();
        let (g, ch) = fixture(8);
        let plan = Arc::new(
            FaultPlan::builder()
                .fault_at(FaultSite::Solve, 1, mmt_platform::FaultKind::Panic)
                .build(),
        );
        let service = QueryService::builder()
            .workers(1)
            .fault_plan(Arc::clone(&plan))
            .build_registry(single_registry(&g, ch))
            .unwrap();
        // Query 0 solves cleanly; query 1 panics mid-solve; query 2 proves
        // the respawned worker serves again.
        let h0 = service.submit(0u32).unwrap();
        assert!(h0.wait().is_ok());
        let h1 = service.submit(1u32).unwrap();
        assert_eq!(h1.wait().unwrap_err(), ServiceError::WorkerLost);
        let h2 = service.submit(2u32).unwrap();
        assert_eq!(h2.wait().unwrap(), mmt_baselines::dijkstra(&g, 2));
        assert_eq!(service.metrics().requests_lost(), 1);
        assert_eq!(service.metrics().workers_restarted(), 1);
        assert_eq!(service.metrics().inflight(), 0, "gauge repaired");
        assert_eq!(plan.panics_fired(), 1);
        // Shutdown still joins cleanly after a respawn.
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn snapshot_json_includes_robustness_counters() {
        let (_g, service) = service(6, 1);
        let json = service.metrics().snapshot().to_json();
        for key in [
            "requests_lost",
            "shed",
            "workers_restarted",
            "rejected_evicted",
            "rejected_memory",
        ] {
            assert!(json.contains(&format!("\"{key}\":0")), "{key} in {json}");
        }
    }

    #[test]
    fn multi_graph_routing_and_per_graph_metrics() {
        // Two tenants with different graphs: answers must come from the
        // right one, and the per-graph metrics must attribute each query.
        let (g_a, ch_a) = fixture(7);
        let el_b = shapes::figure_one();
        let g_b = CsrGraph::from_edge_list(&el_b);
        let ch_b = Arc::new(build_serial(&el_b, ChMode::Collapsed));
        let mut registry = GraphRegistry::new();
        let a = registry.register("alpha", &g_a, ch_a).unwrap();
        let b = registry.register("beta", &g_b, ch_b).unwrap();
        let service = QueryService::builder()
            .workers(2)
            .build_registry(registry)
            .unwrap();
        for s in 0..4u32 {
            assert_eq!(
                service
                    .submit(QueryRequest::on(a, s))
                    .unwrap()
                    .wait()
                    .unwrap(),
                mmt_baselines::dijkstra(&g_a, s)
            );
        }
        assert_eq!(
            service
                .submit(QueryRequest::on(b, 0))
                .unwrap()
                .wait()
                .unwrap(),
            vec![0, 1, 1, 9, 10, 10]
        );
        assert_eq!(
            service.submit((b, 0u32)).unwrap().wait().unwrap()[5],
            10,
            "tuple form routes identically"
        );
        let snap = service.metrics().snapshot();
        assert_eq!(snap.graphs.len(), 2);
        assert_eq!(snap.graphs[0].name, "alpha");
        assert_eq!(snap.graphs[0].served, 4);
        assert_eq!(snap.graphs[1].name, "beta");
        assert_eq!(snap.graphs[1].served, 2);
        assert!(snap.graphs[0].resident_bytes > 0);
        assert!(snap.graphs[1].resident_bytes > 0);
        let json = snap.to_json();
        assert!(json.contains("\"graphs\":[{\"name\":\"alpha\""), "{json}");
        assert!(json.contains("\"name\":\"beta\",\"served\":2"), "{json}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_single_graph_shim_is_byte_identical() {
        // The old build(graph, ch) surface must keep answering — through
        // the registry — with exactly the bytes the new path produces.
        let (g, ch) = fixture(7);
        let old = QueryService::builder()
            .workers(1)
            .build(Arc::clone(&g), Arc::clone(&ch))
            .unwrap();
        let new = QueryService::builder()
            .workers(1)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        for s in [0u32, 3, 17] {
            let via_old = old.submit(s).unwrap().wait().unwrap();
            let via_new = new.submit(s).unwrap().wait().unwrap();
            assert_eq!(via_old, via_new, "source {s}");
            assert_eq!(
                old.submit_target(s, 1).unwrap().wait().unwrap(),
                new.submit_p2p(QueryRequest::new(s).target(1))
                    .unwrap()
                    .wait()
                    .unwrap()
            );
        }
    }

    #[test]
    fn evict_graph_resolves_queued_and_keeps_other_tenants() {
        let (g_a, ch_a) = fixture(6);
        let (g_b, ch_b) = fixture(7);
        let mut registry = GraphRegistry::new();
        let a = registry.register("alpha", &g_a, ch_a).unwrap();
        let b = registry.register("beta", &g_b, ch_b).unwrap();
        // Zero workers: queued work sits deterministically until eviction.
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(8)
            .build_registry(registry)
            .unwrap();
        let doomed: Vec<_> = (0..3u32)
            .map(|s| service.submit(QueryRequest::on(a, s)).unwrap())
            .collect();
        let resident_before = service.registry().resident_bytes();
        let before_a = service.registry().graph_resident_bytes(a).unwrap();
        assert!(before_a > 0);
        assert!(service.evict_graph(a).unwrap(), "first evict performs");
        assert!(!service.evict_graph(a).unwrap(), "second is a no-op");
        // Every queued request resolved typed — exact accounting, no loss.
        for h in doomed {
            assert_eq!(h.wait().unwrap_err(), ServiceError::GraphEvicted);
        }
        assert_eq!(service.metrics().rejected_evicted(), 3);
        // Admission for the evicted tenant is closed, typed.
        assert_eq!(
            service.submit(QueryRequest::on(a, 0)).unwrap_err(),
            ServiceError::GraphEvicted
        );
        assert_eq!(service.metrics().rejected_evicted(), 4);
        // The evicted tenant's bytes are gone; the survivor's are not.
        assert_eq!(service.registry().graph_resident_bytes(a).unwrap(), 0);
        assert_eq!(
            service.registry().resident_bytes(),
            resident_before - before_a
        );
        // The other tenant still admits work.
        let survivor = service.try_submit(QueryRequest::on(b, 0)).unwrap();
        drop(survivor);
        drop(service);
    }

    #[test]
    fn memory_limit_refuses_admission_under_pressure() {
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(1)
            .memory_limit(1) // resident bytes always exceed one byte
            .build_registry(single_registry(&g, ch))
            .unwrap();
        assert_eq!(service.memory_limit(), Some(1));
        let err = service.submit(0u32).unwrap_err();
        assert!(
            matches!(err, ServiceError::MemoryPressure { resident, limit: 1 } if resident > 1),
            "{err:?}"
        );
        assert_eq!(service.metrics().rejected_memory(), 1);
        let json = service.metrics().snapshot().to_json();
        assert!(json.contains("\"rejected_memory\":1"), "{json}");
    }

    #[test]
    fn per_request_layout_override_matches_default() {
        use crate::layout::LayoutKind;
        let (g, service) = service(7, 1);
        let id = service.registry().ids().next().unwrap();
        let want = mmt_baselines::dijkstra(&g, 3);
        // Same query on the resident Natural layout and on a per-request
        // ChDfs override: identical answers in original ids.
        assert_eq!(service.submit(3u32).unwrap().wait().unwrap(), want);
        assert_eq!(
            service
                .submit(QueryRequest::new(3).layout(LayoutKind::ChDfs))
                .unwrap()
                .wait()
                .unwrap(),
            want
        );
        // The override went through the registry's layout cache.
        assert_eq!(service.registry().stats(id).unwrap().misses.get(), 1);
        // Asking again is a hit, not a rebuild.
        let hits_before = service.registry().stats(id).unwrap().hits.get();
        assert_eq!(
            service
                .submit(QueryRequest::new(5).layout(LayoutKind::ChDfs))
                .unwrap()
                .wait()
                .unwrap(),
            mmt_baselines::dijkstra(&g, 5)
        );
        assert_eq!(
            service.registry().stats(id).unwrap().hits.get(),
            hits_before + 1
        );
        assert_eq!(service.registry().stats(id).unwrap().rebuilds.get(), 0);
    }

    #[test]
    fn coalescing_defaults_are_on_with_zero_budget() {
        let (_g, service) = service(6, 1);
        assert_eq!(service.coalesce_budget(), Some(Duration::ZERO));
        assert_eq!(service.coalesce_batch_cap(), 16);
        let (g, ch) = fixture(6);
        let off = QueryService::builder()
            .workers(1)
            .no_coalescing()
            .build_registry(single_registry(&g, ch))
            .unwrap();
        assert_eq!(off.coalesce_budget(), None);
    }

    #[test]
    fn coalescer_groups_queued_queries_into_one_batch_solver_run() {
        // One worker, a generous window, cap 4: the worker dequeues the
        // first query, waits for the other three (they arrive within the
        // window), hits the cap and solves all four in one BatchSolver
        // run — deterministically one 4-member batch.
        let (g, ch) = fixture(8);
        let service = QueryService::builder()
            .workers(1)
            .coalesce_budget(Duration::from_millis(500))
            .coalesce_batch_cap(4)
            .build_registry(single_registry(&g, Arc::clone(&ch)))
            .unwrap();
        let sources = [3u32, 17, 3, 40];
        let handles: Vec<_> = sources
            .iter()
            .map(|&s| service.submit(s).unwrap())
            .collect();
        let answers: Vec<Vec<Dist>> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
        assert_eq!(service.metrics().coalesced_batches(), 1);
        assert_eq!(service.metrics().coalesced_queries(), 4);
        assert_eq!(service.metrics().served_full(), 4);
        // Byte-identical to the non-coalesced path and the Dijkstra oracle.
        let plain = QueryService::builder()
            .workers(1)
            .no_coalescing()
            .build_registry(single_registry(&g, ch))
            .unwrap();
        for (&s, got) in sources.iter().zip(&answers) {
            assert_eq!(got, &mmt_baselines::dijkstra(&g, s));
            assert_eq!(got, &plain.submit(s).unwrap().wait().unwrap());
        }
        assert_eq!(plain.metrics().coalesced_batches(), 0);
    }

    #[test]
    fn coalescer_respects_the_batch_cap() {
        // Cap 2 with four queries waiting: two batches of two, never one
        // of four.
        let (g, service_cfg) = fixture(7);
        let service = QueryService::builder()
            .workers(1)
            .coalesce_budget(Duration::from_millis(500))
            .coalesce_batch_cap(2)
            .build_registry(single_registry(&g, service_cfg))
            .unwrap();
        let handles: Vec<_> = (0..4u32).map(|s| service.submit(s * 9).unwrap()).collect();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.wait().unwrap();
            assert_eq!(got, mmt_baselines::dijkstra(&g, (i as u32) * 9));
        }
        let m = service.metrics();
        assert_eq!(m.served_full(), 4);
        assert_eq!(m.coalesced_batches(), 2);
        assert_eq!(m.coalesced_queries(), 4);
    }

    #[test]
    fn coalescing_window_never_outlives_a_member_deadline() {
        // A query with a short deadline opens the batch; the window is
        // clamped to that deadline, so the worker stops waiting and the
        // (by then expired) member is shed loudly — typed, counted, and
        // well before the 500 ms budget.
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(1)
            .coalesce_budget(Duration::from_millis(500))
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let started = Instant::now();
        let h = service
            .submit(QueryRequest::new(0).deadline(Duration::from_millis(20)))
            .unwrap();
        // No second query ever arrives; the clamped window expires first.
        let got = h.wait();
        assert!(started.elapsed() < Duration::from_millis(400));
        match got {
            // Usual: the worker dequeued promptly, the clamped window ran
            // out, and the gather-time token check shed the member.
            Err(ServiceError::DeadlineExceeded) => {
                assert_eq!(service.metrics().rejected_deadline(), 1);
            }
            // A fast dequeue can still beat the 20 ms deadline and solve
            // legitimately — correct either way, just not a late answer.
            Ok(d) => assert_eq!(d, mmt_baselines::dijkstra(&g, 0)),
            Err(e) => panic!("unexpected rejection {e:?}"),
        }
    }

    #[test]
    fn backlog_coalesces_even_with_zero_budget() {
        // Default configuration (budget zero): pile queries behind one
        // worker and at least one multi-member batch must form, with
        // every answer still exact and individually counted.
        let (g, service) = service(7, 1);
        let sources: Vec<u32> = (0..24).map(|i| (i * 11) % 64).collect();
        let handles: Vec<_> = sources
            .iter()
            .map(|&s| service.submit(s).unwrap())
            .collect();
        for (&s, h) in sources.iter().zip(handles) {
            assert_eq!(h.wait().unwrap(), mmt_baselines::dijkstra(&g, s));
        }
        let m = service.metrics().snapshot();
        assert_eq!(m.served_full, 24);
        assert_eq!(m.latency_us.total(), 24);
        assert_eq!(m.queue_wait_us.total(), 24);
        assert!(
            m.coalesced_batches >= 1,
            "24 queries behind 1 worker must coalesce at least once"
        );
        assert!(m.coalesced_queries >= 2 * m.coalesced_batches);
    }

    #[test]
    fn snapshot_json_carries_coalesce_counters_and_quantiles() {
        let (_g, service) = service(6, 2);
        for s in 0..6u32 {
            service.submit(s).unwrap().wait().unwrap();
        }
        let snap = service.metrics().snapshot();
        let json = snap.to_json();
        assert!(json.contains(&format!("\"coalesced_batches\":{}", snap.coalesced_batches)));
        assert!(json.contains(&format!("\"coalesced_queries\":{}", snap.coalesced_queries)));
        assert!(json.contains("\"latency_quantiles_us\":{\"total\":6,"));
        assert!(json.contains("\"queue_wait_quantiles_us\":{\"total\":6,"));
        let q = snap.latency_quantiles();
        assert_eq!(q.total, 6);
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99);
    }

    #[test]
    fn trace_sink_records_full_lifecycles() {
        use crate::trace::MemoryTraceSink;
        let (g, ch) = fixture(7);
        let sink = Arc::new(MemoryTraceSink::new());
        let service = QueryService::builder()
            .workers(1)
            .coalesce_budget(Duration::from_millis(500))
            .coalesce_batch_cap(2)
            .trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
            .build_registry(single_registry(&g, ch))
            .unwrap();
        let h0 = service.submit(4u32).unwrap();
        let h1 = service.submit(9u32).unwrap();
        assert_eq!(h0.wait().unwrap(), mmt_baselines::dijkstra(&g, 4));
        assert_eq!(h1.wait().unwrap(), mmt_baselines::dijkstra(&g, 9));
        // A p2p query takes the singleton path and must trace too.
        let d = service
            .submit_p2p(QueryRequest::new(4).target(9))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(d, mmt_baselines::dijkstra(&g, 4)[9]);
        let events = sink.events();
        assert_eq!(events.len(), 3);
        let full: Vec<_> = events.iter().filter(|e| e.kind == "full").collect();
        assert_eq!(full.len(), 2);
        // Both full queries rode one coalesced batch of two.
        assert_eq!(full[0].batch, full[1].batch);
        assert!(full[0].batch.is_some());
        assert_eq!(full[0].batch_size, 2);
        for e in &full {
            assert_eq!(e.outcome, "ok");
            assert_eq!(e.graph, "default");
            assert!(e.enqueue_us <= e.dequeue_us);
            assert!(e.dequeue_us <= e.reply_us);
            let solve = e.solve_us.expect("served queries record a solve time");
            assert!(solve <= e.reply_us);
            assert!(e.relaxations > 0, "tracing attaches work counters");
            assert!(e.arcs_scanned > 0);
        }
        // The opener was dequeued, not gathered; its batchmate was.
        assert!(full.iter().any(|e| e.coalesce_us.is_none()));
        assert!(full.iter().any(|e| e.coalesce_us.is_some()));
        let target = events.iter().find(|e| e.kind == "target").unwrap();
        assert_eq!(target.batch, None);
        assert_eq!(target.batch_size, 1);
        assert_eq!(target.query, "q2");
        // JSON lines render one object per event.
        assert_eq!(sink.lines().len(), 3);
        assert!(sink.lines()[0].contains("\"outcome\":\"ok\""));
    }
}
