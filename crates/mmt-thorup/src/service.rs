//! A long-lived SSSP query service over one shared Component Hierarchy.
//!
//! The paper's deployment story — build the hierarchy once, then serve a
//! stream of shortest-path queries from many clients — needs more than a
//! batch call: a resident worker pool, per-worker reusable instances,
//! bounded admission, per-request deadlines, cancellation, and clean
//! shutdown. This module is that serving layer.
//!
//! Each worker owns one [`ThorupInstance`] (a `w`-worker service pins
//! exactly `w` instances — the paper's Section 5.2 memory model), pulls
//! requests from a shared **bounded** queue, and answers through a
//! per-request reply channel. Admission control is typed: when the queue
//! is full, [`QueryService::try_submit`] returns
//! [`ServiceError::Overloaded`] instead of blocking. Every request
//! carries a [`CancelToken`]; dropping a handle, an expired deadline, or
//! an abort-mode shutdown stops the query — checked at dequeue *and*
//! cooperatively inside the solver at bucket-expansion boundaries.
//!
//! The service also degrades gracefully instead of deadlocking:
//!
//! * **Poisoned workers.** A panic while a request is in flight is
//!   caught ([`std::panic::catch_unwind`]); the request resolves to
//!   [`ServiceError::WorkerLost`], the worker's per-query state is torn
//!   down and respawned, and the pool returns to full strength
//!   ([`ServiceMetrics::workers_restarted`] /
//!   [`ServiceMetrics::requests_lost`] record the damage).
//! * **Load shedding.** Under sustained overload,
//!   [`ShedPolicy::RejectOldestExpired`] evicts queued requests whose
//!   deadline has already passed (or that were cancelled) to admit fresh
//!   work; evicted requests resolve to [`ServiceError::Shed`] — never a
//!   timeout-by-silence — and queue depth never exceeds capacity.
//! * **Fault injection.** The chaos suite threads a seeded
//!   [`mmt_platform::FaultPlan`] through the workers via
//!   [`QueryServiceBuilder::fault_plan`]; production services pay one
//!   `Option` branch per injection site.
//!
//! ```
//! use std::sync::Arc;
//! use mmt_ch::build_parallel;
//! use mmt_graph::{gen::shapes, CsrGraph};
//! use mmt_thorup::service::QueryService;
//!
//! let el = shapes::figure_one();
//! let graph = Arc::new(CsrGraph::from_edge_list(&el));
//! let ch = Arc::new(build_parallel(&el));
//! let service = QueryService::builder()
//!     .workers(2)
//!     .queue_capacity(64)
//!     .build(graph, ch)
//!     .unwrap();
//! let handle = service.submit(0).unwrap();
//! assert_eq!(handle.wait().unwrap()[5], 10);
//! assert_eq!(service.metrics().served_full(), 1);
//! ```

use crate::batch::{DistancePool, PooledDistances};
use crate::error::ServiceError;
use crate::instance::ThorupInstance;
use crate::layout::{GraphLayout, LayoutKind};
use crate::solver::{ThorupConfig, ThorupSolver};
use crossbeam::channel::{bounded, Receiver, Sender};
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId};
use mmt_graph::CsrGraph;
use mmt_platform::{
    AtomicLog2Histogram, CancelToken, Counter, FaultPlan, FaultSite, Log2Histogram, PushRejected,
    ShedQueue,
};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::InputError;

enum Request {
    Full {
        source: VertexId,
        reply: Sender<Result<Vec<Dist>, ServiceError>>,
        token: CancelToken,
        enqueued: Instant,
    },
    Target {
        source: VertexId,
        target: VertexId,
        reply: Sender<Result<Dist, ServiceError>>,
        token: CancelToken,
        enqueued: Instant,
    },
    Batch {
        source: VertexId,
        member: BatchMember,
        token: CancelToken,
        enqueued: Instant,
    },
}

impl Request {
    fn token(&self) -> &CancelToken {
        match self {
            Request::Full { token, .. }
            | Request::Target { token, .. }
            | Request::Batch { token, .. } => token,
        }
    }

    fn enqueued(&self) -> Instant {
        match self {
            Request::Full { enqueued, .. }
            | Request::Target { enqueued, .. }
            | Request::Batch { enqueued, .. } => *enqueued,
        }
    }
}

/// Shared completion state of one batch: one slot per source, a countdown,
/// and the signal that flips when the countdown hits zero. All member
/// metrics are recorded here — exactly once per slot, whatever path
/// resolved it (worker answer, dequeue-time failure, or a request dropped
/// by shutdown).
struct BatchCollector {
    slots: Mutex<Vec<Option<Result<PooledDistances, ServiceError>>>>,
    remaining: AtomicUsize,
    done: Sender<()>,
    metrics: Arc<ServiceMetrics>,
}

impl BatchCollector {
    fn fulfil(&self, slot: usize, result: Result<PooledDistances, ServiceError>) {
        match &result {
            Ok(_) => self.metrics.served_batch.bump(),
            Err(e) => self.metrics.note_failure(e),
        }
        self.slots.lock()[slot] = Some(result);
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _ = self.done.send(());
        }
    }
}

/// One batch slot's write-once capability. If the request carrying it is
/// dropped unresolved (e.g. discarded from the queue at shutdown), the
/// slot resolves to [`ServiceError::ShutDown`] so the batch never hangs.
struct BatchMember {
    collector: Arc<BatchCollector>,
    slot: usize,
    resolved: bool,
}

impl BatchMember {
    fn new(collector: Arc<BatchCollector>, slot: usize) -> Self {
        Self {
            collector,
            slot,
            resolved: false,
        }
    }

    fn fulfil(mut self, result: Result<PooledDistances, ServiceError>) {
        self.resolved = true;
        self.collector.fulfil(self.slot, result);
    }
}

impl Drop for BatchMember {
    fn drop(&mut self) {
        if !self.resolved {
            self.collector
                .fulfil(self.slot, Err(ServiceError::ShutDown));
        }
    }
}

/// A handle to an in-flight batch of full SSSP queries. Dropping it
/// without waiting cancels every member.
pub struct BatchHandle {
    done: Option<Receiver<()>>,
    collector: Arc<BatchCollector>,
    token: CancelToken,
}

impl std::fmt::Debug for BatchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchHandle")
            .field("waited", &self.done.is_none())
            .finish_non_exhaustive()
    }
}

impl BatchHandle {
    /// Blocks until every member has an answer or a typed rejection,
    /// returning per-source results in submission order. Result vectors
    /// are on loan from the service's pool: dropping one recycles its
    /// buffer for later queries.
    pub fn wait(mut self) -> Vec<Result<PooledDistances, ServiceError>> {
        let done = self.done.take().expect("done receiver taken once");
        // Every member slot is guaranteed to resolve (worker, dequeue
        // check, or drop guard), so this cannot hang; a disconnect would
        // mean the collector died, which the Arc we hold rules out.
        let _ = done.recv();
        let mut slots = self.collector.slots.lock();
        slots
            .drain(..)
            .map(|r| r.expect("all slots resolved before done fires"))
            .collect()
    }

    /// Requests cancellation of every not-yet-answered member.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

impl Drop for BatchHandle {
    fn drop(&mut self) {
        if self.done.is_some() {
            self.token.cancel();
        }
    }
}

macro_rules! impl_handle {
    ($(#[$doc:meta])* $name:ident, $ok:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            reply: Option<Receiver<Result<$ok, ServiceError>>>,
            token: CancelToken,
        }

        impl $name {
            /// Blocks until the answer (or a typed rejection) arrives.
            ///
            /// [`ServiceError::ShutDown`] is returned when the service
            /// stopped before answering.
            pub fn wait(mut self) -> Result<$ok, ServiceError> {
                let reply = self.reply.take().expect("reply receiver taken once");
                match reply.recv() {
                    Ok(result) => result,
                    Err(_) => Err(ServiceError::ShutDown),
                }
            }

            /// As [`wait`](Self::wait), giving up (and cancelling the
            /// query) when no answer arrives within `timeout`.
            pub fn wait_timeout(mut self, timeout: Duration) -> Result<$ok, ServiceError> {
                let reply = self.reply.take().expect("reply receiver taken once");
                match reply.recv_timeout(timeout) {
                    Ok(result) => result,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        self.token.cancel();
                        Err(ServiceError::DeadlineExceeded)
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        Err(ServiceError::ShutDown)
                    }
                }
            }

            /// Requests cancellation of the in-flight query without
            /// consuming the handle. The eventual [`wait`](Self::wait)
            /// reports [`ServiceError::Cancelled`] unless the answer was
            /// already produced.
            pub fn cancel(&self) {
                self.token.cancel();
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                // A handle dropped without being waited on withdraws the
                // query: queued requests are discarded at dequeue and
                // in-flight solves stop at the next expansion boundary.
                if self.reply.is_some() {
                    self.token.cancel();
                }
            }
        }
    };
}

impl_handle!(
    /// A handle to an in-flight full SSSP query. Dropping it without
    /// waiting cancels the query.
    QueryHandle,
    Vec<Dist>
);
impl_handle!(
    /// A handle to an in-flight point-to-point query. Dropping it
    /// without waiting cancels the query.
    TargetHandle,
    Dist
);

/// Live service counters and histograms. All updates are relaxed; read
/// them individually or atomically-enough via
/// [`snapshot`](ServiceMetrics::snapshot).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    served_full: Counter,
    served_target: Counter,
    served_batch: Counter,
    rejected_overload: Counter,
    rejected_deadline: Counter,
    rejected_shutdown: Counter,
    rejected_input: Counter,
    cancelled: Counter,
    requests_lost: Counter,
    shed: Counter,
    workers_restarted: Counter,
    queue_depth: Counter,
    inflight: Counter,
    latency_us: AtomicLog2Histogram,
    queue_wait_us: AtomicLog2Histogram,
}

impl ServiceMetrics {
    /// Full queries answered.
    pub fn served_full(&self) -> u64 {
        self.served_full.get()
    }

    /// Targeted queries answered.
    pub fn served_target(&self) -> u64 {
        self.served_target.get()
    }

    /// Batch-member queries answered (one per source per batch).
    pub fn served_batch(&self) -> u64 {
        self.served_batch.get()
    }

    /// Requests refused at admission because the queue was full.
    pub fn rejected_overload(&self) -> u64 {
        self.rejected_overload.get()
    }

    /// Requests whose deadline passed before an answer was produced.
    pub fn rejected_deadline(&self) -> u64 {
        self.rejected_deadline.get()
    }

    /// Requests refused or abandoned because the service shut down.
    pub fn rejected_shutdown(&self) -> u64 {
        self.rejected_shutdown.get()
    }

    /// Requests refused because they were malformed (e.g. an
    /// out-of-range source).
    pub fn rejected_input(&self) -> u64 {
        self.rejected_input.get()
    }

    /// Queries cancelled by their holder (dropped or cancelled handles).
    pub fn cancelled(&self) -> u64 {
        self.cancelled.get()
    }

    /// Requests whose worker panicked mid-flight; each resolved to
    /// [`ServiceError::WorkerLost`], never silently dropped.
    pub fn requests_lost(&self) -> u64 {
        self.requests_lost.get()
    }

    /// Queued requests evicted by the load-shedding policy.
    pub fn shed(&self) -> u64 {
        self.shed.get()
    }

    /// Workers respawned after a panic; the pool is back at full
    /// strength once the counter stops moving.
    pub fn workers_restarted(&self) -> u64 {
        self.workers_restarted.get()
    }

    /// Requests currently sitting in the queue (gauge).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get()
    }

    /// Requests currently being solved (gauge).
    pub fn inflight(&self) -> u64 {
        self.inflight.get()
    }

    /// End-to-end latency (enqueue to answer) of served queries, in
    /// microseconds.
    pub fn latency_us(&self) -> Log2Histogram {
        self.latency_us.snapshot()
    }

    /// Time served queries spent queued before a worker picked them up,
    /// in microseconds.
    pub fn queue_wait_us(&self) -> Log2Histogram {
        self.queue_wait_us.snapshot()
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            served_full: self.served_full(),
            served_target: self.served_target(),
            served_batch: self.served_batch(),
            rejected_overload: self.rejected_overload(),
            rejected_deadline: self.rejected_deadline(),
            rejected_shutdown: self.rejected_shutdown(),
            rejected_input: self.rejected_input(),
            cancelled: self.cancelled(),
            requests_lost: self.requests_lost(),
            shed: self.shed(),
            workers_restarted: self.workers_restarted(),
            queue_depth: self.queue_depth(),
            inflight: self.inflight(),
            latency_us: self.latency_us(),
            queue_wait_us: self.queue_wait_us(),
        }
    }

    /// Records a terminal rejection against the matching counter.
    fn note_failure(&self, err: &ServiceError) {
        match err {
            ServiceError::Overloaded { .. } => self.rejected_overload.bump(),
            ServiceError::DeadlineExceeded => self.rejected_deadline.bump(),
            ServiceError::ShutDown => self.rejected_shutdown.bump(),
            ServiceError::Cancelled => self.cancelled.bump(),
            ServiceError::WorkerLost => self.requests_lost.bump(),
            ServiceError::Shed => self.shed.bump(),
            ServiceError::Input(_) => self.rejected_input.bump(),
        }
    }
}

/// A point-in-time copy of [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Full queries answered.
    pub served_full: u64,
    /// Targeted queries answered.
    pub served_target: u64,
    /// Batch-member queries answered.
    pub served_batch: u64,
    /// Requests refused at admission because the queue was full.
    pub rejected_overload: u64,
    /// Requests whose deadline passed before an answer was produced.
    pub rejected_deadline: u64,
    /// Requests refused or abandoned because the service shut down.
    pub rejected_shutdown: u64,
    /// Malformed requests.
    pub rejected_input: u64,
    /// Queries cancelled by their holder.
    pub cancelled: u64,
    /// Requests lost to a worker panic (resolved [`ServiceError::WorkerLost`]).
    pub requests_lost: u64,
    /// Queued requests evicted by the load-shedding policy.
    pub shed: u64,
    /// Workers respawned after a panic.
    pub workers_restarted: u64,
    /// Requests queued at snapshot time (gauge).
    pub queue_depth: u64,
    /// Requests being solved at snapshot time (gauge).
    pub inflight: u64,
    /// End-to-end latency of served queries (µs).
    pub latency_us: Log2Histogram,
    /// Queue wait of dequeued requests (µs).
    pub queue_wait_us: Log2Histogram,
}

impl MetricsSnapshot {
    /// Queries answered, of any kind.
    pub fn served_total(&self) -> u64 {
        self.served_full + self.served_target + self.served_batch
    }

    /// Requests that terminated without an answer, for any reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_overload
            + self.rejected_deadline
            + self.rejected_shutdown
            + self.rejected_input
            + self.cancelled
            + self.requests_lost
            + self.shed
    }

    /// Renders the snapshot as a JSON object (histograms included).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"served_full\":{},\"served_target\":{},",
                "\"served_batch\":{},",
                "\"rejected_overload\":{},\"rejected_deadline\":{},",
                "\"rejected_shutdown\":{},\"rejected_input\":{},",
                "\"cancelled\":{},\"requests_lost\":{},\"shed\":{},",
                "\"workers_restarted\":{},",
                "\"queue_depth\":{},\"inflight\":{},",
                "\"latency_us\":{},\"queue_wait_us\":{}}}"
            ),
            self.served_full,
            self.served_target,
            self.served_batch,
            self.rejected_overload,
            self.rejected_deadline,
            self.rejected_shutdown,
            self.rejected_input,
            self.cancelled,
            self.requests_lost,
            self.shed,
            self.workers_restarted,
            self.queue_depth,
            self.inflight,
            self.latency_us.to_json(),
            self.queue_wait_us.to_json(),
        )
    }
}

/// How [`QueryService::shutdown`] treats outstanding work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admission, answer everything already queued, then stop.
    Drain,
    /// Stop admission and abandon queued and in-flight queries: their
    /// handles resolve to [`ServiceError::ShutDown`] promptly (in-flight
    /// solves stop at the next bucket-expansion boundary).
    Abort,
}

/// What the service does with an arriving request when the bounded queue
/// is already full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the arriving request: `try_submit` reports
    /// [`ServiceError::Overloaded`], blocking `submit` waits for room.
    /// The default — exactly the pre-shedding behaviour.
    #[default]
    RejectNewest,
    /// Evict queued requests that are already dead — deadline passed,
    /// handle dropped, or service aborting — oldest first, to admit the
    /// arriving one. Evicted requests resolve to [`ServiceError::Shed`].
    /// When nothing is evictable this degrades to [`RejectNewest`](Self::RejectNewest).
    RejectOldestExpired,
}

/// Builder for [`QueryService`]; obtained from [`QueryService::builder`].
#[derive(Debug, Clone)]
pub struct QueryServiceBuilder {
    workers: Option<usize>,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    layout: LayoutKind,
    shed_policy: ShedPolicy,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for QueryServiceBuilder {
    fn default() -> Self {
        Self {
            workers: None,
            queue_capacity: 1024,
            default_deadline: None,
            layout: LayoutKind::Natural,
            shed_policy: ShedPolicy::default(),
            fault_plan: None,
        }
    }
}

impl QueryServiceBuilder {
    /// Sets the number of resident worker threads. Defaults to the
    /// hardware thread count. `0` is allowed and spawns no workers —
    /// requests queue up to capacity without being answered, which is
    /// useful for admission-control tests and staged startup.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the bounded request-queue capacity (clamped to at least 1;
    /// default 1024). When the queue is full, `try_submit` returns
    /// [`ServiceError::Overloaded`] and blocking `submit` waits.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets a deadline applied to every request that does not carry its
    /// own. Default: none.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the memory layout the service solves on (default
    /// [`LayoutKind::Natural`]). A non-natural layout relabels the graph
    /// and hierarchy once at build time; every query then runs on the
    /// permuted structures and pays one O(n) scatter to answer in original
    /// vertex ids — callers never see internal ids.
    pub fn layout(mut self, layout: LayoutKind) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the overload policy applied at enqueue when the bounded
    /// queue is full (default [`ShedPolicy::RejectNewest`]).
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Installs a fault-injection plan observed by every worker — the
    /// chaos suite's hook. Default: none, costing one `Option` branch
    /// per injection site.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Spawns the workers and starts the service.
    ///
    /// Fails with [`ServiceError::Input`] when the hierarchy was built
    /// for a different graph.
    pub fn build(
        self,
        graph: Arc<CsrGraph>,
        ch: Arc<ComponentHierarchy>,
    ) -> Result<QueryService, ServiceError> {
        let graph_n = graph.n();
        let layout =
            Arc::new(GraphLayout::build(self.layout, graph, ch).map_err(ServiceError::Input)?);
        let worker_count = self.workers.unwrap_or_else(mmt_platform::available_threads);
        let queue = Arc::new(ShedQueue::new(self.queue_capacity));
        let metrics = Arc::new(ServiceMetrics::default());
        let abort = Arc::new(AtomicBool::new(false));
        let distances = DistancePool::new();
        let workers = (0..worker_count)
            .map(|i| {
                let shared = WorkerShared {
                    layout: Arc::clone(&layout),
                    queue: Arc::clone(&queue),
                    metrics: Arc::clone(&metrics),
                    distances: distances.clone(),
                    faults: self.fault_plan.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("mmt-query-{i}"))
                    .spawn(move || worker_thread(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        let queue_capacity = queue.capacity();
        Ok(QueryService {
            queue,
            workers: Mutex::new(workers),
            metrics,
            abort,
            distances,
            layout,
            graph_n,
            queue_capacity,
            default_deadline: self.default_deadline,
            worker_count,
            shed_policy: self.shed_policy,
        })
    }
}

/// The running service. Dropping it drains outstanding queries and joins
/// the workers (equivalent to [`shutdown(Drain)`](QueryService::shutdown)).
pub struct QueryService {
    queue: Arc<ShedQueue<Request>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    metrics: Arc<ServiceMetrics>,
    abort: Arc<AtomicBool>,
    distances: DistancePool,
    layout: Arc<GraphLayout>,
    graph_n: usize,
    queue_capacity: usize,
    default_deadline: Option<Duration>,
    worker_count: usize,
    shed_policy: ShedPolicy,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("workers", &self.worker_count)
            .field("queue_capacity", &self.queue_capacity)
            .field("default_deadline", &self.default_deadline)
            .field("layout", &self.layout.kind())
            .field("shed_policy", &self.shed_policy)
            .finish_non_exhaustive()
    }
}

impl QueryService {
    /// Starts configuring a service; finish with
    /// [`build`](QueryServiceBuilder::build).
    pub fn builder() -> QueryServiceBuilder {
        QueryServiceBuilder::default()
    }

    /// Enqueues a full SSSP query, blocking while the queue is full.
    pub fn submit(&self, source: VertexId) -> Result<QueryHandle, ServiceError> {
        self.submit_full(source, None, true)
    }

    /// Enqueues a full SSSP query without blocking: a full queue is
    /// reported as [`ServiceError::Overloaded`].
    pub fn try_submit(&self, source: VertexId) -> Result<QueryHandle, ServiceError> {
        self.submit_full(source, None, false)
    }

    /// As [`submit`](Self::submit) with a per-request deadline
    /// (overriding the builder's default).
    pub fn submit_with_deadline(
        &self,
        source: VertexId,
        deadline: Duration,
    ) -> Result<QueryHandle, ServiceError> {
        self.submit_full(source, Some(deadline), true)
    }

    /// As [`try_submit`](Self::try_submit) with a per-request deadline.
    pub fn try_submit_with_deadline(
        &self,
        source: VertexId,
        deadline: Duration,
    ) -> Result<QueryHandle, ServiceError> {
        self.submit_full(source, Some(deadline), false)
    }

    /// Enqueues a point-to-point query (early-terminating), blocking
    /// while the queue is full.
    pub fn submit_target(
        &self,
        source: VertexId,
        target: VertexId,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_p2p(source, target, None, true)
    }

    /// Non-blocking [`submit_target`](Self::submit_target).
    pub fn try_submit_target(
        &self,
        source: VertexId,
        target: VertexId,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_p2p(source, target, None, false)
    }

    /// As [`submit_target`](Self::submit_target) with a per-request
    /// deadline.
    pub fn submit_target_with_deadline(
        &self,
        source: VertexId,
        target: VertexId,
        deadline: Duration,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_p2p(source, target, Some(deadline), true)
    }

    /// Non-blocking [`submit_target_with_deadline`](Self::submit_target_with_deadline).
    pub fn try_submit_target_with_deadline(
        &self,
        source: VertexId,
        target: VertexId,
        deadline: Duration,
    ) -> Result<TargetHandle, ServiceError> {
        self.submit_p2p(source, target, Some(deadline), false)
    }

    /// Enqueues one full SSSP query per source as a single batch, blocking
    /// while the queue is full. The whole batch shares one cancellation
    /// token (cancelling the handle cancels every unanswered member) and
    /// one completion signal; answers come back as pooled buffers, so a
    /// steady stream of batches stops allocating result vectors once the
    /// service's pool is warm.
    ///
    /// Any out-of-range source rejects the whole batch up front — nothing
    /// is enqueued.
    pub fn submit_batch(&self, sources: &[VertexId]) -> Result<BatchHandle, ServiceError> {
        self.submit_batch_inner(sources, None)
    }

    /// As [`submit_batch`](Self::submit_batch) with a deadline applied to
    /// every member (overriding the builder's default).
    pub fn submit_batch_with_deadline(
        &self,
        sources: &[VertexId],
        deadline: Duration,
    ) -> Result<BatchHandle, ServiceError> {
        self.submit_batch_inner(sources, Some(deadline))
    }

    fn submit_batch_inner(
        &self,
        sources: &[VertexId],
        deadline: Option<Duration>,
    ) -> Result<BatchHandle, ServiceError> {
        for &s in sources {
            self.check_vertex(s, /*is_source=*/ true)?;
        }
        let token = self.make_token(deadline);
        let (done_tx, done_rx) = bounded(1);
        let collector = Arc::new(BatchCollector {
            slots: Mutex::new((0..sources.len()).map(|_| None).collect()),
            remaining: AtomicUsize::new(sources.len()),
            done: done_tx,
            metrics: Arc::clone(&self.metrics),
        });
        if sources.is_empty() {
            let _ = collector.done.send(());
        }
        // Member metrics are recorded exclusively by the collector, so an
        // enqueue failure just drops the member guard — the slot resolves
        // to ShutDown and is counted exactly once.
        for (slot, &source) in sources.iter().enumerate() {
            let member = BatchMember::new(Arc::clone(&collector), slot);
            let request = Request::Batch {
                source,
                member,
                token: token.clone(),
                enqueued: Instant::now(),
            };
            let expired = |r: &Request| r.token().is_cancelled();
            let evictable: Option<&dyn Fn(&Request) -> bool> = match self.shed_policy {
                ShedPolicy::RejectNewest => None,
                ShedPolicy::RejectOldestExpired => Some(&expired),
            };
            match self.queue.push(request, /*block=*/ true, evictable) {
                Ok(shed) => {
                    self.metrics.queue_depth.bump();
                    self.resolve_shed(shed);
                }
                // A blocking push only fails once the queue has closed;
                // dropping the request fires the member's ShutDown guard.
                Err(PushRejected::Closed(request)) | Err(PushRejected::Full(request)) => {
                    drop(request)
                }
            }
        }
        Ok(BatchHandle {
            done: Some(done_rx),
            collector,
            token,
        })
    }

    /// Result-distance buffers the service has ever allocated. Flat across
    /// a window of batches ⇒ that window served every answer from the pool.
    pub fn distance_buffers_created(&self) -> usize {
        self.distances.created()
    }

    /// Live metrics: served/rejected counters, queue-depth and inflight
    /// gauges, latency and queue-wait histograms.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// The memory layout this service solves on. Whatever it is, every
    /// submitted source and every answered distance vector uses original
    /// vertex ids.
    pub fn layout(&self) -> LayoutKind {
        self.layout.kind()
    }

    /// The bounded queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The deadline applied to requests that do not carry their own.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// Stops the service. Idempotent; safe to call from any thread.
    ///
    /// [`ShutdownMode::Drain`] answers everything already admitted, then
    /// joins the workers. [`ShutdownMode::Abort`] additionally flips the
    /// service-wide abort flag that every request token observes, so
    /// queued queries are discarded and in-flight solves stop at their
    /// next bucket-expansion boundary; abandoned handles resolve to
    /// [`ServiceError::ShutDown`].
    pub fn shutdown(&self, mode: ShutdownMode) {
        if mode == ShutdownMode::Abort {
            self.abort.store(true, Ordering::Release);
        }
        // Closing admission lets workers drain what was admitted and exit.
        self.queue.close();
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // Zero-worker services (and aborted ones racing their workers'
        // exit) may leave requests queued after the join; discard them so
        // their handles resolve to ShutDown promptly rather than waiting
        // for the queue Arc to die with the last service clone.
        for req in self.queue.drain_now() {
            self.metrics.queue_depth.sub(1);
            drop(req);
        }
    }

    /// The overload policy applied at enqueue when the queue is full.
    pub fn shed_policy(&self) -> ShedPolicy {
        self.shed_policy
    }

    fn submit_full(
        &self,
        source: VertexId,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> Result<QueryHandle, ServiceError> {
        self.check_vertex(source, /*is_source=*/ true)?;
        let token = self.make_token(deadline);
        let (reply_tx, reply_rx) = bounded(1);
        self.enqueue(
            Request::Full {
                source,
                reply: reply_tx,
                token: token.clone(),
                enqueued: Instant::now(),
            },
            blocking,
        )?;
        Ok(QueryHandle {
            reply: Some(reply_rx),
            token,
        })
    }

    fn submit_p2p(
        &self,
        source: VertexId,
        target: VertexId,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> Result<TargetHandle, ServiceError> {
        self.check_vertex(source, true)?;
        self.check_vertex(target, false)?;
        let token = self.make_token(deadline);
        let (reply_tx, reply_rx) = bounded(1);
        self.enqueue(
            Request::Target {
                source,
                target,
                reply: reply_tx,
                token: token.clone(),
                enqueued: Instant::now(),
            },
            blocking,
        )?;
        Ok(TargetHandle {
            reply: Some(reply_rx),
            token,
        })
    }

    fn check_vertex(&self, v: VertexId, is_source: bool) -> Result<(), ServiceError> {
        if (v as usize) < self.graph_n {
            return Ok(());
        }
        let err = ServiceError::Input(if is_source {
            InputError::SourceOutOfRange {
                source: v,
                n: self.graph_n,
            }
        } else {
            InputError::TargetOutOfRange {
                target: v,
                n: self.graph_n,
            }
        });
        self.metrics.note_failure(&err);
        Err(err)
    }

    fn make_token(&self, deadline: Option<Duration>) -> CancelToken {
        let token = match deadline.or(self.default_deadline) {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        token.linked_to(Arc::clone(&self.abort))
    }

    fn enqueue(&self, request: Request, blocking: bool) -> Result<(), ServiceError> {
        let expired = |r: &Request| r.token().is_cancelled();
        let evictable: Option<&dyn Fn(&Request) -> bool> = match self.shed_policy {
            ShedPolicy::RejectNewest => None,
            ShedPolicy::RejectOldestExpired => Some(&expired),
        };
        match self.queue.push(request, blocking, evictable) {
            Ok(shed) => {
                self.metrics.queue_depth.bump();
                self.resolve_shed(shed);
                Ok(())
            }
            Err(PushRejected::Full(_)) => {
                let e = ServiceError::Overloaded {
                    capacity: self.queue_capacity,
                };
                self.metrics.note_failure(&e);
                Err(e)
            }
            Err(PushRejected::Closed(_)) => {
                self.metrics.note_failure(&ServiceError::ShutDown);
                Err(ServiceError::ShutDown)
            }
        }
    }

    /// Resolves requests evicted by the shedding policy: each fails loudly
    /// with [`ServiceError::Shed`] — never its (already-expired) token
    /// error, so the shed counter alone accounts for every eviction.
    fn resolve_shed(&self, shed: Vec<Request>) {
        for victim in shed {
            self.metrics.queue_depth.sub(1);
            resolve_request(victim, ServiceError::Shed, &self.metrics);
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown(ShutdownMode::Drain);
    }
}

/// Maps a token's state to the error its holder should see, if any.
/// Shutdown outranks explicit cancellation outranks deadline expiry.
fn token_failure(token: &CancelToken) -> Option<ServiceError> {
    if token.linked_flag_set() {
        Some(ServiceError::ShutDown)
    } else if token.explicitly_cancelled() {
        Some(ServiceError::Cancelled)
    } else if token.deadline_expired() {
        Some(ServiceError::DeadlineExceeded)
    } else {
        None
    }
}

/// Everything one worker needs; cloned per worker at build time and reused
/// across respawns, so a restarted worker rejoins the same queue, metrics,
/// and buffer pool.
struct WorkerShared {
    layout: Arc<GraphLayout>,
    queue: Arc<ShedQueue<Request>>,
    metrics: Arc<ServiceMetrics>,
    distances: DistancePool,
    faults: Option<Arc<FaultPlan>>,
}

/// How one `worker_loop` incarnation ended.
enum WorkerExit {
    /// The queue closed and drained; the service is shutting down.
    Drained,
    /// A panic was caught mid-request; the in-flight request has already
    /// been resolved to [`ServiceError::WorkerLost`].
    Poisoned,
}

/// The worker supervisor: runs [`worker_loop`] incarnations until the
/// queue drains, respawning (in-thread, with a fresh solver and instance —
/// per-query state a panic may have corrupted) after every caught panic.
/// The pool therefore returns to full strength without growing new OS
/// threads, and a panic storm cannot deadlock the bounded queue.
fn worker_thread(shared: &WorkerShared) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared))) {
            Ok(WorkerExit::Drained) => break,
            Ok(WorkerExit::Poisoned) | Err(_) => shared.metrics.workers_restarted.bump(),
        }
    }
}

/// Resolves `req` with `err`: counts it (batch members count through their
/// collector) and delivers the typed error to the waiting handle.
fn resolve_request(req: Request, err: ServiceError, metrics: &ServiceMetrics) {
    match req {
        Request::Full { reply, .. } => {
            metrics.note_failure(&err);
            drop(reply.send(Err(err)));
        }
        Request::Target { reply, .. } => {
            metrics.note_failure(&err);
            drop(reply.send(Err(err)));
        }
        Request::Batch { member, .. } => member.fulfil(Err(err)),
    }
}

/// One `Option` branch when no plan is installed — the production cost of
/// the whole injection apparatus.
#[inline]
fn fire_fault(plan: &Option<Arc<FaultPlan>>, site: FaultSite) {
    if let Some(plan) = plan {
        plan.fire(site);
    }
}

fn worker_loop(shared: &WorkerShared) -> WorkerExit {
    let layout: &GraphLayout = &shared.layout;
    let metrics: &ServiceMetrics = &shared.metrics;
    let ch: &ComponentHierarchy = layout.hierarchy();
    // Workers solve serially: the service's parallelism is across queries.
    // All solving happens in the layout's internal id space; ids are
    // translated at this loop's edges only.
    let solver = ThorupSolver::new(layout.graph(), ch).with_config(ThorupConfig::serial());
    let inst = ThorupInstance::new(ch);
    // Holds internal-order distances long enough to scatter them out; only
    // non-natural layouts touch it.
    let mut internal_buf: Vec<Dist> = Vec::new();
    while let Some(req) = shared.queue.pop() {
        metrics.queue_depth.sub(1);
        metrics
            .queue_wait_us
            .record(req.enqueued().elapsed().as_micros() as u64);
        // The dequeue fault site fires while we hold the request, so a
        // panic here is indistinguishable from one in the bookkeeping
        // between dequeue and solve: the request resolves to WorkerLost.
        if catch_unwind(AssertUnwindSafe(|| {
            fire_fault(&shared.faults, FaultSite::Dequeue)
        }))
        .is_err()
        {
            resolve_request(req, ServiceError::WorkerLost, metrics);
            return WorkerExit::Poisoned;
        }
        // Deadline/cancellation/shutdown enforcement at dequeue: expired
        // work is discarded without touching the solver. Batch-member
        // metrics are the collector's job — the others are recorded here.
        if let Some(err) = token_failure(req.token()) {
            resolve_request(req, err, metrics);
            continue;
        }
        // Metrics (including the inflight decrement) are settled BEFORE
        // the reply is sent, so a client that has seen its answer also
        // sees a snapshot that accounts for it.
        //
        // Each solve runs under `catch_unwind` with the reply capability
        // held OUTSIDE the closure: a panicking solve (injected or real)
        // cannot take the reply channel down with it, so the client sees
        // a typed `WorkerLost`, never a silent disconnect.
        metrics.inflight.bump();
        match req {
            Request::Full {
                source,
                reply,
                token,
                enqueued,
            } => {
                let solve = catch_unwind(AssertUnwindSafe(|| {
                    fire_fault(&shared.faults, FaultSite::Solve);
                    inst.reset(ch);
                    let internal_source = layout.to_internal(source);
                    let result = if solver.solve_into_with_cancel(&inst, internal_source, &token) {
                        if layout.permutation().is_some() {
                            inst.copy_distances_into(&mut internal_buf);
                            let mut out = Vec::with_capacity(internal_buf.len());
                            layout.scatter_into(&internal_buf, &mut out);
                            Ok(out)
                        } else {
                            Ok(inst.distances())
                        }
                    } else {
                        Err(token_failure(&token).unwrap_or(ServiceError::Cancelled))
                    };
                    fire_fault(&shared.faults, FaultSite::Reply);
                    result
                }));
                let Ok(result) = solve else {
                    metrics.note_failure(&ServiceError::WorkerLost);
                    metrics.inflight.sub(1);
                    drop(reply.send(Err(ServiceError::WorkerLost)));
                    return WorkerExit::Poisoned;
                };
                match &result {
                    Ok(_) => {
                        metrics.served_full.bump();
                        metrics
                            .latency_us
                            .record(enqueued.elapsed().as_micros() as u64);
                    }
                    Err(e) => metrics.note_failure(e),
                }
                metrics.inflight.sub(1);
                let _ = reply.send(result);
            }
            Request::Target {
                source,
                target,
                reply,
                token,
                enqueued,
            } => {
                let solve = catch_unwind(AssertUnwindSafe(|| {
                    fire_fault(&shared.faults, FaultSite::Solve);
                    inst.reset(ch);
                    let result = match solver.solve_target_with_cancel(
                        &inst,
                        layout.to_internal(source),
                        layout.to_internal(target),
                        &token,
                    ) {
                        // A distance is layout-invariant: only ids move.
                        Some(d) => Ok(d),
                        None => Err(token_failure(&token).unwrap_or(ServiceError::Cancelled)),
                    };
                    fire_fault(&shared.faults, FaultSite::Reply);
                    result
                }));
                let Ok(result) = solve else {
                    metrics.note_failure(&ServiceError::WorkerLost);
                    metrics.inflight.sub(1);
                    drop(reply.send(Err(ServiceError::WorkerLost)));
                    return WorkerExit::Poisoned;
                };
                match &result {
                    Ok(_) => {
                        metrics.served_target.bump();
                        metrics
                            .latency_us
                            .record(enqueued.elapsed().as_micros() as u64);
                    }
                    Err(e) => metrics.note_failure(e),
                }
                metrics.inflight.sub(1);
                let _ = reply.send(result);
            }
            Request::Batch {
                source,
                member,
                token,
                enqueued,
            } => {
                let solve = catch_unwind(AssertUnwindSafe(|| {
                    fire_fault(&shared.faults, FaultSite::Solve);
                    inst.reset(ch);
                    let internal_source = layout.to_internal(source);
                    let result = if solver.solve_into_with_cancel(&inst, internal_source, &token) {
                        let mut buf = shared.distances.acquire();
                        if layout.permutation().is_some() {
                            inst.copy_distances_into(&mut internal_buf);
                            layout.scatter_into(&internal_buf, &mut buf);
                        } else {
                            inst.copy_distances_into(&mut buf);
                        }
                        Ok(shared.distances.wrap(buf))
                    } else {
                        Err(token_failure(&token).unwrap_or(ServiceError::Cancelled))
                    };
                    fire_fault(&shared.faults, FaultSite::Reply);
                    result
                }));
                let Ok(result) = solve else {
                    metrics.inflight.sub(1);
                    member.fulfil(Err(ServiceError::WorkerLost));
                    return WorkerExit::Poisoned;
                };
                if result.is_ok() {
                    metrics
                        .latency_us
                        .record(enqueued.elapsed().as_micros() as u64);
                }
                metrics.inflight.sub(1);
                member.fulfil(result);
            }
        }
    }
    WorkerExit::Drained
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InputError;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn fixture(log_n: u32) -> (Arc<CsrGraph>, Arc<ComponentHierarchy>) {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, 6);
        spec.seed = 5;
        let el = spec.generate();
        (
            Arc::new(CsrGraph::from_edge_list(&el)),
            Arc::new(build_serial(&el, ChMode::Collapsed)),
        )
    }

    fn service(log_n: u32, workers: usize) -> (Arc<CsrGraph>, QueryService) {
        let (g, ch) = fixture(log_n);
        let svc = QueryService::builder()
            .workers(workers)
            .build(Arc::clone(&g), ch)
            .unwrap();
        (g, svc)
    }

    #[test]
    fn serves_correct_answers() {
        let (g, service) = service(8, 3);
        assert_eq!(service.workers(), 3);
        let handles: Vec<_> = (0..20u32)
            .map(|s| (s, service.submit(s % 64).unwrap()))
            .collect();
        for (i, (s, h)) in handles.into_iter().enumerate() {
            let got = h.wait().unwrap();
            assert_eq!(got, mmt_baselines::dijkstra(&g, s % 64), "request {i}");
        }
        assert_eq!(service.metrics().served_full(), 20);
        let snap = service.metrics().snapshot();
        assert_eq!(snap.served_total(), 20);
        assert_eq!(snap.rejected_total(), 0);
        assert_eq!(snap.latency_us.total(), 20);
        assert_eq!(snap.queue_wait_us.total(), 20);
    }

    #[test]
    fn targeted_queries_served() {
        let (g, service) = service(8, 2);
        let oracle = mmt_baselines::dijkstra(&g, 7);
        let handles: Vec<_> = (0..10u32)
            .map(|t| (t * 13, service.submit_target(7, t * 13).unwrap()))
            .collect();
        for (t, h) in handles {
            assert_eq!(h.wait().unwrap(), oracle[t as usize]);
        }
        assert_eq!(service.metrics().served_target(), 10);
    }

    #[test]
    fn concurrent_clients() {
        let (g, service) = service(8, 4);
        let service = Arc::new(service);
        let oracle = mmt_baselines::dijkstra(&g, 0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let service = Arc::clone(&service);
                let oracle = &oracle;
                s.spawn(move || {
                    for _ in 0..5 {
                        let d = service.submit(0).unwrap().wait().unwrap();
                        assert_eq!(&d, oracle);
                    }
                });
            }
        });
        assert_eq!(service.metrics().served_full(), 30);
    }

    #[test]
    fn drop_joins_cleanly_with_queued_work() {
        let (_g, service) = service(9, 1);
        // Enqueue, keep the handles, drop the service first: drain-mode
        // shutdown answers both before the worker exits.
        let h1 = service.submit(0).unwrap();
        let h2 = service.submit(1).unwrap();
        drop(service);
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
    }

    #[test]
    fn figure_one_answers() {
        let el = shapes::figure_one();
        let g = Arc::new(CsrGraph::from_edge_list(&el));
        let ch = Arc::new(build_serial(&el, ChMode::Collapsed));
        let service = QueryService::builder().workers(2).build(g, ch).unwrap();
        assert_eq!(
            service.submit(0).unwrap().wait().unwrap(),
            vec![0, 1, 1, 9, 10, 10]
        );
        assert_eq!(service.submit_target(0, 4).unwrap().wait().unwrap(), 10);
    }

    #[test]
    fn mismatched_hierarchy_is_a_typed_error() {
        let (g, _) = fixture(6);
        let other = shapes::figure_one();
        let ch = Arc::new(build_serial(&other, ChMode::Collapsed));
        let err = QueryService::builder().build(g, ch).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Input(InputError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn out_of_range_queries_are_typed_errors() {
        let (g, service) = service(6, 1);
        let n = g.n();
        let bad = n as VertexId;
        assert!(matches!(
            service.submit(bad),
            Err(ServiceError::Input(InputError::SourceOutOfRange { .. }))
        ));
        assert!(matches!(
            service.submit_target(0, bad),
            Err(ServiceError::Input(InputError::TargetOutOfRange { .. }))
        ));
        assert_eq!(service.metrics().rejected_input(), 2);
    }

    #[test]
    fn queue_full_rejects_without_blocking() {
        // Zero workers: nothing drains the queue, so admission control is
        // exercised deterministically.
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(2)
            .build(g, ch)
            .unwrap();
        let h1 = service.try_submit(0).unwrap();
        let h2 = service.try_submit(1).unwrap();
        let err = service.try_submit(2).unwrap_err();
        assert_eq!(err, ServiceError::Overloaded { capacity: 2 });
        assert_eq!(service.metrics().rejected_overload(), 1);
        assert_eq!(service.metrics().queue_depth(), 2);
        // Dropping the service abandons the queued work; the held handles
        // resolve to ShutDown rather than hanging.
        drop(service);
        assert_eq!(h1.wait().unwrap_err(), ServiceError::ShutDown);
        assert_eq!(h2.wait().unwrap_err(), ServiceError::ShutDown);
    }

    #[test]
    fn expired_deadline_is_enforced_at_dequeue() {
        let (_g, service) = service(8, 1);
        let h = service.submit_with_deadline(0, Duration::ZERO).unwrap();
        assert_eq!(h.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        let ht = service
            .submit_target_with_deadline(0, 5, Duration::ZERO)
            .unwrap();
        assert_eq!(ht.wait().unwrap_err(), ServiceError::DeadlineExceeded);
        assert_eq!(service.metrics().rejected_deadline(), 2);
        assert_eq!(service.metrics().served_full(), 0);
        // The worker is still healthy afterwards.
        assert!(service.submit(0).unwrap().wait().is_ok());
    }

    #[test]
    fn dropped_handle_cancels_query() {
        // One worker and a graph big enough that the solve cannot finish
        // in the instants before the drop lands: whether the cancellation
        // is observed at dequeue or mid-solve, the query must terminate
        // as Cancelled and the worker must move on.
        let (_g, service) = service(13, 1);
        let big = service.submit(0).unwrap();
        drop(big); // cancels
        let marker = service.submit(1).unwrap();
        assert!(marker.wait().is_ok());
        assert_eq!(service.metrics().cancelled(), 1);
        assert_eq!(service.metrics().served_full(), 1);
    }

    #[test]
    fn explicit_cancel_then_wait_reports_cancelled() {
        // Queue behind a zero-worker service so the cancel deterministically
        // precedes any solving; then let a worker... none exist, so instead
        // verify the queued-token path via drop-based shutdown ordering.
        let (g, ch) = fixture(7);
        let service = QueryService::builder()
            .workers(1)
            .queue_capacity(8)
            .build(g, ch)
            .unwrap();
        let h = service.submit(0).unwrap();
        h.cancel();
        // Either the worker saw the cancellation (Cancelled) or it had
        // already produced the answer (Ok) — both are legal; what must
        // never happen is a hang or a panic.
        match h.wait() {
            Ok(_) | Err(ServiceError::Cancelled) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn shutdown_abort_abandons_queued_work() {
        let (_g, service) = service(10, 1);
        let handles: Vec<_> = (0..6u32).map(|s| service.submit(s).unwrap()).collect();
        service.shutdown(ShutdownMode::Abort);
        let mut served = 0u64;
        let mut shut_down = 0u64;
        for h in handles {
            match h.wait() {
                Ok(_) => served += 1,
                Err(ServiceError::ShutDown) => shut_down += 1,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        assert_eq!(served + shut_down, 6);
        assert!(shut_down > 0, "abort must abandon queued work");
        let snap = service.metrics().snapshot();
        assert_eq!(snap.served_total() + snap.rejected_total(), 6);
        // Submission after shutdown is a typed error.
        assert_eq!(service.submit(0).unwrap_err(), ServiceError::ShutDown);
        // Idempotent.
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn shutdown_drain_answers_everything() {
        let (_g, service) = service(9, 2);
        let handles: Vec<_> = (0..8u32).map(|s| service.submit(s).unwrap()).collect();
        service.shutdown(ShutdownMode::Drain);
        for h in handles {
            assert!(h.wait().is_ok());
        }
        assert_eq!(service.metrics().served_full(), 8);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let (_g, service) = service(7, 1);
        service.submit(0).unwrap().wait().unwrap();
        let json = service.metrics().snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"served_full\":1"));
        assert!(json.contains("\"latency_us\":{\"total\":1"));
    }

    #[test]
    fn batch_answers_match_dijkstra_in_order() {
        let (g, service) = service(8, 3);
        let sources: Vec<u32> = (0..12u32).map(|i| i * 11 % 64).collect();
        let results = service.submit_batch(&sources).unwrap().wait();
        assert_eq!(results.len(), sources.len());
        for (i, (s, r)) in sources.iter().zip(&results).enumerate() {
            let got = r.as_ref().unwrap();
            assert_eq!(&got[..], &mmt_baselines::dijkstra(&g, *s)[..], "slot {i}");
        }
        assert_eq!(service.metrics().served_batch(), 12);
        assert_eq!(service.metrics().snapshot().served_total(), 12);
    }

    #[test]
    fn batch_steady_state_reuses_distance_buffers() {
        let (g, service) = service(7, 2);
        let sources: Vec<u32> = (0..8).collect();
        let want: Vec<Vec<Dist>> = sources
            .iter()
            .map(|&s| mmt_baselines::dijkstra(&g, s))
            .collect();
        // Warm-up: the pool grows to at most one buffer per in-flight
        // result (all batch results are held until `wait` returns).
        let rows = service.submit_batch(&sources).unwrap().wait();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
        }
        drop(rows); // every buffer returns to the pool
        let warm = service.distance_buffers_created();
        assert!(warm >= 1 && warm <= sources.len());
        for _ in 0..3 {
            let rows = service.submit_batch(&sources).unwrap().wait();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
            }
        }
        assert_eq!(
            service.distance_buffers_created(),
            warm,
            "steady-state batches must serve every answer from the pool"
        );
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let (_g, service) = service(6, 1);
        let results = service.submit_batch(&[]).unwrap().wait();
        assert!(results.is_empty());
        assert_eq!(service.metrics().served_batch(), 0);
    }

    #[test]
    fn batch_with_bad_source_is_rejected_whole() {
        let (g, service) = service(6, 1);
        let bad = g.n() as VertexId;
        let err = service.submit_batch(&[0, bad]).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Input(InputError::SourceOutOfRange { .. })
        ));
        assert_eq!(service.metrics().served_batch(), 0);
        assert_eq!(service.metrics().queue_depth(), 0, "nothing enqueued");
    }

    #[test]
    fn batch_expired_deadline_resolves_every_member() {
        let (_g, service) = service(8, 1);
        let handle = service
            .submit_batch_with_deadline(&[0, 1, 2], Duration::ZERO)
            .unwrap();
        let results = handle.wait();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(*r.as_ref().unwrap_err(), ServiceError::DeadlineExceeded);
        }
        assert_eq!(service.metrics().rejected_deadline(), 3);
        // The worker is still healthy afterwards.
        assert!(service.submit(0).unwrap().wait().is_ok());
    }

    #[test]
    fn batch_abandoned_by_shutdown_never_hangs() {
        let (g, ch) = fixture(7);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(16)
            .build(g, ch)
            .unwrap();
        let handle = service.submit_batch(&[0, 1, 2, 3]).unwrap();
        // No workers: the queued members are dropped with the service and
        // their slots resolve to ShutDown instead of leaving `wait` stuck.
        drop(service);
        let results = handle.wait();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(*r.as_ref().unwrap_err(), ServiceError::ShutDown);
        }
    }

    #[test]
    fn snapshot_json_includes_batch_counter() {
        let (_g, service) = service(6, 1);
        service.submit_batch(&[0, 1]).unwrap().wait();
        let json = service.metrics().snapshot().to_json();
        assert!(json.contains("\"served_batch\":2"), "{json}");
    }

    #[test]
    fn layout_services_answer_in_original_ids() {
        use crate::layout::LayoutKind;
        let (g, ch) = fixture(8);
        for kind in LayoutKind::all() {
            let service = QueryService::builder()
                .workers(2)
                .layout(kind)
                .build(Arc::clone(&g), Arc::clone(&ch))
                .unwrap();
            assert_eq!(service.layout(), kind);
            // Full query: distances come back indexed by original vertex.
            let want = mmt_baselines::dijkstra(&g, 5);
            assert_eq!(
                service.submit(5).unwrap().wait().unwrap(),
                want,
                "{}",
                kind.short_name()
            );
            // Targeted query: both endpoints are original ids.
            assert_eq!(
                service.submit_target(5, 40).unwrap().wait().unwrap(),
                want[40],
                "{}",
                kind.short_name()
            );
            // Batch: every row in original order.
            let sources = [0u32, 9, 31];
            let rows = service.submit_batch(&sources).unwrap().wait();
            for (s, r) in sources.iter().zip(&rows) {
                assert_eq!(
                    &r.as_ref().unwrap()[..],
                    &mmt_baselines::dijkstra(&g, *s)[..],
                    "{} source {s}",
                    kind.short_name()
                );
            }
        }
    }

    #[test]
    fn layout_batches_still_reuse_distance_buffers() {
        use crate::layout::LayoutKind;
        let (g, ch) = fixture(7);
        let service = QueryService::builder()
            .workers(2)
            .layout(LayoutKind::ChDfs)
            .build(Arc::clone(&g), ch)
            .unwrap();
        let sources: Vec<u32> = (0..8).collect();
        let want: Vec<Vec<Dist>> = sources
            .iter()
            .map(|&s| mmt_baselines::dijkstra(&g, s))
            .collect();
        let rows = service.submit_batch(&sources).unwrap().wait();
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
        }
        drop(rows);
        let warm = service.distance_buffers_created();
        for _ in 0..3 {
            let rows = service.submit_batch(&sources).unwrap().wait();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(&r.as_ref().unwrap()[..], &want[i][..]);
            }
        }
        assert_eq!(
            service.distance_buffers_created(),
            warm,
            "the scatter path must not defeat the buffer pool"
        );
    }

    #[test]
    fn wait_timeout_on_stalled_queue() {
        let (g, ch) = fixture(6);
        let service = QueryService::builder().workers(0).build(g, ch).unwrap();
        let h = service.try_submit(0).unwrap();
        assert_eq!(
            h.wait_timeout(Duration::from_millis(10)).unwrap_err(),
            ServiceError::DeadlineExceeded
        );
    }

    /// Keeps injected panics out of the test output while leaving genuine
    /// panics (including assertion failures on other test threads) on the
    /// default hook.
    fn silence_injected_panics() {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info
                    .payload()
                    .downcast_ref::<mmt_platform::InjectedPanic>()
                    .is_none()
                {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn shed_policy_evicts_expired_queued_requests() {
        // Zero workers: the queue fills deterministically. Two requests
        // with already-expired deadlines occupy it; a fresh submission
        // under RejectOldestExpired evicts both.
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(2)
            .shed_policy(ShedPolicy::RejectOldestExpired)
            .build(g, ch)
            .unwrap();
        assert_eq!(service.shed_policy(), ShedPolicy::RejectOldestExpired);
        let dead1 = service.try_submit_with_deadline(0, Duration::ZERO).unwrap();
        let dead2 = service.try_submit_with_deadline(1, Duration::ZERO).unwrap();
        let fresh = service.try_submit(2).unwrap();
        // The evicted requests fail loudly and typed — never by silence.
        assert_eq!(dead1.wait().unwrap_err(), ServiceError::Shed);
        assert_eq!(dead2.wait().unwrap_err(), ServiceError::Shed);
        assert_eq!(service.metrics().shed(), 2);
        assert_eq!(
            service.metrics().queue_depth(),
            1,
            "depth never exceeds capacity"
        );
        drop(fresh);
        drop(service);
    }

    #[test]
    fn shed_policy_with_nothing_evictable_still_rejects_newest() {
        let (g, ch) = fixture(6);
        let service = QueryService::builder()
            .workers(0)
            .queue_capacity(1)
            .shed_policy(ShedPolicy::RejectOldestExpired)
            .build(g, ch)
            .unwrap();
        let _live = service.try_submit(0).unwrap();
        // The queued request is healthy, so nothing is evictable and the
        // arriving request is refused exactly as under RejectNewest.
        let err = service.try_submit(1).unwrap_err();
        assert_eq!(err, ServiceError::Overloaded { capacity: 1 });
        assert_eq!(service.metrics().shed(), 0);
    }

    #[test]
    fn injected_panic_resolves_worker_lost_and_respawns() {
        silence_injected_panics();
        let (g, service_graph) = fixture(8);
        let plan = Arc::new(
            FaultPlan::builder()
                .fault_at(FaultSite::Solve, 1, mmt_platform::FaultKind::Panic)
                .build(),
        );
        let service = QueryService::builder()
            .workers(1)
            .fault_plan(Arc::clone(&plan))
            .build(Arc::clone(&g), service_graph)
            .unwrap();
        // Query 0 solves cleanly; query 1 panics mid-solve; query 2 proves
        // the respawned worker serves again.
        let h0 = service.submit(0).unwrap();
        assert!(h0.wait().is_ok());
        let h1 = service.submit(1).unwrap();
        assert_eq!(h1.wait().unwrap_err(), ServiceError::WorkerLost);
        let h2 = service.submit(2).unwrap();
        assert_eq!(h2.wait().unwrap(), mmt_baselines::dijkstra(&g, 2));
        assert_eq!(service.metrics().requests_lost(), 1);
        assert_eq!(service.metrics().workers_restarted(), 1);
        assert_eq!(service.metrics().inflight(), 0, "gauge repaired");
        assert_eq!(plan.panics_fired(), 1);
        // Shutdown still joins cleanly after a respawn.
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn snapshot_json_includes_robustness_counters() {
        let (_g, service) = service(6, 1);
        let json = service.metrics().snapshot().to_json();
        for key in ["requests_lost", "shed", "workers_restarted"] {
            assert!(json.contains(&format!("\"{key}\":0")), "{key} in {json}");
        }
    }
}
