//! A long-lived SSSP query service over one shared Component Hierarchy.
//!
//! The paper's deployment story — build the hierarchy once, then serve a
//! stream of shortest-path queries from many clients — needs more than a
//! batch call: a resident worker pool, per-worker reusable instances, and
//! clean shutdown. This module is that serving layer. Each worker owns one
//! [`ThorupInstance`] (so a `w`-worker service pins exactly `w` instances —
//! the paper's Section 5.2 memory model), pulls requests from a shared
//! channel, and answers through a per-request reply channel.
//!
//! ```
//! use std::sync::Arc;
//! use mmt_ch::build_parallel;
//! use mmt_graph::{gen::shapes, CsrGraph};
//! use mmt_thorup::service::QueryService;
//!
//! let el = shapes::figure_one();
//! let graph = Arc::new(CsrGraph::from_edge_list(&el));
//! let ch = Arc::new(build_parallel(&el));
//! let service = QueryService::start(graph, ch, 2);
//! let handle = service.submit(0);
//! assert_eq!(handle.wait().unwrap()[5], 10);
//! ```

use crate::instance::ThorupInstance;
use crate::solver::{ThorupConfig, ThorupSolver};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId};
use mmt_graph::CsrGraph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

enum Request {
    Full {
        source: VertexId,
        reply: Sender<Vec<Dist>>,
    },
    Target {
        source: VertexId,
        target: VertexId,
        reply: Sender<Dist>,
    },
}

/// A handle to an in-flight full SSSP query.
#[derive(Debug)]
pub struct QueryHandle {
    reply: Receiver<Vec<Dist>>,
}

impl QueryHandle {
    /// Blocks until the distance vector is ready. `None` if the service
    /// shut down before answering.
    pub fn wait(self) -> Option<Vec<Dist>> {
        self.reply.recv().ok()
    }
}

/// A handle to an in-flight point-to-point query.
#[derive(Debug)]
pub struct TargetHandle {
    reply: Receiver<Dist>,
}

impl TargetHandle {
    /// Blocks until the distance is ready.
    pub fn wait(self) -> Option<Dist> {
        self.reply.recv().ok()
    }
}

/// Service counters (monotone totals).
#[derive(Debug, Default)]
pub struct ServiceStats {
    served_full: AtomicU64,
    served_target: AtomicU64,
}

impl ServiceStats {
    /// Full queries answered so far.
    pub fn served_full(&self) -> u64 {
        self.served_full.load(Ordering::Relaxed)
    }

    /// Targeted queries answered so far.
    pub fn served_target(&self) -> u64 {
        self.served_target.load(Ordering::Relaxed)
    }
}

/// The running service. Dropping it drains and joins the workers.
#[derive(Debug)]
pub struct QueryService {
    requests: Option<Sender<Request>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<ServiceStats>,
}

impl QueryService {
    /// Spawns `workers` resident worker threads over a shared graph and
    /// hierarchy. Workers answer queries serially (one instance each);
    /// concurrency comes from the worker count, matching the
    /// simultaneous-queries regime of the paper's Figure 5.
    pub fn start(
        graph: Arc<CsrGraph>,
        ch: Arc<ComponentHierarchy>,
        workers: usize,
    ) -> Self {
        assert_eq!(graph.n(), ch.n(), "hierarchy was built for a different graph");
        let (tx, rx) = unbounded::<Request>();
        let stats = Arc::new(ServiceStats::default());
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let graph = Arc::clone(&graph);
                let ch = Arc::clone(&ch);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("mmt-query-{i}"))
                    .spawn(move || worker_loop(&graph, &ch, &rx, &stats))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            requests: Some(tx),
            workers,
            stats,
        }
    }

    /// Enqueues a full SSSP query.
    pub fn submit(&self, source: VertexId) -> QueryHandle {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender()
            .send(Request::Full {
                source,
                reply: reply_tx,
            })
            .expect("service workers alive while handle held");
        QueryHandle { reply: reply_rx }
    }

    /// Enqueues a point-to-point query (early-terminating).
    pub fn submit_target(&self, source: VertexId, target: VertexId) -> TargetHandle {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender()
            .send(Request::Target {
                source,
                target,
                reply: reply_tx,
            })
            .expect("service workers alive while handle held");
        TargetHandle { reply: reply_rx }
    }

    /// Service counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn sender(&self) -> &Sender<Request> {
        self.requests.as_ref().expect("present until drop")
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Closing the channel lets workers drain outstanding requests and
        // exit their recv loops.
        drop(self.requests.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(
    graph: &CsrGraph,
    ch: &ComponentHierarchy,
    rx: &Receiver<Request>,
    stats: &ServiceStats,
) {
    // Workers solve serially: the service's parallelism is across queries.
    let solver = ThorupSolver::new(graph, ch).with_config(ThorupConfig::serial());
    let inst = ThorupInstance::new(ch);
    while let Ok(req) = rx.recv() {
        match req {
            Request::Full { source, reply } => {
                inst.reset(ch);
                solver.solve_into(&inst, source);
                stats.served_full.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(inst.distances());
            }
            Request::Target {
                source,
                target,
                reply,
            } => {
                inst.reset(ch);
                let d = solver.solve_target(&inst, source, target);
                stats.served_target.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn fixture(log_n: u32) -> (Arc<CsrGraph>, Arc<ComponentHierarchy>) {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, 6);
        spec.seed = 5;
        let el = spec.generate();
        (
            Arc::new(CsrGraph::from_edge_list(&el)),
            Arc::new(build_serial(&el, ChMode::Collapsed)),
        )
    }

    #[test]
    fn serves_correct_answers() {
        let (g, ch) = fixture(8);
        let service = QueryService::start(Arc::clone(&g), ch, 3);
        assert_eq!(service.workers(), 3);
        let handles: Vec<_> = (0..20u32).map(|s| (s, service.submit(s % 64))).collect();
        for (i, (s, h)) in handles.into_iter().enumerate() {
            let got = h.wait().unwrap();
            assert_eq!(got, mmt_baselines::dijkstra(&g, s % 64), "request {i}");
        }
        assert_eq!(service.stats().served_full(), 20);
    }

    #[test]
    fn targeted_queries_served() {
        let (g, ch) = fixture(8);
        let service = QueryService::start(Arc::clone(&g), ch, 2);
        let oracle = mmt_baselines::dijkstra(&g, 7);
        let handles: Vec<_> = (0..10u32)
            .map(|t| (t * 13, service.submit_target(7, t * 13)))
            .collect();
        for (t, h) in handles {
            assert_eq!(h.wait().unwrap(), oracle[t as usize]);
        }
        assert_eq!(service.stats().served_target(), 10);
    }

    #[test]
    fn concurrent_clients() {
        let (g, ch) = fixture(8);
        let service = Arc::new(QueryService::start(Arc::clone(&g), ch, 4));
        let oracle = mmt_baselines::dijkstra(&g, 0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let service = Arc::clone(&service);
                let oracle = &oracle;
                s.spawn(move || {
                    for _ in 0..5 {
                        let d = service.submit(0).wait().unwrap();
                        assert_eq!(&d, oracle);
                    }
                });
            }
        });
        assert_eq!(service.stats().served_full(), 30);
    }

    #[test]
    fn drop_joins_cleanly_with_queued_work() {
        let (g, ch) = fixture(9);
        let service = QueryService::start(g, ch, 1);
        // Enqueue, keep the handles, drop the service first: handles must
        // still resolve (drain semantics) or report closure, never hang.
        let h1 = service.submit(0);
        let h2 = service.submit(1);
        drop(service);
        // Both were drained before the worker exited.
        assert!(h1.wait().is_some());
        assert!(h2.wait().is_some());
    }

    #[test]
    fn figure_one_answers() {
        let el = shapes::figure_one();
        let g = Arc::new(CsrGraph::from_edge_list(&el));
        let ch = Arc::new(build_serial(&el, ChMode::Collapsed));
        let service = QueryService::start(g, ch, 2);
        assert_eq!(service.submit(0).wait().unwrap(), vec![0, 1, 1, 9, 10, 10]);
        assert_eq!(service.submit_target(0, 4).wait().unwrap(), 10);
    }
}
