//! Simultaneous SSSP queries over one shared Component Hierarchy — the
//! paper's Section 5.5 / Figure 5 experiment, and the reason Thorup's
//! algorithm wins at batch workloads even though Δ-stepping wins single
//! queries.
//!
//! A Δ-stepping batch must run its (internally parallel) queries one after
//! another; the CH lets `k` Thorup queries run *concurrently in one
//! process*, each carrying only a lightweight [`ThorupInstance`] (Table 2's
//! "Instance" column) instead of a full copy of the graph.

use crate::instance::ThorupInstance;
use crate::solver::{ThorupConfig, ThorupSolver};
use mmt_graph::types::{Dist, VertexId};
use rayon::prelude::*;

/// How a batch of sources is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// All queries run concurrently, each internally serial (query-level
    /// parallelism; the paper's "simultaneous Thorup runs").
    Simultaneous,
    /// Queries run one after another, each internally parallel (the
    /// baseline the paper compares against).
    Sequential,
}

/// A batch engine over a shared solver.
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    solver: ThorupSolver<'a>,
}

impl<'a> QueryEngine<'a> {
    /// Wraps a solver for batch execution.
    pub fn new(solver: ThorupSolver<'a>) -> Self {
        Self { solver }
    }

    /// Runs one query per source, returning the distance vectors in input
    /// order.
    pub fn solve_batch(&self, sources: &[VertexId], mode: BatchMode) -> Vec<Vec<Dist>> {
        match mode {
            BatchMode::Simultaneous => {
                // Inner solves are serial: the pool's parallelism is spent
                // across queries, which is where a batch has the most
                // independent work (the paper's small-graph lesson: one
                // query cannot keep the whole machine busy).
                let serial = self.solver.with_config(ThorupConfig::serial());
                sources
                    .par_iter()
                    .map(|&s| {
                        let inst = ThorupInstance::new(serial.hierarchy());
                        serial.solve_into(&inst, s);
                        inst.distances()
                    })
                    .collect()
            }
            BatchMode::Sequential => sources
                .iter()
                .map(|&s| {
                    let inst = ThorupInstance::new(self.solver.hierarchy());
                    self.solver.solve_into(&inst, s);
                    inst.distances()
                })
                .collect(),
        }
    }

    /// Total instance bytes a `k`-source simultaneous batch keeps alive —
    /// the memory argument of the paper's Section 5.2.
    pub fn batch_instance_bytes(&self, k: usize) -> usize {
        k * mmt_ch::stats::instance_bytes(self.solver.hierarchy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::CsrGraph;

    #[test]
    fn modes_agree_on_figure_one() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let engine = QueryEngine::new(ThorupSolver::new(&g, &ch));
        let sources: Vec<u32> = (0..6).collect();
        let sim = engine.solve_batch(&sources, BatchMode::Simultaneous);
        let seq = engine.solve_batch(&sources, BatchMode::Sequential);
        assert_eq!(sim, seq);
        assert_eq!(sim[0], vec![0, 1, 1, 9, 10, 10]);
    }

    #[test]
    fn batch_matches_dijkstra_on_random_graph() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6);
        spec.seed = 77;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let engine = QueryEngine::new(ThorupSolver::new(&g, &ch));
        let sources = vec![0u32, 11, 42, 99, 3];
        let got = engine.solve_batch(&sources, BatchMode::Simultaneous);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(got[i], mmt_baselines::dijkstra(&g, s), "source {s}");
        }
    }

    #[test]
    fn batch_memory_scales_with_k() {
        let el = shapes::path(100, 2);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let engine = QueryEngine::new(ThorupSolver::new(&g, &ch));
        assert_eq!(
            engine.batch_instance_bytes(4),
            4 * engine.batch_instance_bytes(1)
        );
    }

    #[test]
    fn empty_batch() {
        let el = shapes::path(3, 1);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let engine = QueryEngine::new(ThorupSolver::new(&g, &ch));
        assert!(engine.solve_batch(&[], BatchMode::Simultaneous).is_empty());
    }
}
