//! Reusable instance pool for high-throughput query serving.
//!
//! A [`ThorupInstance`](crate::ThorupInstance) is cheap next to the graph
//! but still `O(n)`; a service answering a stream of queries should not
//! allocate one per request. The pool hands out reset instances and
//! reclaims them on drop, capping live memory at the concurrency level —
//! which is exactly the "k instances for k simultaneous queries" memory
//! model of the paper's Section 5.2.

use crate::instance::ThorupInstance;
use mmt_ch::ComponentHierarchy;
use parking_lot::Mutex;
use std::ops::Deref;

/// A pool of reusable per-query instances over one shared hierarchy.
#[derive(Debug)]
pub struct InstancePool<'ch> {
    ch: &'ch ComponentHierarchy,
    free: Mutex<Vec<ThorupInstance>>,
    created: std::sync::atomic::AtomicUsize,
}

impl<'ch> InstancePool<'ch> {
    /// An empty pool over `ch`.
    pub fn new(ch: &'ch ComponentHierarchy) -> Self {
        Self {
            ch,
            free: Mutex::new(Vec::new()),
            created: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Takes a reset instance (allocating only when the pool is dry).
    pub fn acquire(&self) -> PooledInstance<'_, 'ch> {
        let inst = {
            let mut free = self.free.lock();
            free.pop()
        };
        let inst = match inst {
            Some(existing) => {
                existing.reset(self.ch);
                existing
            }
            None => {
                self.created
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                ThorupInstance::new(self.ch)
            }
        };
        PooledInstance {
            pool: self,
            inst: Some(inst),
        }
    }

    /// Total instances ever allocated — with reuse this tracks the peak
    /// concurrency, not the query count.
    pub fn allocated(&self) -> usize {
        self.created.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Instances currently sitting idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

/// A pooled instance; returns to the pool when dropped.
#[derive(Debug)]
pub struct PooledInstance<'p, 'ch> {
    pool: &'p InstancePool<'ch>,
    inst: Option<ThorupInstance>,
}

impl Deref for PooledInstance<'_, '_> {
    type Target = ThorupInstance;

    fn deref(&self) -> &ThorupInstance {
        self.inst.as_ref().expect("instance present until drop")
    }
}

impl Drop for PooledInstance<'_, '_> {
    fn drop(&mut self) {
        if let Some(inst) = self.inst.take() {
            self.pool.free.lock().push(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ThorupSolver;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::CsrGraph;
    use rayon::prelude::*;

    #[test]
    fn reuse_keeps_allocation_at_one_when_serial() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let pool = InstancePool::new(&ch);
        for s in 0..6u32 {
            let inst = pool.acquire();
            solver.solve_into(&inst, s);
            assert_eq!(inst.dist_of(s), 0);
        }
        assert_eq!(pool.allocated(), 1, "serial queries reuse one instance");
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pooled_queries_are_correct_after_reuse() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let pool = InstancePool::new(&ch);
        let first = {
            let inst = pool.acquire();
            solver.solve_into(&inst, 0);
            inst.distances()
        };
        let second = {
            let inst = pool.acquire();
            solver.solve_into(&inst, 0);
            inst.distances()
        };
        assert_eq!(first, second);
        assert_eq!(first, vec![0, 1, 1, 9, 10, 10]);
    }

    #[test]
    fn concurrent_acquire_bounded_by_parallelism() {
        let el = shapes::complete(40, 3);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let pool = InstancePool::new(&ch);
        let sources: Vec<u32> = (0..40).cycle().take(200).collect();
        mmt_platform::with_pool(4, || {
            sources.par_iter().for_each(|&s| {
                let inst = pool.acquire();
                solver.solve_into(&inst, s);
                assert_eq!(inst.dist_of((s + 1) % 40), 3);
            });
        });
        assert!(
            pool.allocated() <= 8,
            "200 queries allocated {} instances",
            pool.allocated()
        );
        assert_eq!(pool.idle(), pool.allocated());
    }
}
