//! Query tracing: the quantities behind the paper's engineering sections,
//! measured per query.
//!
//! Section 3.3's whole argument rests on the *distribution* of toVisit-set
//! sizes ("each node can have between two and several hundred thousand
//! children") and Section 3.2's on how far `mind` updates travel. A
//! [`QueryTrace`] records both, plus per-level bucket-expansion counts, so
//! the claims can be checked on any workload (`transaction_network` and
//! `road_grid` examples print them; the `road_grid` "trapping" diagnosis
//! is literally `expansions/settled` from this trace).

use mmt_platform::Log2Histogram;

/// Everything recorded during one traced query.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Distribution of toVisit-set sizes over all visit-loop iterations.
    pub tovisit_sizes: Log2Histogram,
    /// Distribution of hop counts travelled by `mind` propagations.
    pub mind_hops: Log2Histogram,
    /// Bucket expansions per hierarchy shift `alpha` (index = alpha,
    /// saturated at 64 for the synthetic root).
    pub expansions_by_alpha: Vec<u64>,
    /// Vertices settled.
    pub settled: u64,
    /// Edge relaxations performed.
    pub relaxations: u64,
    /// Relaxations that improved a tentative distance.
    pub improvements: u64,
}

impl QueryTrace {
    pub(crate) fn new() -> Self {
        Self {
            expansions_by_alpha: vec![0; 65],
            ..Default::default()
        }
    }

    /// Total visit-loop iterations (= bucket expansions).
    pub fn total_expansions(&self) -> u64 {
        self.expansions_by_alpha.iter().sum()
    }

    /// Expansions per settled vertex — the paper's "trapping" indicator on
    /// structured graphs (high values = deep skinny traversals with no
    /// parallel slack).
    pub fn expansions_per_vertex(&self) -> f64 {
        if self.settled == 0 {
            0.0
        } else {
            self.total_expansions() as f64 / self.settled as f64
        }
    }

    /// Fraction of toVisit sets of size ≤ 1 (the loops not worth
    /// parallelising — what the selective strategy is for).
    pub fn tiny_tovisit_fraction(&self) -> f64 {
        let total = self.tovisit_sizes.total();
        if total == 0 {
            return 0.0;
        }
        let tiny = self.tovisit_sizes.count_at_bits(0) + self.tovisit_sizes.count_at_bits(1);
        tiny as f64 / total as f64
    }
}

impl std::fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "settled {} | relax {} (improve {}) | expansions {} ({:.2}/vertex)",
            self.settled,
            self.relaxations,
            self.improvements,
            self.total_expansions(),
            self.expansions_per_vertex()
        )?;
        writeln!(f, "toVisit sizes: {}", self.tovisit_sizes.summary())?;
        writeln!(
            f,
            "tiny (≤1) toVisit fraction: {:.1}%",
            100.0 * self.tiny_tovisit_fraction()
        )?;
        writeln!(f, "mind hops:    {}", self.mind_hops.summary())?;
        let active: Vec<String> = self
            .expansions_by_alpha
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(a, &c)| format!("a{a}:{c}"))
            .collect();
        write!(f, "expansions by alpha: {}", active.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use crate::serial::SerialThorup;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::CsrGraph;

    #[test]
    fn trace_totals_are_consistent() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 8);
        spec.seed = 2;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let mut engine = SerialThorup::new(&g, &ch);
        let (dist, trace) = engine.solve_traced(0);
        assert_eq!(trace.settled as usize, g.n(), "connected graph settles all");
        assert_eq!(trace.relaxations as usize, g.num_arcs());
        assert!(trace.improvements <= trace.relaxations);
        assert!(trace.total_expansions() > 0);
        // One expansion can settle a whole bucket of leaves, so the ratio
        // may be below 1; it just has to be positive.
        assert!(trace.expansions_per_vertex() > 0.0);
        // Every expansion visits at least one child.
        assert!(trace.tovisit_sizes.total() == trace.total_expansions());
        assert!(dist.iter().all(|&d| d != u64::MAX));
        // Traced and untraced runs agree.
        assert_eq!(dist, engine.solve(0));
    }

    #[test]
    fn trace_display_mentions_sections() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let (_, trace) = SerialThorup::new(&g, &ch).solve_traced(0);
        let text = trace.to_string();
        assert!(text.contains("settled 6"));
        assert!(text.contains("toVisit sizes"));
        assert!(text.contains("expansions by alpha"));
    }

    #[test]
    fn grid_traps_more_than_random() {
        // The paper's road-network "trapping behavior", quantified: a grid
        // pays more bucket expansions per settled vertex than a random
        // graph of equal size.
        let rand_spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 10, 8);
        let grid_spec = WorkloadSpec::new(GraphClass::Grid, WeightDist::Uniform, 10, 8);
        let per_vertex = |spec: WorkloadSpec| {
            let el = spec.generate();
            let g = CsrGraph::from_edge_list(&el);
            let ch = build_serial(&el, ChMode::Collapsed);
            let (_, t) = SerialThorup::new(&g, &ch).solve_traced(0);
            t.expansions_per_vertex()
        };
        assert!(per_vertex(grid_spec) > per_vertex(rand_spec));
    }
}
