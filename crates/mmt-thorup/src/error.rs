//! Typed errors for the solver and serving layer.
//!
//! The seed's public surface panicked on user input — a mismatched
//! hierarchy, an out-of-range source, a submit after shutdown. Those are
//! caller errors, not bugs, so the v2 API reports them as values:
//! [`InputError`] for malformed queries, [`ServiceError`] for everything
//! the serving layer can do with a well-formed one (reject it, time it
//! out, cancel it, or refuse because it is shutting down).

use crate::registry::GraphId;
use mmt_graph::types::VertexId;
use std::fmt;

/// A query (or solver construction) that cannot be meaningfully run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputError {
    /// The Component Hierarchy was built for a different graph: vertex
    /// counts disagree.
    GraphMismatch {
        /// Vertices in the graph.
        graph_n: usize,
        /// Vertices the hierarchy was built over.
        ch_n: usize,
    },
    /// The query source is not a vertex of the graph.
    SourceOutOfRange {
        /// The offending source.
        source: VertexId,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// The query target is not a vertex of the graph.
    TargetOutOfRange {
        /// The offending target.
        target: VertexId,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// The request names a [`GraphId`] the registry has never issued.
    UnknownGraph {
        /// The offending id.
        graph: GraphId,
    },
    /// A full-SSSP submit carried a target; use the point-to-point entry
    /// point for targeted queries.
    UnexpectedTarget {
        /// The target that was set.
        target: VertexId,
    },
    /// A point-to-point submit carried no target; use the full-SSSP entry
    /// point for untargeted queries.
    MissingTarget,
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::GraphMismatch { graph_n, ch_n } => write!(
                f,
                "hierarchy was built for a different graph ({ch_n} vertices, graph has {graph_n})"
            ),
            Self::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range for a {n}-vertex graph")
            }
            Self::TargetOutOfRange { target, n } => {
                write!(f, "target {target} out of range for a {n}-vertex graph")
            }
            Self::UnknownGraph { graph } => {
                write!(f, "graph {graph} is not registered")
            }
            Self::UnexpectedTarget { target } => {
                write!(
                    f,
                    "full-SSSP submit carried target {target}; use submit_p2p"
                )
            }
            Self::MissingTarget => {
                f.write_str("point-to-point submit carried no target; use submit")
            }
        }
    }
}

impl std::error::Error for InputError {}

/// Why the query service did not (or will not) answer a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded request queue is full; the request was not enqueued.
    /// Back off and retry, or treat as load shedding.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The service has shut down (or is shutting down in abort mode);
    /// the request was not, or will not be, answered.
    ShutDown,
    /// The request's deadline passed before an answer was produced. The
    /// deadline is enforced both at dequeue and cooperatively inside the
    /// solver, so an expired query stops mid-solve.
    DeadlineExceeded,
    /// The request was cancelled — typically by dropping its handle.
    Cancelled,
    /// The worker solving this request panicked. The request is *not*
    /// retried (the failure may be input-dependent); the worker is
    /// restarted and the pool returns to full strength. Resubmit if the
    /// query is idempotent from the caller's point of view.
    WorkerLost,
    /// The request was evicted from the queue by the service's
    /// load-shedding policy to keep the queue bounded under overload.
    Shed,
    /// The request's graph was evicted from the registry — either before
    /// the request was admitted, or while it sat queued. In-flight solves
    /// finish normally (their layout `Arc`s keep the data alive); only
    /// queued and future requests see this error.
    GraphEvicted,
    /// The registry's resident bytes exceed the service's configured
    /// memory limit; the request was refused at admission.
    MemoryPressure {
        /// Resident bytes at the admission check.
        resident: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The request itself was malformed.
    Input(InputError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            Self::ShutDown => f.write_str("service has shut down"),
            Self::DeadlineExceeded => f.write_str("deadline exceeded"),
            Self::Cancelled => f.write_str("query cancelled"),
            Self::WorkerLost => f.write_str("worker lost while solving this request"),
            Self::Shed => f.write_str("request shed under overload"),
            Self::GraphEvicted => f.write_str("graph evicted from the registry"),
            Self::MemoryPressure { resident, limit } => write!(
                f,
                "registry resident bytes ({resident}) exceed the memory limit ({limit})"
            ),
            Self::Input(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Input(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InputError> for ServiceError {
    fn from(e: InputError) -> Self {
        Self::Input(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = InputError::SourceOutOfRange { source: 9, n: 4 };
        assert_eq!(e.to_string(), "source 9 out of range for a 4-vertex graph");
        let s: ServiceError = e.into();
        assert!(s.to_string().contains("invalid request"));
        assert_eq!(
            ServiceError::Overloaded { capacity: 8 }.to_string(),
            "request queue full (capacity 8)"
        );
        assert_eq!(
            ServiceError::WorkerLost.to_string(),
            "worker lost while solving this request"
        );
        assert_eq!(
            ServiceError::Shed.to_string(),
            "request shed under overload"
        );
        assert_eq!(
            InputError::GraphMismatch {
                graph_n: 5,
                ch_n: 7
            }
            .to_string(),
            "hierarchy was built for a different graph (7 vertices, graph has 5)"
        );
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let s = ServiceError::Input(InputError::TargetOutOfRange { target: 3, n: 2 });
        assert!(s.source().is_some());
        assert!(ServiceError::ShutDown.source().is_none());
    }
}
