//! Batched simultaneous SSSP with pooled per-query memory.
//!
//! [`multi::QueryEngine`](crate::QueryEngine) proves the paper's point that
//! `k` Thorup queries can share one Component Hierarchy — but it allocates
//! a fresh [`ThorupInstance`](crate::ThorupInstance) *and* a fresh result
//! vector per query, which dominates the cost of small batches and churns
//! the allocator on large ones. This module is the allocation-free form of
//! the same idea:
//!
//! * [`BatchSolver`] — a reusable batch engine whose per-query instances
//!   come from an [`InstancePool`](crate::InstancePool) (peak-concurrency
//!   many, not batch-size many) and whose result vectors come from a
//!   [`DistancePool`];
//! * [`DistancePool`] / [`PooledDistances`] — result buffers that return
//!   to the pool when the caller drops them, so a steady stream of batches
//!   reaches a fixed point where no query allocates at all. The pool's
//!   `created` counter makes that a testable property rather than a hope.

use crate::pool::InstancePool;
use crate::solver::{ThorupConfig, ThorupSolver};
use mmt_graph::types::{Dist, VertexId};
use mmt_platform::scratch::BufferPool;
use mmt_platform::CancelToken;
use rayon::prelude::*;
use std::ops::Deref;
use std::sync::Arc;

/// A shareable pool of result-distance vectors.
///
/// Cloning is cheap (the clones share one pool). Buffers handed out as
/// [`PooledDistances`] come back automatically on drop.
#[derive(Debug, Clone, Default)]
pub struct DistancePool {
    inner: Arc<BufferPool<Dist>>,
}

impl DistancePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer (allocating only when the pool is dry).
    pub fn acquire(&self) -> Vec<Dist> {
        self.inner.acquire()
    }

    /// Wraps a filled buffer so it returns here when dropped.
    pub fn wrap(&self, buf: Vec<Dist>) -> PooledDistances {
        PooledDistances {
            pool: Arc::clone(&self.inner),
            buf: Some(buf),
        }
    }

    /// Buffers ever allocated. Flat across a window of batches ⇒ the
    /// window ran without a single result-vector allocation.
    pub fn created(&self) -> usize {
        self.inner.created()
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.inner.idle()
    }
}

/// A query's distance vector, on loan from a [`DistancePool`].
///
/// Dereferences to `[Dist]`; dropping it returns the buffer to the pool
/// for the next query. Use [`detach`](Self::detach) to keep the vector
/// permanently (long-lived tables).
#[derive(Debug)]
pub struct PooledDistances {
    pool: Arc<BufferPool<Dist>>,
    buf: Option<Vec<Dist>>,
}

impl PooledDistances {
    /// Takes the vector out of pool circulation (for results that outlive
    /// the batch, e.g. a precomputed hub table).
    pub fn detach(mut self) -> Vec<Dist> {
        self.buf.take().expect("buffer present until drop")
    }
}

impl Deref for PooledDistances {
    type Target = [Dist];

    fn deref(&self) -> &[Dist] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl PartialEq for PooledDistances {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for PooledDistances {}

impl Drop for PooledDistances {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.release(buf);
        }
    }
}

/// A reusable engine for simultaneous batches over one shared hierarchy.
///
/// Queries run concurrently, each internally serial (the batch's
/// parallelism is across queries, as in
/// [`BatchMode::Simultaneous`](crate::BatchMode)); per-query instances and
/// result vectors are pooled, so repeated batches settle into a zero
/// per-query-allocation steady state.
///
/// ```
/// use mmt_ch::build_parallel;
/// use mmt_graph::{gen::shapes, CsrGraph};
/// use mmt_thorup::{BatchSolver, ThorupSolver};
///
/// let el = shapes::figure_one();
/// let g = CsrGraph::from_edge_list(&el);
/// let ch = build_parallel(&el);
/// let solver = ThorupSolver::new(&g, &ch);
/// let batch = BatchSolver::new(&solver);
/// let rows = batch.solve_batch(&[0, 3]);
/// assert_eq!(&rows[0][..], &[0, 1, 1, 9, 10, 10]);
/// ```
#[derive(Debug)]
pub struct BatchSolver<'a> {
    serial: ThorupSolver<'a>,
    instances: InstancePool<'a>,
    distances: DistancePool,
}

impl<'a> BatchSolver<'a> {
    /// Wraps a solver for pooled batch execution (the solver's strategy
    /// settings are kept; per-query execution is forced serial).
    pub fn new(solver: &ThorupSolver<'a>) -> Self {
        let serial = solver.with_config(ThorupConfig::serial());
        Self {
            serial,
            instances: InstancePool::new(serial.hierarchy()),
            distances: DistancePool::new(),
        }
    }

    /// Runs one SSSP per source simultaneously, returning pooled distance
    /// vectors in input order. Dropping a result recycles its buffer for
    /// the next batch.
    pub fn solve_batch(&self, sources: &[VertexId]) -> Vec<PooledDistances> {
        sources
            .par_iter()
            .map(|&s| {
                let inst = self.instances.acquire();
                self.serial.solve_into(&inst, s);
                let mut buf = self.distances.acquire();
                inst.copy_distances_into(&mut buf);
                self.distances.wrap(buf)
            })
            .collect()
    }

    /// The cancellable form of [`solve_batch`](Self::solve_batch), for
    /// serving-layer coalescing where each member carries its own
    /// deadline/cancellation token. `tokens` pairs with `sources` by
    /// index; a member whose token fires mid-solve yields `None` while its
    /// batch-mates complete normally.
    ///
    /// # Panics
    ///
    /// Panics when `sources` and `tokens` disagree in length.
    pub fn solve_batch_with_cancel(
        &self,
        sources: &[VertexId],
        tokens: &[CancelToken],
    ) -> Vec<Option<PooledDistances>> {
        assert_eq!(
            sources.len(),
            tokens.len(),
            "one cancellation token per source"
        );
        (0..sources.len())
            .into_par_iter()
            .map(|i| {
                let inst = self.instances.acquire();
                if !self
                    .serial
                    .solve_into_with_cancel(&inst, sources[i], &tokens[i])
                {
                    return None;
                }
                let mut buf = self.distances.acquire();
                inst.copy_distances_into(&mut buf);
                Some(self.distances.wrap(buf))
            })
            .collect()
    }

    /// One pooled query (convenience for interleaving single sources with
    /// batches on the same warm pools).
    pub fn solve_one(&self, source: VertexId) -> PooledDistances {
        let inst = self.instances.acquire();
        self.serial.solve_into(&inst, source);
        let mut buf = self.distances.acquire();
        inst.copy_distances_into(&mut buf);
        self.distances.wrap(buf)
    }

    /// Instances ever allocated — tracks peak concurrency, not query count.
    pub fn instances_created(&self) -> usize {
        self.instances.allocated()
    }

    /// Result vectors ever allocated — tracks peak in-flight results, not
    /// query count.
    pub fn distance_buffers_created(&self) -> usize {
        self.distances.created()
    }

    /// The shared result-buffer pool (shareable with other consumers).
    pub fn distance_pool(&self) -> &DistancePool {
        &self.distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_baselines::dijkstra;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::CsrGraph;

    #[test]
    fn batch_matches_dijkstra() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::PolyLog, 7, 6);
        spec.seed = 21;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let batch = BatchSolver::new(&solver);
        let sources = vec![0u32, 9, 55, 100];
        let rows = batch.solve_batch(&sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(&rows[i][..], &dijkstra(&g, s)[..], "source {s}");
        }
    }

    #[test]
    fn steady_state_batches_allocate_nothing() {
        let el = shapes::complete(24, 3);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let batch = BatchSolver::new(&solver);
        let sources: Vec<u32> = (0..12).collect();
        let want: Vec<Vec<u64>> = sources.iter().map(|&s| dijkstra(&g, s)).collect();
        // Warm-up batch populates both pools.
        let rows = batch.solve_batch(&sources);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&row[..], &want[i][..]);
        }
        drop(rows); // buffers return to the pools
        let warm_instances = batch.instances_created();
        let warm_buffers = batch.distance_buffers_created();
        assert!(warm_buffers >= 1 && warm_buffers <= sources.len());
        for _ in 0..4 {
            let rows = batch.solve_batch(&sources);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(&row[..], &want[i][..]);
            }
        }
        assert_eq!(
            batch.instances_created(),
            warm_instances,
            "steady-state batches must reuse instances"
        );
        assert_eq!(
            batch.distance_buffers_created(),
            warm_buffers,
            "steady-state batches must reuse result buffers"
        );
    }

    #[test]
    fn cancelled_members_yield_none_while_batchmates_complete() {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6);
        spec.seed = 22;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let batch = BatchSolver::new(&solver);
        let sources = vec![0u32, 17, 40, 99];
        let tokens: Vec<CancelToken> = (0..4).map(|_| CancelToken::new()).collect();
        tokens[1].cancel();
        tokens[3].cancel();
        let rows = batch.solve_batch_with_cancel(&sources, &tokens);
        for (i, &s) in sources.iter().enumerate() {
            match &rows[i] {
                Some(row) => {
                    assert!(i == 0 || i == 2, "source {s} was cancelled");
                    assert_eq!(&row[..], &dijkstra(&g, s)[..], "source {s}");
                }
                None => assert!(i == 1 || i == 3, "source {s} was live"),
            }
        }
    }

    #[test]
    fn detach_keeps_the_vector_out_of_the_pool() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let batch = BatchSolver::new(&solver);
        let kept = batch.solve_one(0).detach();
        assert_eq!(kept, vec![0, 1, 1, 9, 10, 10]);
        assert_eq!(batch.distance_pool().idle(), 0, "detached buffer stays out");
        // The next query allocates a second buffer; dropping it returns it.
        drop(batch.solve_one(1));
        assert_eq!(batch.distance_buffers_created(), 2);
        assert_eq!(batch.distance_pool().idle(), 1);
    }

    #[test]
    fn empty_batch_is_empty() {
        let el = shapes::path(3, 1);
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let batch = BatchSolver::new(&solver);
        assert!(batch.solve_batch(&[]).is_empty());
        assert_eq!(batch.distance_buffers_created(), 0);
    }

    #[test]
    fn pooled_distances_compare_by_contents() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let solver = ThorupSolver::new(&g, &ch);
        let batch = BatchSolver::new(&solver);
        let a = batch.solve_one(0);
        let b = batch.solve_one(0);
        let c = batch.solve_one(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
