//! Multithreaded Thorup SSSP — the paper's primary contribution.
//!
//! Thorup's algorithm solves undirected single-source shortest paths with
//! positive integer weights in linear time by replacing Dijkstra's global
//! priority queue with a traversal of the Component Hierarchy
//! (`mmt-ch`), which exposes *sets* of vertices that may be settled in
//! arbitrary order — i.e. in parallel. The hierarchy is built once and
//! shared; each query carries only a small mutable [`ThorupInstance`].
//!
//! ```
//! use mmt_graph::gen::shapes;
//! use mmt_graph::CsrGraph;
//! use mmt_ch::{build_parallel, ChMode};
//! use mmt_thorup::ThorupSolver;
//!
//! let el = shapes::figure_one();
//! let graph = CsrGraph::from_edge_list(&el);
//! let ch = build_parallel(&el);                 // shared, built once
//! let solver = ThorupSolver::new(&graph, &ch);
//! assert_eq!(solver.solve(0), vec![0, 1, 1, 9, 10, 10]);
//! ```
//!
//! Modules:
//! * [`solver`] — the recursive bucket-visit engine;
//! * [`instance`] — per-query mutable state (dist / mind / unsettled);
//! * [`tovisit`] — the selective loop-parallelisation study (Table 6);
//! * [`multi`] — simultaneous batched queries over a shared CH (Figure 5);
//! * [`batch`] — the allocation-free form of `multi`: pooled per-query
//!   instances and result buffers;
//! * [`service`] — the long-lived query-serving layer (single queries and
//!   pooled batches), with a deadline-aware coalescing scheduler that
//!   amortises queued same-graph queries through one [`BatchSolver`] run;
//! * [`trace`] — opt-in per-query lifecycle traces (JSON lines) for the
//!   serving layer;
//! * [`layout`] — locality-optimized relabeled solving: permuted graph +
//!   leaf-permuted hierarchy behind an original-vertex-id facade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod error;
pub mod instance;
pub mod layout;
pub mod many_to_many;
pub mod multi;
pub mod pool;
pub mod registry;
pub mod serial;
pub mod service;
pub mod solver;
pub mod tovisit;
pub mod trace;

pub use analysis::QueryTrace;
pub use batch::{BatchSolver, DistancePool, PooledDistances};
pub use error::{InputError, ServiceError};
pub use instance::{CompactThorupInstance, ThorupInstance, ThorupInstanceIn};
pub use layout::{GraphLayout, LayoutKind, LayoutSolver};
pub use many_to_many::HubDistances;
pub use multi::{BatchMode, QueryEngine};
pub use pool::InstancePool;
pub use registry::{CacheStats, GraphId, GraphRegistry, QueryId};
pub use serial::SerialThorup;
pub use service::{
    BatchHandle, BatchRequest, GraphMetricsSnapshot, MetricsSnapshot, P2pAlgo, QueryHandle,
    QueryRequest, QueryService, QueryServiceBuilder, ServiceMetrics, ShedPolicy, ShutdownMode,
    TargetHandle,
};
pub use solver::{ThorupConfig, ThorupSolver};
pub use tovisit::ToVisitStrategy;
pub use trace::{JsonLinesSink, MemoryTraceSink, TraceEvent, TraceSink};
