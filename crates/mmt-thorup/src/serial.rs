//! A dedicated single-threaded Thorup engine.
//!
//! The paper benchmarks a *serial* Thorup build on a Linux workstation
//! (its Table 1) separately from the MTA-2 code. This module is that
//! engine: the same Component Hierarchy traversal as
//! [`crate::solver::ThorupSolver`], but over plain arrays — no atomics, no
//! settled bitset CAS, no pull-refresh CAS loop — which is both measurably
//! faster for one thread and an independent second implementation that
//! cross-validates the concurrent one (they are tested to produce
//! identical distances on every workload).

use crate::analysis::QueryTrace;
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId, INF};
use mmt_graph::CsrGraph;
use mmt_platform::atomic::saturating_shr;

/// Single-threaded Thorup SSSP over a (shared, read-only) hierarchy.
///
/// ```
/// use mmt_ch::build_parallel;
/// use mmt_graph::{gen::shapes, CsrGraph};
/// use mmt_thorup::SerialThorup;
///
/// let el = shapes::figure_one();
/// let g = CsrGraph::from_edge_list(&el);
/// let ch = build_parallel(&el);
/// let mut engine = SerialThorup::new(&g, &ch);
/// assert_eq!(engine.solve(0), vec![0, 1, 1, 9, 10, 10]);
/// ```
#[derive(Debug)]
pub struct SerialThorup<'a> {
    graph: &'a CsrGraph,
    ch: &'a ComponentHierarchy,
    dist: Vec<Dist>,
    mind: Vec<Dist>,
    unsettled: Vec<u32>,
    settled: Vec<bool>,
    trace: Option<Box<QueryTrace>>,
}

impl<'a> SerialThorup<'a> {
    /// Creates an engine; reusable across queries (state re-armed per
    /// solve).
    pub fn new(graph: &'a CsrGraph, ch: &'a ComponentHierarchy) -> Self {
        assert_eq!(
            graph.n(),
            ch.n(),
            "hierarchy was built for a different graph"
        );
        Self {
            graph,
            ch,
            dist: vec![INF; graph.n()],
            mind: vec![INF; ch.num_nodes()],
            unsettled: vec![0; ch.num_nodes()],
            settled: vec![false; graph.n()],
            trace: None,
        }
    }

    /// Solves SSSP from `source`, returning the distance vector.
    pub fn solve(&mut self, source: VertexId) -> Vec<Dist> {
        assert!((source as usize) < self.graph.n(), "source out of range");
        self.reset();
        self.dist[source as usize] = 0;
        self.bubble_mind(source, 0);
        self.visit(self.ch.root(), 64, 0);
        self.dist.clone()
    }

    /// As [`solve`](Self::solve), additionally recording a
    /// [`QueryTrace`] of the traversal's behaviour.
    pub fn solve_traced(&mut self, source: VertexId) -> (Vec<Dist>, QueryTrace) {
        self.trace = Some(Box::new(QueryTrace::new()));
        let dist = self.solve(source);
        let trace = *self.trace.take().expect("installed above");
        (dist, trace)
    }

    fn reset(&mut self) {
        self.dist.fill(INF);
        self.mind.fill(INF);
        self.settled.fill(false);
        for node in 0..self.ch.num_nodes() {
            self.unsettled[node] = self.ch.leaves_below(node as u32);
        }
    }

    fn bubble_mind(&mut self, vertex: VertexId, value: Dist) {
        let mut x = self.ch.leaf_of_vertex(vertex);
        let mut hops = 0u64;
        loop {
            if self.mind[x as usize] <= value {
                break;
            }
            self.mind[x as usize] = value;
            hops += 1;
            let p = self.ch.parent(x);
            if p == x {
                break;
            }
            x = p;
        }
        if let Some(t) = self.trace.as_mut() {
            t.mind_hops.record(hops);
        }
    }

    fn visit(&mut self, node: u32, parent_alpha: u8, bucket: u64) {
        if self.ch.is_leaf(node) {
            self.settle(node);
            return;
        }
        let alpha = self.ch.alpha(node);
        loop {
            let m = self.refresh_mind(node);
            if m == INF || self.unsettled[node as usize] == 0 {
                return;
            }
            if saturating_shr(m, parent_alpha as u32) != bucket {
                return;
            }
            let own_bucket = saturating_shr(m, alpha as u32);
            // toVisit: serial gather, then sequential recursive visits.
            // Collect ids first — visiting mutates `self.mind`.
            let tovisit: Vec<u32> = self
                .ch
                .children(node)
                .iter()
                .copied()
                .filter(|&c| {
                    let cm = self.mind[c as usize];
                    cm != INF && saturating_shr(cm, alpha as u32) == own_bucket
                })
                .collect();
            debug_assert!(!tovisit.is_empty());
            if let Some(t) = self.trace.as_mut() {
                t.tovisit_sizes.record(tovisit.len() as u64);
                t.expansions_by_alpha[(alpha as usize).min(64)] += 1;
            }
            for c in tovisit {
                self.visit(c, alpha, own_bucket);
            }
        }
    }

    fn refresh_mind(&mut self, node: u32) -> Dist {
        let m = self
            .ch
            .children(node)
            .iter()
            .map(|&c| self.mind[c as usize])
            .min()
            .unwrap_or(INF);
        self.mind[node as usize] = m;
        m
    }

    fn settle(&mut self, leaf: u32) {
        let v = self.ch.vertex_of_leaf(leaf);
        self.mind[leaf as usize] = INF;
        if std::mem::replace(&mut self.settled[v as usize], true) {
            return;
        }
        let mut x = leaf;
        loop {
            self.unsettled[x as usize] -= 1;
            let p = self.ch.parent(x);
            if p == x {
                break;
            }
            x = p;
        }
        let d = self.dist[v as usize];
        debug_assert_ne!(d, INF);
        let (targets, weights) = self.graph.neighbors(v);
        let (mut relaxed, mut improved) = (0u64, 0u64);
        // Borrow dance: neighbors() borrows the graph, not self's arrays.
        for i in 0..targets.len() {
            let (u, w) = (targets[i], weights[i]);
            relaxed += 1;
            let nd = d + w as Dist;
            if nd < self.dist[u as usize] {
                improved += 1;
                self.dist[u as usize] = nd;
                if !self.settled[u as usize] {
                    self.bubble_mind(u, nd);
                }
            }
        }
        if let Some(t) = self.trace.as_mut() {
            t.settled += 1;
            t.relaxations += relaxed;
            t.improvements += improved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ThorupSolver;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::shapes;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
    use mmt_graph::types::EdgeList;

    fn check(el: &EdgeList, sources: &[u32]) {
        let g = CsrGraph::from_edge_list(el);
        let ch = build_serial(el, ChMode::Collapsed);
        let concurrent = ThorupSolver::new(&g, &ch);
        let mut serial = SerialThorup::new(&g, &ch);
        for &s in sources {
            assert_eq!(serial.solve(s), concurrent.solve(s), "source {s}");
        }
    }

    #[test]
    fn matches_concurrent_on_shapes() {
        check(&shapes::figure_one(), &[0, 3, 5]);
        check(&shapes::path(12, 3), &[0, 6]);
        check(&shapes::star(9, 5), &[0, 4]);
        check(&EdgeList::from_triples(4, [(0, 1, 2)]), &[0, 3]);
        check(&EdgeList::new(1), &[0]);
    }

    #[test]
    fn matches_concurrent_on_workload_grid() {
        for class in [GraphClass::Random, GraphClass::Rmat] {
            for dist in [WeightDist::Uniform, WeightDist::PolyLog] {
                let mut spec = WorkloadSpec::new(class, dist, 8, 9);
                spec.seed = 13;
                check(&spec.generate(), &[0, 50, 200]);
            }
        }
    }

    #[test]
    fn engine_is_reusable() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let ch = build_serial(&el, ChMode::Collapsed);
        let mut engine = SerialThorup::new(&g, &ch);
        let a = engine.solve(0);
        let b = engine.solve(5);
        let a2 = engine.solve(0);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, vec![0, 1, 1, 9, 10, 10]);
    }
}
