//! Layout-aware solving: run Thorup on a relabeled graph, answer in
//! original vertex ids.
//!
//! The MTA-2 the paper targets has uniform-latency memory; this port runs
//! on cache hierarchies, where the order vertices occupy memory decides how
//! many cache lines a traversal touches (DESIGN.md §1). A [`GraphLayout`]
//! bundles a permuted graph, the matching leaf-permuted Component
//! Hierarchy, and the [`VertexPermutation`] connecting them to the caller's
//! id space; [`LayoutSolver`] and the
//! [`QueryService`](crate::QueryService) layout option solve in the
//! permuted space and translate at the boundary — sources map in O(1),
//! distance vectors scatter back in one O(n) pass per query.
//!
//! The [`LayoutKind::ChDfs`] order comes from the hierarchy itself
//! (`ComponentHierarchy::dfs_leaf_order`): it makes every Thorup component
//! index-contiguous, so the solver's per-component vertex sweeps become
//! sequential memory walks.

use crate::batch::BatchSolver;
use crate::error::InputError;
use crate::solver::ThorupSolver;
use mmt_ch::ComponentHierarchy;
use mmt_graph::types::{Dist, VertexId};
use mmt_graph::{CsrGraph, VertexPermutation};
use std::sync::Arc;

/// Which vertex order a layout relabels the graph into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutKind {
    /// Generator order — no relabeling (the before-side of every
    /// locality measurement).
    #[default]
    Natural,
    /// Breadth-first from the highest-degree vertex
    /// ([`VertexPermutation::bfs`]).
    Bfs,
    /// Descending-degree order ([`VertexPermutation::degree_sorted`]).
    Degree,
    /// Depth-first leaf order of the Component Hierarchy
    /// (`ComponentHierarchy::dfs_leaf_order`): Thorup components become
    /// index-contiguous.
    ChDfs,
}

impl LayoutKind {
    /// The label used in bench artifacts and engine names.
    pub fn short_name(self) -> &'static str {
        match self {
            LayoutKind::Natural => "natural",
            LayoutKind::Bfs => "bfs",
            LayoutKind::Degree => "degree",
            LayoutKind::ChDfs => "chdfs",
        }
    }

    /// Every kind, in bench-grid order.
    pub fn all() -> [LayoutKind; 4] {
        [
            LayoutKind::Natural,
            LayoutKind::Bfs,
            LayoutKind::Degree,
            LayoutKind::ChDfs,
        ]
    }

    /// Computes this kind's permutation for `(graph, ch)`, or `None` for
    /// [`LayoutKind::Natural`] (identity — skip the relabeling entirely).
    pub fn permutation(
        self,
        graph: &CsrGraph,
        ch: &ComponentHierarchy,
    ) -> Option<VertexPermutation> {
        match self {
            LayoutKind::Natural => None,
            LayoutKind::Bfs => Some(VertexPermutation::bfs(graph)),
            LayoutKind::Degree => Some(VertexPermutation::degree_sorted(graph)),
            LayoutKind::ChDfs => Some(ch.dfs_leaf_order()),
        }
    }
}

/// A graph, its Component Hierarchy, and the ordering they were relabeled
/// into — everything a solver needs to run in the permuted id space and
/// everything a facade needs to translate back out.
///
/// Cloning is cheap (`Arc`s all the way down); one layout can back many
/// solvers, services, and verify engines at once, exactly like the
/// unpermuted structures it wraps.
#[derive(Debug, Clone)]
pub struct GraphLayout {
    kind: LayoutKind,
    graph: Arc<CsrGraph>,
    ch: Arc<ComponentHierarchy>,
    /// `None` for the natural layout: internal and original ids coincide.
    perm: Option<Arc<VertexPermutation>>,
}

impl GraphLayout {
    /// Relabels `(graph, ch)` into `kind`'s order. For
    /// [`LayoutKind::Natural`] the inputs are shared as-is (no copy).
    ///
    /// Cost: one `O(n + m)` graph rebuild plus an `O(nodes)` hierarchy
    /// leaf remap — paid once, amortised over every query served on the
    /// layout.
    pub fn build(
        kind: LayoutKind,
        graph: Arc<CsrGraph>,
        ch: Arc<ComponentHierarchy>,
    ) -> Result<Self, InputError> {
        if graph.n() != ch.n() {
            return Err(InputError::GraphMismatch {
                graph_n: graph.n(),
                ch_n: ch.n(),
            });
        }
        match kind.permutation(&graph, &ch) {
            None => Ok(Self {
                kind,
                graph,
                ch,
                perm: None,
            }),
            Some(perm) => {
                let pg = Arc::new(graph.permuted(&perm));
                let pch = Arc::new(ch.permute_leaves(&perm));
                Ok(Self {
                    kind,
                    graph: pg,
                    ch: pch,
                    perm: Some(Arc::new(perm)),
                })
            }
        }
    }

    /// The ordering this layout uses.
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// The graph in layout order.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// The hierarchy with leaves in layout order.
    pub fn hierarchy(&self) -> &Arc<ComponentHierarchy> {
        &self.ch
    }

    /// The permutation, or `None` for the natural layout.
    pub fn permutation(&self) -> Option<&Arc<VertexPermutation>> {
        self.perm.as_ref()
    }

    /// Maps an original vertex id into the layout's internal id space.
    #[inline]
    pub fn to_internal(&self, v: VertexId) -> VertexId {
        match &self.perm {
            Some(p) => p.to_new(v),
            None => v,
        }
    }

    /// Maps an internal vertex id back to the caller's original id.
    #[inline]
    pub fn to_original(&self, v: VertexId) -> VertexId {
        match &self.perm {
            Some(p) => p.to_old(v),
            None => v,
        }
    }

    /// Reorders a distance vector indexed by internal ids into original
    /// order, into `out` (cleared; no allocation once `out` has capacity).
    /// The natural layout copies straight through.
    pub fn scatter_into(&self, internal: &[Dist], out: &mut Vec<Dist>) {
        match &self.perm {
            Some(p) => p.scatter_to_original(internal, out),
            None => {
                out.clear();
                out.extend_from_slice(internal);
            }
        }
    }

    /// A Thorup solver over the layout's internal id space. Callers using
    /// it directly must translate ids themselves — or use [`LayoutSolver`],
    /// which does it for them.
    pub fn solver(&self) -> ThorupSolver<'_> {
        ThorupSolver::new(&self.graph, &self.ch)
    }
}

/// A pooled Thorup solver over a [`GraphLayout`] that speaks original
/// vertex ids: sources are mapped in, distance vectors scattered back out.
///
/// Wraps a [`BatchSolver`] (pooled instances + result buffers), so
/// repeated queries reach the same zero-allocation steady state as the
/// unpermuted path — the only extra work per query is the O(n) scatter.
///
/// ```
/// use std::sync::Arc;
/// use mmt_ch::build_parallel;
/// use mmt_graph::{gen::shapes, CsrGraph};
/// use mmt_thorup::{GraphLayout, LayoutKind, LayoutSolver};
///
/// let el = shapes::figure_one();
/// let g = Arc::new(CsrGraph::from_edge_list(&el));
/// let ch = Arc::new(build_parallel(&el));
/// let layout = GraphLayout::build(LayoutKind::ChDfs, g, ch).unwrap();
/// let solver = LayoutSolver::new(&layout);
/// assert_eq!(solver.solve(0), vec![0, 1, 1, 9, 10, 10]); // original ids
/// ```
#[derive(Debug)]
pub struct LayoutSolver<'a> {
    layout: &'a GraphLayout,
    batch: BatchSolver<'a>,
}

impl<'a> LayoutSolver<'a> {
    /// A solver over `layout` with fresh instance/result pools.
    pub fn new(layout: &'a GraphLayout) -> Self {
        let solver = ThorupSolver::new(layout.graph(), layout.hierarchy());
        Self {
            layout,
            batch: BatchSolver::new(&solver),
        }
    }

    /// The layout this solver answers through.
    pub fn layout(&self) -> &GraphLayout {
        self.layout
    }

    /// Full SSSP from `source` (an original id), distances in original
    /// vertex order.
    pub fn solve(&self, source: VertexId) -> Vec<Dist> {
        let internal = self.batch.solve_one(self.layout.to_internal(source));
        let mut out = Vec::with_capacity(internal.len());
        self.layout.scatter_into(&internal, &mut out);
        out
    }

    /// One SSSP per source, solved simultaneously; rows in input order,
    /// each in original vertex order.
    pub fn solve_batch(&self, sources: &[VertexId]) -> Vec<Vec<Dist>> {
        let internal: Vec<VertexId> = sources
            .iter()
            .map(|&s| self.layout.to_internal(s))
            .collect();
        self.batch
            .solve_batch(&internal)
            .into_iter()
            .map(|row| {
                let mut out = Vec::with_capacity(row.len());
                self.layout.scatter_into(&row, &mut out);
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_baselines::dijkstra;
    use mmt_ch::{build_serial, ChMode};
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn fixture(seed: u64) -> (Arc<CsrGraph>, Arc<ComponentHierarchy>) {
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 7, 8);
        spec.seed = seed;
        let el = spec.generate();
        (
            Arc::new(CsrGraph::from_edge_list(&el)),
            Arc::new(build_serial(&el, ChMode::Collapsed)),
        )
    }

    #[test]
    fn every_layout_answers_in_original_ids() {
        let (g, ch) = fixture(31);
        for kind in LayoutKind::all() {
            let layout = GraphLayout::build(kind, Arc::clone(&g), Arc::clone(&ch)).unwrap();
            let solver = LayoutSolver::new(&layout);
            for s in [0u32, 17, 99] {
                assert_eq!(
                    solver.solve(s),
                    dijkstra(&g, s),
                    "{} source {s}",
                    kind.short_name()
                );
            }
        }
    }

    #[test]
    fn layout_batches_match_and_reuse_pools() {
        let (g, ch) = fixture(77);
        let layout = GraphLayout::build(LayoutKind::ChDfs, Arc::clone(&g), ch).unwrap();
        let solver = LayoutSolver::new(&layout);
        let sources: Vec<u32> = (0..10).map(|i| i * 13 % g.n() as u32).collect();
        let want: Vec<Vec<Dist>> = sources.iter().map(|&s| dijkstra(&g, s)).collect();
        for _ in 0..3 {
            assert_eq!(solver.solve_batch(&sources), want);
        }
    }

    #[test]
    fn natural_layout_shares_inputs() {
        let (g, ch) = fixture(5);
        let layout =
            GraphLayout::build(LayoutKind::Natural, Arc::clone(&g), Arc::clone(&ch)).unwrap();
        assert!(Arc::ptr_eq(layout.graph(), &g));
        assert!(Arc::ptr_eq(layout.hierarchy(), &ch));
        assert!(layout.permutation().is_none());
        assert_eq!(layout.to_internal(42), 42);
        assert_eq!(layout.to_original(42), 42);
    }

    #[test]
    fn permuted_hierarchy_is_valid_for_the_permuted_graph() {
        let (g, ch) = fixture(13);
        for kind in [LayoutKind::Bfs, LayoutKind::Degree, LayoutKind::ChDfs] {
            let layout = GraphLayout::build(kind, Arc::clone(&g), Arc::clone(&ch)).unwrap();
            layout
                .hierarchy()
                .validate(Some(layout.graph()))
                .unwrap_or_else(|e| panic!("{}: {e}", kind.short_name()));
        }
    }

    #[test]
    fn mismatched_inputs_are_a_typed_error() {
        let (g, _) = fixture(1);
        let (_, other_ch) = {
            let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 5, 4);
            spec.seed = 2;
            let el = spec.generate();
            ((), Arc::new(build_serial(&el, ChMode::Collapsed)))
        };
        assert!(matches!(
            GraphLayout::build(LayoutKind::Bfs, g, other_ch),
            Err(InputError::GraphMismatch { .. })
        ));
    }
}
