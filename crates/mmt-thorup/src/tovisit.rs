//! Building the `toVisit` set — the optimisation the paper's Table 6 is
//! about.
//!
//! Every visit-loop iteration of every CH node scans that node's children
//! for the ones (virtually) in the current bucket. Child counts are wildly
//! irregular ("between two and several hundred thousand"), and on the
//! MTA-2 the cost of *setting up* a parallel loop dwarfs the loop body for
//! small counts. The paper therefore picks, per loop, between a serial
//! loop, a single-processor parallel loop, and an all-processors parallel
//! loop, based on two experimentally chosen thresholds — an optimisation
//! worth ~2× end to end ("Thorup B" vs the naive always-parallel
//! "Thorup A").
//!
//! On commodity hardware the analogous costs are rayon's fork/join setup
//! vs a plain iterator, and the analogue of the MTA's "single processor"
//! middle tier is parallelism capped at two tasks. The scan is fused: one
//! pass yields both the bucket's members and the minimum child `mind`
//! (the solver needs both every iteration).

use mmt_graph::types::{Dist, INF};
use mmt_platform::atomic::saturating_shr;
use mmt_platform::EventCounters;
use mmt_platform::MinCell;
use rayon::prelude::*;

/// How the per-node child scan is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToVisitStrategy {
    /// Always a plain serial loop.
    Serial,
    /// Always a full parallel loop — the paper's naive "Thorup A".
    AlwaysParallel,
    /// Pick serial / capped-parallel / fully-parallel by child count — the
    /// paper's "Thorup B".
    Selective {
        /// At or above this many children, use capped (two-task)
        /// parallelism — the "single processor" tier.
        single_par_threshold: usize,
        /// At or above this many children, use the full rayon pool — the
        /// "all processors" tier.
        multi_par_threshold: usize,
    },
}

impl ToVisitStrategy {
    /// The thresholds we determined experimentally (`a4` style sweep; see
    /// `t6_tovisit` bench): serial below 256 children, capped parallelism
    /// to 16k, full pool beyond.
    pub fn selective_default() -> Self {
        ToVisitStrategy::Selective {
            single_par_threshold: 256,
            multi_par_threshold: 16_384,
        }
    }
}

impl Default for ToVisitStrategy {
    fn default() -> Self {
        Self::selective_default()
    }
}

/// Result of one fused child scan.
#[derive(Debug, PartialEq, Eq)]
pub struct ScanResult {
    /// Minimum `mind` over all children (`INF` if none or all done).
    pub min_mind: Dist,
    /// Children whose `mind` falls in `bucket` under `alpha`.
    pub tovisit: Vec<u32>,
}

/// Scans `children`, returning the minimum child `mind` and the members of
/// `bucket` (i.e. children with `mind >> alpha == bucket`), executed per
/// the strategy. This is the Rust shape of the paper's Figure 3 loop.
///
/// Allocates a fresh member vector per call; the solver's hot path uses
/// [`scan_children_into`] with a reused buffer instead.
pub fn scan_children<C: MinCell>(
    strategy: ToVisitStrategy,
    children: &[u32],
    mind: &[C],
    alpha: u8,
    bucket: u64,
    counters: Option<&EventCounters>,
) -> ScanResult {
    let mut tovisit = Vec::new();
    let min_mind = scan_children_into(
        strategy,
        children,
        mind,
        alpha,
        bucket,
        counters,
        &mut tovisit,
    );
    ScanResult { min_mind, tovisit }
}

/// As [`scan_children`], but fills the caller's `out` buffer (cleared
/// first) instead of allocating one, returning the minimum child `mind`.
///
/// One buffer serves every phase of a visit loop — and, pooled on the
/// instance, every visit of every query — so the steady-state serial scan
/// performs no allocation at all. Parallel-tier scans still build per-chunk
/// intermediates (fork/join needs owned results to reduce); those only run
/// on child lists big enough to amortise them.
pub fn scan_children_into<C: MinCell>(
    strategy: ToVisitStrategy,
    children: &[u32],
    mind: &[C],
    alpha: u8,
    bucket: u64,
    counters: Option<&EventCounters>,
    out: &mut Vec<u32>,
) -> Dist {
    out.clear();
    let inspect = |&c: &u32| -> (Dist, Option<u32>) {
        let m = mind[c as usize].load();
        let member = m != INF && saturating_shr(m, alpha as u32) == bucket;
        (m, member.then_some(c))
    };
    // Resolve the selective strategy to a concrete tier for this list.
    let max_tasks = match strategy {
        ToVisitStrategy::Serial => None,
        ToVisitStrategy::AlwaysParallel => Some(usize::MAX),
        ToVisitStrategy::Selective {
            single_par_threshold,
            multi_par_threshold,
        } => {
            if children.len() >= multi_par_threshold {
                Some(usize::MAX)
            } else if children.len() >= single_par_threshold {
                Some(2)
            } else {
                None
            }
        }
    };
    match max_tasks {
        None => {
            if let Some(ev) = counters {
                ev.serial_loops.bump();
            }
            let mut min_mind = INF;
            for c in children {
                let (m, member) = inspect(c);
                min_mind = min_mind.min(m);
                if let Some(c) = member {
                    out.push(c);
                }
            }
            min_mind
        }
        Some(max_tasks) => {
            if let Some(ev) = counters {
                ev.parallel_loop_setups.bump();
            }
            let mut r = scan_parallel(children, inspect, max_tasks);
            if out.capacity() == 0 {
                // Cold buffer: keep the scan's own vector, it is warm.
                *out = r.tovisit;
            } else {
                out.append(&mut r.tovisit);
            }
            r.min_mind
        }
    }
}

fn scan_serial(children: &[u32], inspect: impl Fn(&u32) -> (Dist, Option<u32>)) -> ScanResult {
    let mut min_mind = INF;
    let mut tovisit = Vec::new();
    for c in children {
        let (m, member) = inspect(c);
        min_mind = min_mind.min(m);
        if let Some(c) = member {
            tovisit.push(c);
        }
    }
    ScanResult { min_mind, tovisit }
}

fn scan_parallel(
    children: &[u32],
    inspect: impl Fn(&u32) -> (Dist, Option<u32>) + Sync + Send,
    max_tasks: usize,
) -> ScanResult {
    // `max_tasks == 2` emulates the MTA's single-processor tier: the scan
    // splits into at most two chunks regardless of pool width.
    let chunk = if max_tasks == usize::MAX {
        (children.len() / (rayon::current_num_threads() * 4).max(1)).max(64)
    } else {
        children.len().div_ceil(max_tasks).max(1)
    };
    children
        .par_chunks(chunk)
        .map(|chunk| scan_serial(chunk, &inspect))
        .reduce(
            || ScanResult {
                min_mind: INF,
                tovisit: Vec::new(),
            },
            |mut a, mut b| {
                a.min_mind = a.min_mind.min(b.min_mind);
                // Keep deterministic-ish ordering cheap: append.
                if a.tovisit.len() < b.tovisit.len() {
                    std::mem::swap(&mut a, &mut b);
                }
                a.tovisit.append(&mut b.tovisit);
                a
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_platform::{AtomicMinU32, AtomicMinU64};

    fn minds(values: &[u64]) -> Vec<AtomicMinU64> {
        values.iter().map(|&v| AtomicMinU64::new(v)).collect()
    }

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn all_strategies_agree() {
        let mind = minds(&[4, 5, 8, 12, INF, 7, 4]);
        let children = ids(7);
        // alpha=2: buckets 1,1,2,3,-,1,1
        let want_members = vec![0u32, 1, 5, 6];
        for strategy in [
            ToVisitStrategy::Serial,
            ToVisitStrategy::AlwaysParallel,
            ToVisitStrategy::selective_default(),
            ToVisitStrategy::Selective {
                single_par_threshold: 2,
                multi_par_threshold: 4,
            },
        ] {
            let mut r = scan_children(strategy, &children, &mind, 2, 1, None);
            r.tovisit.sort_unstable();
            assert_eq!(r.min_mind, 4, "{strategy:?}");
            assert_eq!(r.tovisit, want_members, "{strategy:?}");
        }
    }

    #[test]
    fn empty_children() {
        let mind = minds(&[]);
        let r = scan_children(ToVisitStrategy::Serial, &[], &mind, 0, 0, None);
        assert_eq!(r.min_mind, INF);
        assert!(r.tovisit.is_empty());
    }

    #[test]
    fn inf_children_excluded() {
        let mind = minds(&[INF, INF]);
        let r = scan_children(ToVisitStrategy::AlwaysParallel, &ids(2), &mind, 3, 0, None);
        assert_eq!(r.min_mind, INF);
        assert!(r.tovisit.is_empty());
    }

    #[test]
    fn saturating_alpha() {
        // alpha = 64 (synthetic root): every finite mind lands in bucket 0.
        let mind = minds(&[1, u64::MAX - 1, INF]);
        let r = scan_children(ToVisitStrategy::Serial, &ids(3), &mind, 64, 0, None);
        assert_eq!(r.tovisit, vec![0, 1]);
    }

    #[test]
    fn counters_record_loop_kinds() {
        let ev = EventCounters::new();
        let mind = minds(&[1; 10]);
        let children = ids(10);
        scan_children(ToVisitStrategy::Serial, &children, &mind, 0, 1, Some(&ev));
        assert_eq!(ev.serial_loops.get(), 1);
        scan_children(
            ToVisitStrategy::AlwaysParallel,
            &children,
            &mind,
            0,
            1,
            Some(&ev),
        );
        assert_eq!(ev.parallel_loop_setups.get(), 1);
        // Selective with tiny thresholds goes parallel; with huge, serial.
        scan_children(
            ToVisitStrategy::Selective {
                single_par_threshold: 1,
                multi_par_threshold: 5,
            },
            &children,
            &mind,
            0,
            1,
            Some(&ev),
        );
        assert_eq!(ev.parallel_loop_setups.get(), 2);
        scan_children(
            ToVisitStrategy::selective_default(),
            &children,
            &mind,
            0,
            1,
            Some(&ev),
        );
        assert_eq!(ev.serial_loops.get(), 2);
    }

    #[test]
    fn scan_into_reuses_the_buffer_without_growth() {
        let mind = minds(&[4, 5, 8, 12, INF, 7, 4]);
        let children = ids(7);
        let mut buf = Vec::new();
        let m = scan_children_into(
            ToVisitStrategy::Serial,
            &children,
            &mind,
            2,
            1,
            None,
            &mut buf,
        );
        assert_eq!(m, 4);
        buf.sort_unstable();
        assert_eq!(buf, vec![0, 1, 5, 6]);
        let warm_cap = buf.capacity();
        // Second phase over the same children: same members, no regrowth.
        let m = scan_children_into(
            ToVisitStrategy::Serial,
            &children,
            &mind,
            2,
            1,
            None,
            &mut buf,
        );
        assert_eq!(m, 4);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.capacity(), warm_cap);
        // And the wrapper agrees with the into-variant on every strategy.
        for strategy in [
            ToVisitStrategy::AlwaysParallel,
            ToVisitStrategy::Selective {
                single_par_threshold: 2,
                multi_par_threshold: 4,
            },
        ] {
            let m = scan_children_into(strategy, &children, &mind, 2, 1, None, &mut buf);
            let mut r = scan_children(strategy, &children, &mind, 2, 1, None);
            buf.sort_unstable();
            r.tovisit.sort_unstable();
            assert_eq!(m, r.min_mind, "{strategy:?}");
            assert_eq!(buf, r.tovisit, "{strategy:?}");
        }
    }

    /// The scan is width-agnostic: compact `u32` cells report the same
    /// members and minimum as wide cells on a certified value domain.
    #[test]
    fn compact_cells_scan_identically() {
        let values = [4u64, 5, 8, 12, INF, 7, 4];
        let wide = minds(&values);
        let narrow: Vec<AtomicMinU32> = values
            .iter()
            .map(|&v| <AtomicMinU32 as MinCell>::new_cell(v))
            .collect();
        let children = ids(values.len());
        for strategy in [ToVisitStrategy::Serial, ToVisitStrategy::AlwaysParallel] {
            let mut a = scan_children(strategy, &children, &wide, 2, 1, None);
            let mut b = scan_children(strategy, &children, &narrow, 2, 1, None);
            a.tovisit.sort_unstable();
            b.tovisit.sort_unstable();
            assert_eq!(a, b, "{strategy:?}");
        }
    }

    #[test]
    fn large_scan_parallel_correct() {
        let vals: Vec<u64> = (0..20_000u64).map(|i| (i * 37) % 4096).collect();
        let mind = minds(&vals);
        let children = ids(vals.len());
        let r = scan_children(
            ToVisitStrategy::AlwaysParallel,
            &children,
            &mind,
            5,
            3,
            None,
        );
        let want: Vec<u32> = (0..vals.len() as u32)
            .filter(|&i| vals[i as usize] >> 5 == 3)
            .collect();
        let mut got = r.tovisit;
        got.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(r.min_mind, 0);
    }
}
