//! Property tests for the graph substrate: CSR symmetry, DIMACS and
//! edge-list round trips, preparation-pass invariants, and shortest-path
//! tree validity.

use mmt_graph::builder::{largest_component, Prepare};
use mmt_graph::dimacs;
use mmt_graph::paths::build_tree;
use mmt_graph::types::{Edge, EdgeList, INF};
use mmt_graph::CsrGraph;
use proptest::prelude::*;

fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (1usize..50).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..1000).prop_map(|(u, v, w)| Edge::new(u, v, w));
        proptest::collection::vec(edge, 0..150).prop_map(move |edges| EdgeList { n, edges })
    })
}

fn sorted_canon(el: &EdgeList) -> Vec<Edge> {
    let mut v: Vec<Edge> = el.edges.iter().map(|e| e.canonical()).collect();
    v.sort_by_key(|e| (e.u, e.v, e.w));
    v
}

proptest! {
    #[test]
    fn csr_is_symmetric_and_degree_consistent(el in arb_edge_list()) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert_eq!(g.num_arcs(), 2 * el.m());
        prop_assert_eq!(g.total_degree(), g.num_arcs());
        for u in g.vertices() {
            for (v, w) in g.edges_from(u) {
                prop_assert!(g.edges_from(v).any(|(x, xw)| x == u && xw == w));
            }
        }
    }

    #[test]
    fn csr_edge_list_round_trip(el in arb_edge_list()) {
        let g = CsrGraph::from_edge_list(&el);
        let back = g.to_edge_list();
        prop_assert_eq!(sorted_canon(&el), sorted_canon(&back));
    }

    #[test]
    fn dimacs_round_trip(el in arb_edge_list()) {
        let mut buf = Vec::new();
        dimacs::write_gr(&mut buf, &el, "prop").unwrap();
        let back = dimacs::read_gr(&buf[..]).unwrap();
        prop_assert_eq!(back.n, el.n);
        prop_assert_eq!(sorted_canon(&el), sorted_canon(&back));
    }

    #[test]
    fn prepare_simple_yields_simple_graph(el in arb_edge_list()) {
        let out = Prepare::simple().apply(&el);
        let mut seen = std::collections::HashSet::new();
        for e in &out.edges {
            prop_assert!(!e.is_self_loop());
            prop_assert!(seen.insert((e.u, e.v)), "duplicate pair after dedup");
            // kept weight is the minimum among the originals for that pair
            let min = el.edges.iter()
                .filter(|o| {
                    let o = o.canonical();
                    (o.u, o.v) == (e.u, e.v)
                })
                .map(|o| o.w)
                .min()
                .unwrap();
            prop_assert_eq!(e.w, min);
        }
    }

    #[test]
    fn largest_component_is_connected_and_maximal(el in arb_edge_list()) {
        let lc = largest_component(&el);
        prop_assert!(lc.edges.n >= 1);
        prop_assert!(lc.edges.n <= el.n);
        // connected: BFS from 0 reaches everything
        let g = CsrGraph::from_edge_list(&lc.edges);
        let mut seen = vec![false; g.n()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in g.edges_from(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // mapping is injective into the original id space
        let mut ids = lc.original_id.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), lc.original_id.len());
    }

    #[test]
    fn tree_from_dijkstra_distances_is_valid(el in arb_edge_list(), s in 0u32..50) {
        let g = CsrGraph::from_edge_list(&el);
        let s = s % g.n() as u32;
        // local Dijkstra oracle (mmt-baselines depends on this crate)
        let mut dist = vec![INF; g.n()];
        let mut heap = std::collections::BinaryHeap::new();
        dist[s as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, s)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] { continue; }
            for (v, w) in g.edges_from(u) {
                let nd = d + w as u64;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        let tree = build_tree(&g, s, &dist);
        tree.validate(&g, &dist).map_err(TestCaseError::fail)?;
        // every reachable target's path has length == distance
        for t in 0..g.n() as u32 {
            if dist[t as usize] == INF { continue; }
            let path = tree.path_to(t).expect("reachable");
            prop_assert_eq!(path[0], s);
            prop_assert_eq!(*path.last().unwrap(), t);
        }
    }
}
