//! Property tests for the graph substrate: CSR symmetry, DIMACS and
//! edge-list round trips, preparation-pass invariants, and shortest-path
//! tree validity.

use mmt_graph::builder::{largest_component, Prepare};
use mmt_graph::dimacs;
use mmt_graph::paths::build_tree;
use mmt_graph::types::{Edge, EdgeList, INF};
use mmt_graph::CsrGraph;
use proptest::prelude::*;

fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (1usize..50).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..1000).prop_map(|(u, v, w)| Edge::new(u, v, w));
        proptest::collection::vec(edge, 0..150).prop_map(move |edges| EdgeList { n, edges })
    })
}

fn sorted_canon(el: &EdgeList) -> Vec<Edge> {
    let mut v: Vec<Edge> = el.edges.iter().map(|e| e.canonical()).collect();
    v.sort_by_key(|e| (e.u, e.v, e.w));
    v
}

proptest! {
    #[test]
    fn csr_is_symmetric_and_degree_consistent(el in arb_edge_list()) {
        let g = CsrGraph::from_edge_list(&el);
        prop_assert_eq!(g.num_arcs(), 2 * el.m());
        prop_assert_eq!(g.total_degree(), g.num_arcs());
        for u in g.vertices() {
            for (v, w) in g.edges_from(u) {
                prop_assert!(g.edges_from(v).any(|(x, xw)| x == u && xw == w));
            }
        }
    }

    #[test]
    fn csr_edge_list_round_trip(el in arb_edge_list()) {
        let g = CsrGraph::from_edge_list(&el);
        let back = g.to_edge_list();
        prop_assert_eq!(sorted_canon(&el), sorted_canon(&back));
    }

    #[test]
    fn dimacs_round_trip(el in arb_edge_list()) {
        let mut buf = Vec::new();
        dimacs::write_gr(&mut buf, &el, "prop").unwrap();
        let back = dimacs::read_gr(&buf[..]).unwrap();
        prop_assert_eq!(back.n, el.n);
        prop_assert_eq!(sorted_canon(&el), sorted_canon(&back));
    }

    #[test]
    fn prepare_simple_yields_simple_graph(el in arb_edge_list()) {
        let out = Prepare::simple().apply(&el);
        let mut seen = std::collections::HashSet::new();
        for e in &out.edges {
            prop_assert!(!e.is_self_loop());
            prop_assert!(seen.insert((e.u, e.v)), "duplicate pair after dedup");
            // kept weight is the minimum among the originals for that pair
            let min = el.edges.iter()
                .filter(|o| {
                    let o = o.canonical();
                    (o.u, o.v) == (e.u, e.v)
                })
                .map(|o| o.w)
                .min()
                .unwrap();
            prop_assert_eq!(e.w, min);
        }
    }

    #[test]
    fn largest_component_is_connected_and_maximal(el in arb_edge_list()) {
        let lc = largest_component(&el);
        prop_assert!(lc.edges.n >= 1);
        prop_assert!(lc.edges.n <= el.n);
        // connected: BFS from 0 reaches everything
        let g = CsrGraph::from_edge_list(&lc.edges);
        let mut seen = vec![false; g.n()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in g.edges_from(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // mapping is injective into the original id space
        let mut ids = lc.original_id.clone();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), lc.original_id.len());
    }

    #[test]
    fn tree_from_dijkstra_distances_is_valid(el in arb_edge_list(), s in 0u32..50) {
        let g = CsrGraph::from_edge_list(&el);
        let s = s % g.n() as u32;
        // local Dijkstra oracle (mmt-baselines depends on this crate)
        let mut dist = vec![INF; g.n()];
        let mut heap = std::collections::BinaryHeap::new();
        dist[s as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, s)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] { continue; }
            for (v, w) in g.edges_from(u) {
                let nd = d + w as u64;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        let tree = build_tree(&g, s, &dist);
        tree.validate(&g, &dist).map_err(TestCaseError::fail)?;
        // every reachable target's path has length == distance
        for t in 0..g.n() as u32 {
            if dist[t as usize] == INF { continue; }
            let path = tree.path_to(t).expect("reachable");
            prop_assert_eq!(path[0], s);
            prop_assert_eq!(*path.last().unwrap(), t);
        }
    }

    /// The on-the-fly CSR builder is *identical* — field for field, via
    /// `CsrGraph`'s derived `Eq` — to folding with `read_gr` and building
    /// with `from_edge_list`, over paired (write_gr) corpora.
    #[test]
    fn streaming_csr_builder_matches_read_gr(el in arb_edge_list()) {
        let mut buf = Vec::new();
        dimacs::write_gr(&mut buf, &el, "csr prop").unwrap();
        let via_edge_list = CsrGraph::from_edge_list(&dimacs::read_gr(&buf[..]).unwrap());
        let direct = dimacs::read_gr_csr(|| Ok(buf.as_slice())).unwrap();
        prop_assert_eq!(direct, via_edge_list);
    }

    /// Same identity over raw *asymmetric* arc soup — arcs with no paired
    /// reverse, odd multiplicities, self loops — where the pair-fold is
    /// doing real work.
    #[test]
    fn streaming_csr_builder_matches_on_asymmetric_arcs(
        n in 1usize..30,
        arcs in proptest::collection::vec((0u32..30, 0u32..30, 1u32..100), 0..120),
    ) {
        let mut text = format!("p sp {n} {}\n", arcs.len());
        for (u, v, w) in &arcs {
            let (u, v) = (u % n as u32, v % n as u32);
            text.push_str(&format!("a {} {} {w}\n", u + 1, v + 1));
        }
        let bytes = text.as_bytes();
        let via_edge_list = CsrGraph::from_edge_list(&dimacs::read_gr(bytes).unwrap());
        let direct = dimacs::read_gr_csr(|| Ok(bytes)).unwrap();
        prop_assert_eq!(direct, via_edge_list);
    }

    /// Error parity: the builder reports the same typed error — same
    /// variant, same fields — as the two-pass reader on truncated and
    /// weight-overflowing inputs.
    #[test]
    fn streaming_csr_builder_error_parity(
        el in arb_edge_list(),
        extra in 1usize..4,
        overflow_by in 1u64..1000,
    ) {
        use mmt_graph::dimacs::GrError;
        // Truncation: declare more arcs than the body delivers.
        let mut buf = Vec::new();
        dimacs::write_gr(&mut buf, &el, "").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated = text.replacen(
            &format!("p sp {} {}", el.n, 2 * el.m()),
            &format!("p sp {} {}", el.n, 2 * el.m() + extra),
            1,
        );
        let a = dimacs::read_gr(truncated.as_bytes()).unwrap_err();
        let b = dimacs::read_gr_csr(|| Ok(truncated.as_bytes())).unwrap_err();
        match (&a, &b) {
            (
                GrError::Truncated { declared: d1, found: f1 },
                GrError::Truncated { declared: d2, found: f2 },
            ) => {
                prop_assert_eq!(d1, d2);
                prop_assert_eq!(f1, f2);
            }
            other => return Err(TestCaseError::fail(format!("expected Truncated parity, got {other:?}"))),
        }
        // Overflow: one weight past u32::MAX, same line both routes.
        let value = u32::MAX as u64 + overflow_by;
        let bad = format!("p sp {} 1\na 1 1 {value}\n", el.n);
        let a = dimacs::read_gr(bad.as_bytes()).unwrap_err();
        let b = dimacs::read_gr_csr(|| Ok(bad.as_bytes())).unwrap_err();
        match (&a, &b) {
            (
                GrError::WeightOverflow { line: l1, value: v1 },
                GrError::WeightOverflow { line: l2, value: v2 },
            ) => {
                prop_assert_eq!(l1, l2);
                prop_assert_eq!(v1, v2);
            }
            other => return Err(TestCaseError::fail(format!("expected WeightOverflow parity, got {other:?}"))),
        }
    }

    /// The road generator always yields a connected graph with in-range
    /// weights and the deterministic `grid + n/16` edge budget.
    #[test]
    fn road_graphs_are_connected_and_budgeted(
        rows in 1usize..24,
        cols in 1usize..24,
        c in 1u32..200,
        seed in 0u64..1000,
    ) {
        use mmt_graph::gen::{road, weights::WeightSampler, WeightDist};
        use rand::SeedableRng;
        let sampler = WeightSampler::new(WeightDist::Uniform, c);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let el = road::road_graph(rows, cols, &sampler, &mut rng);
        el.assert_valid();
        let n = rows * cols;
        let grid_edges = rows * (cols - 1) + (rows - 1) * cols;
        prop_assert_eq!(el.n, n);
        prop_assert_eq!(el.m(), grid_edges + (n / 16).max(1));
        prop_assert!(el.edges.iter().all(|e| e.w >= 1 && e.w <= c.max(1)));
        let g = CsrGraph::from_edge_list(&el);
        let mut seen = vec![false; g.n()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in g.edges_from(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "road graph must be connected");
    }
}
