//! Shared-arena CSR: one `Arc`-owned arc array, many lightweight views.
//!
//! [`SplitCsr`] and [`CompactSplitCsr`] duplicate the full adjacency
//! payload per `(graph, Δ)` pair — serving several Δ choices (or several
//! tenants) from one process multiplies the dominant `O(m)` arrays.
//! Following the arena-plus-views representation of Dhulipala et al.
//! (GBBS), a [`CsrArena`] stores each graph's arcs **exactly once**, with
//! every per-vertex adjacency list sorted ascending by weight. For any
//! bucket width Δ the light (`w ≤ Δ`) edges are then a *prefix* of the
//! sorted list, so a [`SplitView`] needs only an `n`-entry prefix-length
//! vector — `O(n)` marginal bytes per Δ instead of `O(n + m)` duplicated
//! payload — and any number of views share the arena through an `Arc`.
//!
//! The [`SplitAdjacency`] trait abstracts over the duplicating and
//! offset-view representations, so the Δ-stepping kernels run unchanged
//! (and are differentially tested) on both.

use crate::compact::{CompactError, COMPACT_DIST_INF};
use crate::csr::CsrGraph;
use crate::split::SplitCsr;
use crate::types::{VertexId, Weight};
use std::sync::Arc;

/// The light/heavy adjacency contract shared by every pre-split CSR
/// representation: per vertex, the light (`w ≤ Δ`) neighbours and the
/// heavy (`w > Δ`) neighbours as parallel `(targets, weights)` slices.
///
/// The *multiset* of arcs per partition is what the contract fixes; the
/// order within a partition is representation-defined ([`SplitCsr`] keeps
/// source order, [`SplitView`] is weight-sorted).
pub trait SplitAdjacency {
    /// Number of vertices.
    fn n(&self) -> usize;
    /// Number of directed arcs.
    fn num_arcs(&self) -> usize;
    /// The bucket width this representation was split for.
    fn delta(&self) -> Weight;
    /// Largest edge weight of the source graph.
    fn max_weight(&self) -> Weight;
    /// The light (`w ≤ Δ`) neighbours of `v`, as parallel slices.
    fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]);
    /// The heavy (`w > Δ`) neighbours of `v`, as parallel slices.
    fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]);
    /// Degree of `v` (light + heavy).
    fn degree(&self, v: VertexId) -> usize {
        self.light(v).0.len() + self.heavy(v).0.len()
    }
}

/// Marker for split representations certified safe for saturating `u32`
/// tentative distances (arc count fits `u32`, undirected weight sum stays
/// below [`COMPACT_DIST_INF`]). The compact Δ-stepping kernel only
/// accepts these.
pub trait CompactCertified: SplitAdjacency {}

impl SplitAdjacency for SplitCsr {
    fn n(&self) -> usize {
        SplitCsr::n(self)
    }
    fn num_arcs(&self) -> usize {
        SplitCsr::num_arcs(self)
    }
    fn delta(&self) -> Weight {
        SplitCsr::delta(self)
    }
    fn max_weight(&self) -> Weight {
        SplitCsr::max_weight(self)
    }
    fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        SplitCsr::light(self, v)
    }
    fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        SplitCsr::heavy(self, v)
    }
    fn degree(&self, v: VertexId) -> usize {
        SplitCsr::degree(self, v)
    }
}

impl SplitAdjacency for crate::compact::CompactSplitCsr {
    fn n(&self) -> usize {
        crate::compact::CompactSplitCsr::n(self)
    }
    fn num_arcs(&self) -> usize {
        crate::compact::CompactSplitCsr::num_arcs(self)
    }
    fn delta(&self) -> Weight {
        crate::compact::CompactSplitCsr::delta(self)
    }
    fn max_weight(&self) -> Weight {
        crate::compact::CompactSplitCsr::max_weight(self)
    }
    fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        crate::compact::CompactSplitCsr::light(self, v)
    }
    fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        crate::compact::CompactSplitCsr::heavy(self, v)
    }
    fn degree(&self, v: VertexId) -> usize {
        crate::compact::CompactSplitCsr::degree(self, v)
    }
}

impl CompactCertified for crate::compact::CompactSplitCsr {}

/// An immutable, `Arc`-shared CSR whose per-vertex adjacency is sorted
/// ascending by weight (ties by target id, so construction is
/// deterministic).
///
/// The weight-sort is what makes Δ-splits free: for any Δ the light edges
/// of every vertex form a prefix of its sorted list, so
/// [`CsrArena::split`] produces an [`SplitView`] holding only an
/// `n`-entry prefix-length vector. Neighbour order is irrelevant to SSSP
/// correctness, so every solver in the workspace (Thorup included) runs
/// directly on [`CsrArena::graph`] — one arc array serves the hierarchy
/// traversal *and* every Δ view.
///
/// ```
/// use mmt_graph::types::EdgeList;
/// use mmt_graph::{CsrArena, CsrGraph, SplitAdjacency};
///
/// let el = EdgeList::from_triples(3, [(0, 1, 9), (0, 2, 2)]);
/// let arena = CsrArena::new(&CsrGraph::from_edge_list(&el));
/// let view = arena.split(3);
/// assert_eq!(view.light(0).0, &[2]); // w = 2 ≤ Δ
/// assert_eq!(view.heavy(0).0, &[1]); // w = 9 > Δ
/// ```
#[derive(Debug, Clone)]
pub struct CsrArena {
    graph: Arc<CsrGraph>,
}

impl CsrArena {
    /// Builds the weight-sorted arena copy of `g`. `O(n + m log deg)`;
    /// pay it once per graph, then derive every Δ split for `O(n)` each.
    pub fn new(g: &CsrGraph) -> Arc<Self> {
        let n = g.n();
        let mut offsets = vec![0u64; n + 1];
        let mut targets = vec![0 as VertexId; g.num_arcs()];
        let mut weights = vec![0 as Weight; g.num_arcs()];
        let mut pairs: Vec<(Weight, VertexId)> = Vec::new();
        let mut base = 0usize;
        for v in g.vertices() {
            let (ts, ws) = g.neighbors(v);
            offsets[v as usize] = base as u64;
            pairs.clear();
            pairs.extend(ws.iter().copied().zip(ts.iter().copied()));
            pairs.sort_unstable();
            for (i, &(w, t)) in pairs.iter().enumerate() {
                targets[base + i] = t;
                weights[base + i] = w;
            }
            base += pairs.len();
        }
        offsets[n] = base as u64;
        let graph = Arc::new(CsrGraph::from_parts(
            offsets,
            targets,
            weights,
            n,
            g.m(),
            g.max_weight(),
        ));
        Arc::new(Self { graph })
    }

    /// The arena-backed graph (weight-sorted adjacency, same vertex set
    /// and arc multiset as the source graph). Share it via `Arc::clone`;
    /// every clone references the same arc arrays.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.graph.num_arcs()
    }

    /// Heap bytes of the shared arc payload (offsets + targets +
    /// weights) — stored once however many views and solvers share the
    /// arena.
    pub fn arc_bytes(&self) -> usize {
        self.graph.heap_bytes()
    }

    /// Derives the Δ-split offset view: `O(n log deg)` binary searches,
    /// `O(n)` marginal bytes, zero arc duplication. `w == Δ` is light,
    /// matching [`SplitCsr`].
    pub fn split(self: &Arc<Self>, delta: Weight) -> SplitView {
        let n = self.n();
        let light_len = (0..n)
            .map(|v| {
                let (_, ws) = self.graph.neighbors(v as VertexId);
                ws.partition_point(|&w| w <= delta) as u32
            })
            .collect();
        SplitView {
            arena: Arc::clone(self),
            light_len,
            delta,
        }
    }

    /// As [`split`](Self::split), certified for `u32` tentative
    /// distances (the [`CompactCertified`] contract). Refuses graphs the
    /// duplicating [`crate::compact::CompactSplitCsr`] would refuse, for
    /// the same reasons.
    pub fn compact_split(
        self: &Arc<Self>,
        delta: Weight,
    ) -> Result<CompactSplitView, CompactError> {
        let arcs = self.num_arcs() as u64;
        if arcs > u32::MAX as u64 {
            return Err(CompactError::TooManyArcs { arcs });
        }
        let sum = self.graph.total_arc_weight() / 2;
        if sum >= COMPACT_DIST_INF as u64 {
            return Err(CompactError::WeightSumTooLarge { sum });
        }
        Ok(CompactSplitView {
            view: self.split(delta),
        })
    }
}

impl mmt_platform::MemFootprint for CsrArena {
    fn heap_bytes(&self) -> usize {
        self.arc_bytes()
    }
}

/// A Δ-split **offset view** over a shared [`CsrArena`]: the arena's
/// weight-sorted adjacency plus one `u32` light-prefix length per vertex.
///
/// Per-partition arc *multisets* match [`SplitCsr`] exactly; the order
/// within a partition is weight-sorted rather than source-ordered, which
/// no kernel depends on (differentially tested in `mmt-verify`).
#[derive(Debug, Clone)]
pub struct SplitView {
    arena: Arc<CsrArena>,
    light_len: Vec<u32>,
    delta: Weight,
}

impl SplitView {
    /// The arena this view borrows its arcs from.
    pub fn arena(&self) -> &Arc<CsrArena> {
        &self.arena
    }

    /// Marginal heap bytes of this view — the prefix-length vector only.
    /// The `O(m)` arc payload lives in the shared arena and is *not*
    /// counted here; that is the whole point.
    pub fn view_bytes(&self) -> usize {
        self.light_len.capacity() * std::mem::size_of::<u32>()
    }
}

impl SplitAdjacency for SplitView {
    #[inline]
    fn n(&self) -> usize {
        self.arena.n()
    }
    #[inline]
    fn num_arcs(&self) -> usize {
        self.arena.num_arcs()
    }
    #[inline]
    fn delta(&self) -> Weight {
        self.delta
    }
    #[inline]
    fn max_weight(&self) -> Weight {
        self.arena.graph.max_weight()
    }
    #[inline]
    fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let (ts, ws) = self.arena.graph.neighbors(v);
        let k = self.light_len[v as usize] as usize;
        (&ts[..k], &ws[..k])
    }
    #[inline]
    fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let (ts, ws) = self.arena.graph.neighbors(v);
        let k = self.light_len[v as usize] as usize;
        (&ts[k..], &ws[k..])
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.arena.graph.degree(v)
    }
}

impl mmt_platform::MemFootprint for SplitView {
    /// Only the view's own bytes; the shared arena is accounted once by
    /// whoever owns it.
    fn heap_bytes(&self) -> usize {
        self.view_bytes()
    }
}

/// A [`SplitView`] additionally certified for saturating `u32` tentative
/// distances — the offset-view counterpart of
/// [`crate::compact::CompactSplitCsr`]. Construct via
/// [`CsrArena::compact_split`].
#[derive(Debug, Clone)]
pub struct CompactSplitView {
    view: SplitView,
}

impl CompactSplitView {
    /// The underlying offset view.
    pub fn view(&self) -> &SplitView {
        &self.view
    }

    /// Marginal heap bytes of this view (see [`SplitView::view_bytes`]).
    pub fn view_bytes(&self) -> usize {
        self.view.view_bytes()
    }
}

impl SplitAdjacency for CompactSplitView {
    #[inline]
    fn n(&self) -> usize {
        self.view.n()
    }
    #[inline]
    fn num_arcs(&self) -> usize {
        self.view.num_arcs()
    }
    #[inline]
    fn delta(&self) -> Weight {
        self.view.delta()
    }
    #[inline]
    fn max_weight(&self) -> Weight {
        self.view.max_weight()
    }
    #[inline]
    fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        self.view.light(v)
    }
    #[inline]
    fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        self.view.heavy(v)
    }
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.view.degree(v)
    }
}

impl CompactCertified for CompactSplitView {}

impl mmt_platform::MemFootprint for CompactSplitView {
    fn heap_bytes(&self) -> usize {
        self.view.view_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphClass, WeightDist, WorkloadSpec};
    use crate::types::EdgeList;
    use mmt_platform::MemFootprint;

    fn workload(seed: u64) -> CsrGraph {
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        spec.seed = seed;
        CsrGraph::from_edge_list(&spec.generate())
    }

    fn sorted_pairs(ts: &[VertexId], ws: &[Weight]) -> Vec<(VertexId, Weight)> {
        let mut v: Vec<_> = ts.iter().copied().zip(ws.iter().copied()).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn arena_adjacency_is_weight_sorted_and_arc_preserving() {
        let g = workload(3);
        let arena = CsrArena::new(&g);
        let a = arena.graph();
        assert_eq!(a.n(), g.n());
        assert_eq!(a.num_arcs(), g.num_arcs());
        assert_eq!(a.max_weight(), g.max_weight());
        for v in g.vertices() {
            let (_, ws) = a.neighbors(v);
            assert!(ws.windows(2).all(|p| p[0] <= p[1]), "vertex {v} sorted");
            let (ts0, ws0) = g.neighbors(v);
            assert_eq!(
                sorted_pairs(a.neighbors(v).0, a.neighbors(v).1),
                sorted_pairs(ts0, ws0),
                "vertex {v} multiset"
            );
        }
    }

    #[test]
    fn view_partitions_match_the_duplicating_split() {
        let g = workload(7);
        let arena = CsrArena::new(&g);
        for delta in [0, 1, 7, 100, u32::MAX] {
            let dup = SplitCsr::new(&g, delta);
            let view = arena.split(delta);
            assert_eq!(view.n(), dup.n());
            assert_eq!(view.num_arcs(), dup.num_arcs());
            assert_eq!(view.delta(), dup.delta());
            assert_eq!(view.max_weight(), dup.max_weight());
            for v in g.vertices() {
                let (lt, lw) = view.light(v);
                assert!(lw.iter().all(|&w| w <= delta));
                assert!(view.heavy(v).1.iter().all(|&w| w > delta));
                assert_eq!(
                    sorted_pairs(lt, lw),
                    sorted_pairs(dup.light(v).0, dup.light(v).1),
                    "vertex {v} light multiset at delta {delta}"
                );
                assert_eq!(
                    sorted_pairs(view.heavy(v).0, view.heavy(v).1),
                    sorted_pairs(dup.heavy(v).0, dup.heavy(v).1),
                    "vertex {v} heavy multiset at delta {delta}"
                );
                assert_eq!(view.degree(v), dup.degree(v));
            }
        }
    }

    #[test]
    fn many_views_share_one_arc_array() {
        let g = workload(11);
        let arena = CsrArena::new(&g);
        let views: Vec<SplitView> = [1u32, 5, 25, 125].iter().map(|&d| arena.split(d)).collect();
        // Every view references the same graph allocation.
        for v in &views {
            assert!(Arc::ptr_eq(v.arena().graph(), arena.graph()));
        }
        // Resident accounting: one arena + k O(n) views stays far below k
        // duplicated SplitCsrs.
        let shared = arena.arc_bytes() + views.iter().map(SplitView::view_bytes).sum::<usize>();
        let duplicated: usize = [1u32, 5, 25, 125]
            .iter()
            .map(|&d| SplitCsr::new(&g, d).heap_bytes())
            .sum();
        assert!(
            shared < duplicated / 2,
            "shared {shared} bytes must be far below duplicated {duplicated}"
        );
        // And each additional view costs O(n), not O(m).
        assert_eq!(
            views[0].view_bytes(),
            g.n() * std::mem::size_of::<u32>().max(1)
        );
    }

    #[test]
    fn compact_view_certification_matches_the_duplicating_path() {
        let g = workload(13);
        let arena = CsrArena::new(&g);
        assert!(arena.compact_split(9).is_ok());
        // The same refusal as CompactSplitCsr for oversized weight sums.
        let el = EdgeList::from_triples(3, [(0, 1, u32::MAX), (1, 2, u32::MAX)]);
        let big = CsrArena::new(&CsrGraph::from_edge_list(&el));
        match big.compact_split(8) {
            Err(CompactError::WeightSumTooLarge { sum }) => {
                assert_eq!(sum, 2 * u32::MAX as u64)
            }
            other => panic!("expected WeightSumTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_boundary_graphs() {
        let empty = CsrArena::new(&CsrGraph::from_edge_list(&EdgeList::new(0)));
        assert_eq!(empty.n(), 0);
        let v = empty.split(4);
        assert_eq!(v.num_arcs(), 0);
        assert_eq!(v.view_bytes(), 0);

        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(5, [(0, 1, 2)]));
        let arena = CsrArena::new(&g);
        let view = arena.split(2); // w == Δ is light
        assert_eq!(view.light(0).0, &[1]);
        assert!(view.heavy(0).0.is_empty());
        assert!(view.light(3).0.is_empty() && view.heavy(3).0.is_empty());
    }

    #[test]
    fn footprints_count_only_owned_bytes() {
        let g = workload(17);
        let arena = CsrArena::new(&g);
        let view = arena.split(6);
        assert_eq!(MemFootprint::heap_bytes(&view), view.view_bytes());
        assert!(MemFootprint::heap_bytes(&*arena) >= g.num_arcs() * 8);
    }
}
