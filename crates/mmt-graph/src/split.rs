//! Light/heavy pre-split CSR view for delta-stepping.
//!
//! Delta-stepping partitions each vertex's incident edges by weight: *light*
//! edges (`w ≤ Δ`) are relaxed to a fixpoint inside the current bucket,
//! *heavy* edges (`w > Δ`) exactly once when the bucket empties. The naive
//! kernel re-applies that `filter` to the full adjacency list on every
//! relaxation of every phase. [`SplitCsr`] pays the partition cost once at
//! construction — per vertex, light edges are stored first and heavy edges
//! after, so each phase walks exactly the slice it needs with no per-edge
//! branch.

use crate::csr::CsrGraph;
use crate::types::{VertexId, Weight};

/// A CSR adjacency view whose per-vertex edges are partitioned into a light
/// (`w ≤ Δ`) prefix and a heavy (`w > Δ`) suffix.
///
/// The split is a reordering of the source graph's arcs — same vertex set,
/// same arc multiset — frozen for one choice of `Δ`. Build it once per
/// (graph, Δ) pair and share it across every query: like [`CsrGraph`] it is
/// immutable after construction.
///
/// ```
/// use mmt_graph::types::EdgeList;
/// use mmt_graph::{CsrGraph, SplitCsr};
///
/// let el = EdgeList::from_triples(3, [(0, 1, 2), (0, 2, 9)]);
/// let g = CsrGraph::from_edge_list(&el);
/// let s = SplitCsr::new(&g, 3);
/// assert_eq!(s.light(0).0, &[1]);
/// assert_eq!(s.heavy(0).0, &[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitCsr {
    offsets: Vec<u64>,
    /// Per-vertex boundary: arcs in `[offsets[v], light_end[v])` are light,
    /// arcs in `[light_end[v], offsets[v+1])` are heavy.
    light_end: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    delta: Weight,
    n: usize,
    max_weight: Weight,
}

impl SplitCsr {
    /// Builds the split view of `g` for bucket width `delta`.
    ///
    /// `O(n + m)`: one placement pass over the arcs. An edge with `w == Δ`
    /// is light, matching the paper's `≤ Δ` convention.
    pub fn new(g: &CsrGraph, delta: Weight) -> Self {
        let n = g.n();
        let mut offsets = vec![0u64; n + 1];
        let mut light_end = vec![0u64; n];
        let mut targets = vec![0 as VertexId; g.num_arcs()];
        let mut weights = vec![0 as Weight; g.num_arcs()];
        let mut base = 0u64;
        for v in g.vertices() {
            let (ts, ws) = g.neighbors(v);
            offsets[v as usize] = base;
            let mut cursor = base as usize;
            for (&t, &w) in ts.iter().zip(ws) {
                if w <= delta {
                    targets[cursor] = t;
                    weights[cursor] = w;
                    cursor += 1;
                }
            }
            light_end[v as usize] = cursor as u64;
            for (&t, &w) in ts.iter().zip(ws) {
                if w > delta {
                    targets[cursor] = t;
                    weights[cursor] = w;
                    cursor += 1;
                }
            }
            base += ts.len() as u64;
            debug_assert_eq!(cursor as u64, base);
        }
        offsets[n] = base;
        Self {
            offsets,
            light_end,
            targets,
            weights,
            delta,
            n,
            max_weight: g.max_weight(),
        }
    }

    /// The bucket width this view was split for.
    #[inline]
    pub fn delta(&self) -> Weight {
        self.delta
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed arcs (same as the source graph).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Largest edge weight of the source graph.
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The light (`w ≤ Δ`) neighbours of `v`, as parallel slices.
    #[inline]
    pub fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.light_end[v as usize] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// The heavy (`w > Δ`) neighbours of `v`, as parallel slices.
    #[inline]
    pub fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.light_end[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Every neighbour of `v` (light prefix, then heavy suffix).
    #[inline]
    pub fn all(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Degree of `v` (light + heavy).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Heap bytes of the split view (it duplicates the adjacency payload,
    /// which the Table 2-style accounting must see).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.light_end.capacity() * std::mem::size_of::<u64>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
            + self.weights.capacity() * std::mem::size_of::<Weight>()
    }
}

impl mmt_platform::MemFootprint for SplitCsr {
    fn heap_bytes(&self) -> usize {
        SplitCsr::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphClass, WeightDist, WorkloadSpec};
    use crate::types::EdgeList;

    #[test]
    fn partitions_by_weight_with_boundary_light() {
        let el = EdgeList::from_triples(4, [(0, 1, 3), (0, 2, 4), (0, 3, 5), (1, 2, 10)]);
        let g = CsrGraph::from_edge_list(&el);
        let s = SplitCsr::new(&g, 4);
        let (lt, lw) = s.light(0);
        assert_eq!((lt, lw), (&[1u32, 2][..], &[3u32, 4][..]));
        let (ht, hw) = s.heavy(0);
        assert_eq!((ht, hw), (&[3u32][..], &[5u32][..]));
        // w == Δ is light.
        assert!(s.light(0).1.contains(&4));
        assert_eq!(s.delta(), 4);
    }

    #[test]
    fn split_preserves_the_arc_multiset() {
        let spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 8, 10);
        let g = CsrGraph::from_edge_list(&spec.generate());
        for delta in [1, 7, 100, u32::MAX] {
            let s = SplitCsr::new(&g, delta);
            assert_eq!(s.num_arcs(), g.num_arcs());
            for v in g.vertices() {
                let mut want: Vec<_> = g.edges_from(v).collect();
                let (ts, ws) = s.all(v);
                let mut got: Vec<_> = ts.iter().copied().zip(ws.iter().copied()).collect();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "vertex {v} at delta {delta}");
                let (lt, lw) = s.light(v);
                assert!(lw.iter().all(|&w| w <= delta));
                assert!(s.heavy(v).1.iter().all(|&w| w > delta));
                assert_eq!(lt.len() + s.heavy(v).0.len(), s.degree(v));
            }
        }
    }

    #[test]
    fn extreme_deltas_degenerate_cleanly() {
        let el = EdgeList::from_triples(3, [(0, 1, 5), (1, 2, 7)]);
        let g = CsrGraph::from_edge_list(&el);
        let all_light = SplitCsr::new(&g, u32::MAX);
        let all_heavy = SplitCsr::new(&g, 0);
        for v in g.vertices() {
            assert_eq!(all_light.light(v).0.len(), g.degree(v));
            assert!(all_light.heavy(v).0.is_empty());
            assert!(all_heavy.light(v).0.is_empty());
            assert_eq!(all_heavy.heavy(v).0.len(), g.degree(v));
        }
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        let s = SplitCsr::new(&g, 1);
        assert_eq!(s.n(), 0);
        assert_eq!(s.num_arcs(), 0);

        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(5, [(0, 1, 2)]));
        let s = SplitCsr::new(&g, 1);
        assert!(s.light(3).0.is_empty());
        assert!(s.heavy(3).0.is_empty());
        assert_eq!(s.heavy(0).0, &[1]);
    }

    #[test]
    fn heap_bytes_cover_the_duplicated_payload() {
        let el = EdgeList::from_triples(100, (0..99u32).map(|i| (i, i + 1, i % 9 + 1)));
        let g = CsrGraph::from_edge_list(&el);
        let s = SplitCsr::new(&g, 4);
        assert!(s.heap_bytes() >= g.heap_bytes());
    }
}
