//! Core scalar and edge types shared by every crate in the workspace.

/// Vertex identifier. `u32` halves the memory traffic of `usize` indices;
/// the paper's largest instances (2^26 vertices) fit comfortably.
pub type VertexId = u32;

/// Positive integer edge weight (Thorup's algorithm requires positive
/// integers; zero weights are handled by a preprocessing contraction in
/// `mmt-ch`).
pub type Weight = u32;

/// Path distance. Sums of up to `n` weights of up to `2^32` need 64 bits.
pub type Dist = u64;

/// The "unreached" distance, `δ(v) = ∞` in the paper's convention.
pub const INF: Dist = u64::MAX;

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Weight.
    pub w: Weight,
}

impl Edge {
    /// Constructs an edge.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Self { u, v, w }
    }

    /// True for self loops (`u == v`). The DIMACS Random generator "may
    /// produce parallel edges as well as self-loops"; all algorithms must
    /// tolerate them.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }

    /// The same edge with endpoints ordered `u <= v` (canonical form used
    /// for deduplication and equality checks in tests).
    #[inline]
    pub fn canonical(&self) -> Self {
        if self.u <= self.v {
            *self
        } else {
            Self::new(self.v, self.u, self.w)
        }
    }
}

/// An edge list together with its vertex count — the interchange format
/// between generators, DIMACS I/O, and the CSR builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices (`0..n` are valid ids even if isolated).
    pub n: usize,
    /// Undirected edges (stored once each).
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// An empty edge list over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds from `(u, v, w)` triples.
    pub fn from_triples(
        n: usize,
        triples: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let edges = triples
            .into_iter()
            .map(|(u, v, w)| Edge::new(u, v, w))
            .collect();
        let el = Self { n, edges };
        el.assert_valid();
        el
    }

    /// Appends an edge.
    pub fn push(&mut self, u: VertexId, v: VertexId, w: Weight) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push(Edge::new(u, v, w));
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Largest weight present (`None` if edgeless).
    pub fn max_weight(&self) -> Option<Weight> {
        self.edges.iter().map(|e| e.w).max()
    }

    /// Panics if any endpoint is out of range (debug aid for generators and
    /// file readers).
    pub fn assert_valid(&self) {
        for e in &self.edges {
            assert!(
                (e.u as usize) < self.n && (e.v as usize) < self.n,
                "edge ({}, {}) out of range for n={}",
                e.u,
                e.v,
                self.n
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonical_orders_endpoints() {
        let e = Edge::new(5, 2, 9);
        assert_eq!(e.canonical(), Edge::new(2, 5, 9));
        assert_eq!(e.canonical().canonical(), Edge::new(2, 5, 9));
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(3, 3, 1).is_self_loop());
        assert!(!Edge::new(3, 4, 1).is_self_loop());
    }

    #[test]
    fn edge_list_from_triples() {
        let el = EdgeList::from_triples(4, [(0, 1, 2), (1, 2, 3)]);
        assert_eq!(el.m(), 2);
        assert_eq!(el.max_weight(), Some(3));
        assert_eq!(el.n, 4);
    }

    #[test]
    fn empty_edge_list() {
        let el = EdgeList::new(7);
        assert_eq!(el.m(), 0);
        assert_eq!(el.max_weight(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        EdgeList::from_triples(2, [(0, 2, 1)]);
    }
}
