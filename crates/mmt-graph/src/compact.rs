//! Compact (all-`u32`) pre-split CSR for the narrow delta-stepping kernel.
//!
//! The u64 structures in [`crate::split`] are sized for the worst case; on
//! the workloads the paper actually benchmarks, arc counts and shortest-path
//! distances comfortably fit 32 bits. [`CompactSplitCsr`] narrows the arc
//! offsets to `u32` and certifies that *tentative distances* fit `u32` too,
//! so a kernel can keep its distance array in half the bytes — fewer cache
//! lines per relaxation, which on a commodity host is the whole game
//! (DESIGN.md's locality substitution for the MTA-2's flat memory).
//!
//! Narrowing is checked, never silent: [`CompactSplitCsr::try_new`] refuses
//! graphs whose arc count exceeds `u32::MAX` or whose undirected weight sum
//! reaches [`COMPACT_DIST_INF`]. The weight-sum bound is sufficient because
//! shortest paths are simple: every true finite distance is at most the sum
//! of all undirected edge weights, so it fits strictly below the sentinel
//! and a saturating-add kernel can never clamp a *correct* value — only
//! spurious over-estimates, which a label-correcting kernel discards anyway.

use crate::csr::CsrGraph;
use crate::types::{Dist, VertexId, Weight, INF};

/// The `u32` "infinity" sentinel compact kernels use for unreached vertices.
/// Maps to [`INF`] on the way back out to the `u64` world.
pub const COMPACT_DIST_INF: u32 = u32::MAX;

/// Why a graph cannot be represented compactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactError {
    /// More than `u32::MAX` directed arcs — offsets would overflow.
    TooManyArcs {
        /// The offending arc count.
        arcs: u64,
    },
    /// The undirected weight sum reaches the `u32` distance sentinel, so a
    /// true shortest-path distance might not fit 32 bits.
    WeightSumTooLarge {
        /// Sum of undirected edge weights.
        sum: u64,
    },
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::TooManyArcs { arcs } => {
                write!(f, "{arcs} arcs exceed the u32 offset range")
            }
            CompactError::WeightSumTooLarge { sum } => write!(
                f,
                "undirected weight sum {sum} >= {COMPACT_DIST_INF}: u32 distances unsafe"
            ),
        }
    }
}

impl std::error::Error for CompactError {}

/// A light/heavy pre-split CSR with `u32` offsets, certified safe for
/// saturating `u32` tentative distances.
///
/// Same arc layout contract as [`crate::SplitCsr`] (light prefix, heavy
/// suffix per vertex; `w == Δ` is light) — only the index width differs.
///
/// ```
/// use mmt_graph::compact::CompactSplitCsr;
/// use mmt_graph::types::EdgeList;
/// use mmt_graph::CsrGraph;
///
/// let el = EdgeList::from_triples(3, [(0, 1, 2), (0, 2, 9)]);
/// let g = CsrGraph::from_edge_list(&el);
/// let c = CompactSplitCsr::try_new(&g, 3).unwrap();
/// assert_eq!(c.light(0).0, &[1]);
/// assert_eq!(c.heavy(0).0, &[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactSplitCsr {
    offsets: Vec<u32>,
    light_end: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    delta: Weight,
    n: usize,
    max_weight: Weight,
}

impl CompactSplitCsr {
    /// Builds the compact split view of `g` for bucket width `delta`, or
    /// reports why the graph cannot be narrowed. `O(n + m)`.
    pub fn try_new(g: &CsrGraph, delta: Weight) -> Result<Self, CompactError> {
        let arcs = g.num_arcs() as u64;
        if arcs > u32::MAX as u64 {
            return Err(CompactError::TooManyArcs { arcs });
        }
        // Each undirected edge contributes its weight twice to
        // total_arc_weight; a simple path uses each edge at most once.
        let sum = g.total_arc_weight() / 2;
        if sum >= COMPACT_DIST_INF as u64 {
            return Err(CompactError::WeightSumTooLarge { sum });
        }
        let n = g.n();
        let mut offsets = vec![0u32; n + 1];
        let mut light_end = vec![0u32; n];
        let mut targets = vec![0 as VertexId; g.num_arcs()];
        let mut weights = vec![0 as Weight; g.num_arcs()];
        let mut base = 0u32;
        for v in g.vertices() {
            let (ts, ws) = g.neighbors(v);
            offsets[v as usize] = base;
            let mut cursor = base as usize;
            for (&t, &w) in ts.iter().zip(ws) {
                if w <= delta {
                    targets[cursor] = t;
                    weights[cursor] = w;
                    cursor += 1;
                }
            }
            light_end[v as usize] = cursor as u32;
            for (&t, &w) in ts.iter().zip(ws) {
                if w > delta {
                    targets[cursor] = t;
                    weights[cursor] = w;
                    cursor += 1;
                }
            }
            base += ts.len() as u32;
            debug_assert_eq!(cursor as u32, base);
        }
        offsets[n] = base;
        Ok(Self {
            offsets,
            light_end,
            targets,
            weights,
            delta,
            n,
            max_weight: g.max_weight(),
        })
    }

    /// The bucket width this view was split for.
    #[inline]
    pub fn delta(&self) -> Weight {
        self.delta
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Largest edge weight of the source graph.
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The light (`w ≤ Δ`) neighbours of `v`, as parallel slices.
    #[inline]
    pub fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.light_end[v as usize] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// The heavy (`w > Δ`) neighbours of `v`, as parallel slices.
    #[inline]
    pub fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.light_end[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Heap bytes of the compact view.
    pub fn heap_bytes(&self) -> usize {
        (self.offsets.capacity() + self.light_end.capacity()) * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
            + self.weights.capacity() * std::mem::size_of::<Weight>()
    }
}

impl mmt_platform::MemFootprint for CompactSplitCsr {
    fn heap_bytes(&self) -> usize {
        CompactSplitCsr::heap_bytes(self)
    }
}

/// Widens a compact distance array to the workspace's `u64` convention,
/// mapping [`COMPACT_DIST_INF`] to [`INF`].
pub fn widen_distances(narrow: &[u32], out: &mut Vec<Dist>) {
    out.clear();
    out.extend(narrow.iter().map(|&d| {
        if d == COMPACT_DIST_INF {
            INF
        } else {
            d as Dist
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitCsr;
    use crate::types::EdgeList;

    #[test]
    fn matches_the_wide_split_layout() {
        let el = EdgeList::from_triples(4, [(0, 1, 3), (0, 2, 4), (0, 3, 5), (1, 2, 10)]);
        let g = CsrGraph::from_edge_list(&el);
        let wide = SplitCsr::new(&g, 4);
        let narrow = CompactSplitCsr::try_new(&g, 4).unwrap();
        assert_eq!(narrow.n(), wide.n());
        assert_eq!(narrow.num_arcs(), wide.num_arcs());
        assert_eq!(narrow.delta(), 4);
        assert_eq!(narrow.max_weight(), wide.max_weight());
        for v in g.vertices() {
            assert_eq!(narrow.light(v), wide.light(v));
            assert_eq!(narrow.heavy(v), wide.heavy(v));
            assert_eq!(narrow.degree(v), wide.degree(v));
        }
    }

    #[test]
    fn rejects_oversized_weight_sums() {
        // Two edges of u32::MAX weight: a simple path could need ~2^33.
        let el = EdgeList::from_triples(3, [(0, 1, u32::MAX), (1, 2, u32::MAX)]);
        let g = CsrGraph::from_edge_list(&el);
        match CompactSplitCsr::try_new(&g, 8) {
            Err(CompactError::WeightSumTooLarge { sum }) => {
                assert_eq!(sum, 2 * u32::MAX as u64);
            }
            other => panic!("expected WeightSumTooLarge, got {other:?}"),
        }
        // Just under the sentinel is accepted.
        let el = EdgeList::from_triples(2, [(0, 1, u32::MAX - 1)]);
        let g = CsrGraph::from_edge_list(&el);
        assert!(CompactSplitCsr::try_new(&g, 8).is_ok());
    }

    #[test]
    fn widen_maps_the_sentinel_to_inf() {
        let mut out = Vec::new();
        widen_distances(&[0, 7, COMPACT_DIST_INF], &mut out);
        assert_eq!(out, vec![0, 7, INF]);
    }

    #[test]
    fn compact_view_is_smaller_than_wide() {
        let el = EdgeList::from_triples(100, (0..99u32).map(|i| (i, i + 1, i % 9 + 1)));
        let g = CsrGraph::from_edge_list(&el);
        let wide = SplitCsr::new(&g, 4);
        let narrow = CompactSplitCsr::try_new(&g, 4).unwrap();
        assert!(narrow.heap_bytes() < wide.heap_bytes());
    }

    #[test]
    fn error_messages_render() {
        let e = CompactError::TooManyArcs {
            arcs: 5_000_000_000,
        };
        assert!(e.to_string().contains("arcs"));
        let e = CompactError::WeightSumTooLarge { sum: 1 << 40 };
        assert!(e.to_string().contains("unsafe"));
    }
}
