//! Induced-subgraph extraction — one of the two MTGL operations the paper
//! names ("finding connected components and extracting induced subgraphs").
//!
//! The Component Hierarchy builder uses the *filtered* variant (keep edges
//! below a weight threshold); tests and examples use the *vertex-induced*
//! variant.

use crate::csr::CsrGraph;
use crate::types::{EdgeList, VertexId, Weight};
use rayon::prelude::*;

/// The result of a vertex-induced extraction: the subgraph plus the mapping
/// from new ids back to the original ids.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The extracted graph over `0..k` renumbered vertices.
    pub graph: CsrGraph,
    /// `original_id[new_id]` — new-to-old vertex mapping.
    pub original_id: Vec<VertexId>,
}

/// Extracts the subgraph induced by `vertices` (duplicates ignored).
/// Edges are kept when **both** endpoints are selected.
pub fn induced_by_vertices(g: &CsrGraph, vertices: &[VertexId]) -> InducedSubgraph {
    let mut new_id = vec![u32::MAX; g.n()];
    let mut original_id = Vec::with_capacity(vertices.len());
    for &v in vertices {
        if new_id[v as usize] == u32::MAX {
            new_id[v as usize] = original_id.len() as u32;
            original_id.push(v);
        }
    }
    let mut el = EdgeList::new(original_id.len());
    for &u in &original_id {
        for (v, w) in g.edges_from(u) {
            let nu = new_id[u as usize];
            let nv = new_id[v as usize];
            if nv == u32::MAX {
                continue;
            }
            // Each undirected edge appears as two arcs; keep it once. Self
            // loops appear twice in the same list; keep every other copy via
            // the `u <= v` rule plus arc-index parity for loops.
            if u <= v {
                el.push(nu, nv, w);
            }
        }
    }
    // Self loops got pushed twice (two arc copies with u == v); drop half.
    dedup_paired_self_loops(&mut el);
    InducedSubgraph {
        graph: CsrGraph::from_edge_list(&el),
        original_id,
    }
}

fn dedup_paired_self_loops(el: &mut EdgeList) {
    let mut out = Vec::with_capacity(el.edges.len());
    let mut pending: Option<(VertexId, Weight)> = None;
    for e in el.edges.drain(..) {
        if e.is_self_loop() {
            if pending == Some((e.u, e.w)) {
                pending = None;
                continue;
            }
            pending = Some((e.u, e.w));
        }
        out.push(e);
    }
    el.edges = out;
}

/// Returns the edge list containing exactly the edges of `el` with weight
/// `< threshold` — the filter at the heart of the Component Hierarchy
/// ("Component(v,i) is reachable via edges of weight < 2^i").
pub fn edges_below(el: &EdgeList, threshold: Weight) -> EdgeList {
    let edges = el
        .edges
        .par_iter()
        .copied()
        .filter(|e| e.w < threshold)
        .collect();
    EdgeList { n: el.n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::shapes;

    #[test]
    fn induced_triangle_from_figure_one() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let sub = induced_by_vertices(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(sub.graph.m(), 3);
        assert_eq!(sub.original_id, vec![0, 1, 2]);
        // the weight-8 bridge is dropped because vertex 3 is not selected
        assert_eq!(sub.graph.max_weight(), 1);
    }

    #[test]
    fn duplicate_selection_ignored() {
        let g = CsrGraph::from_edge_list(&shapes::path(4, 1));
        let sub = induced_by_vertices(&g, &[2, 1, 2, 1]);
        assert_eq!(sub.graph.n(), 2);
        assert_eq!(sub.graph.m(), 1);
        assert_eq!(sub.original_id, vec![2, 1]);
    }

    #[test]
    fn empty_selection() {
        let g = CsrGraph::from_edge_list(&shapes::path(4, 1));
        let sub = induced_by_vertices(&g, &[]);
        assert_eq!(sub.graph.n(), 0);
        assert_eq!(sub.graph.m(), 0);
    }

    #[test]
    fn self_loops_survive_once() {
        let el = EdgeList::from_triples(3, [(0, 0, 7), (0, 1, 1)]);
        let g = CsrGraph::from_edge_list(&el);
        let sub = induced_by_vertices(&g, &[0, 1]);
        assert_eq!(sub.graph.m(), 2);
        assert_eq!(sub.graph.degree(0), 3); // loop counts twice + one edge
    }

    #[test]
    fn edges_below_threshold() {
        let el = shapes::figure_one();
        let under8 = edges_below(&el, 8);
        assert_eq!(under8.m(), 6);
        let under2 = edges_below(&el, 2);
        assert_eq!(under2.m(), 6);
        let under1 = edges_below(&el, 1);
        assert_eq!(under1.m(), 0);
        let all = edges_below(&el, 9);
        assert_eq!(all.m(), 7);
    }
}
