//! Undirected weighted graph in compressed-sparse-row (adjacency-array)
//! form, the representation both the MTGL and the DIMACS reference codes use.
//!
//! Each undirected edge `{u, v}` is stored twice (once per direction), so
//! `neighbors(v)` is a contiguous slice and edge relaxation is a linear
//! scan — the access pattern every solver in this workspace is built around.

use crate::types::{Edge, EdgeList, VertexId, Weight};
use rayon::prelude::*;

/// A frozen undirected weighted graph.
///
/// Construction is `O(n + m)` with two parallel passes (degree count, then
/// placement); the graph is immutable afterwards, which is what lets many
/// concurrent SSSP queries share it (and a shared Component Hierarchy)
/// without synchronisation.
///
/// ```
/// use mmt_graph::types::EdgeList;
/// use mmt_graph::CsrGraph;
///
/// let el = EdgeList::from_triples(3, [(0, 1, 5), (1, 2, 7)]);
/// let g = CsrGraph::from_edge_list(&el);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edges_from(0).collect::<Vec<_>>(), vec![(1, 5)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
    n: usize,
    undirected_m: usize,
    max_weight: Weight,
}

impl CsrGraph {
    /// Builds from an edge list. Self loops are kept (they are harmless to
    /// SSSP — relaxing one never improves a distance) and parallel edges are
    /// kept verbatim, matching the DIMACS generator contract.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::build(el.n, &el.edges)
    }

    fn build(n: usize, edges: &[Edge]) -> Self {
        let mut degree = vec![0u64; n + 1];
        for e in edges {
            degree[e.u as usize + 1] += 1;
            degree[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let offsets = degree;
        let dm = offsets[n] as usize;
        let mut targets = vec![0 as VertexId; dm];
        let mut weights = vec![0 as Weight; dm];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for e in edges {
            let cu = cursor[e.u as usize] as usize;
            targets[cu] = e.v;
            weights[cu] = e.w;
            cursor[e.u as usize] += 1;
            let cv = cursor[e.v as usize] as usize;
            targets[cv] = e.u;
            weights[cv] = e.w;
            cursor[e.v as usize] += 1;
        }
        let max_weight = edges.par_iter().map(|e| e.w).max().unwrap_or(0);
        Self {
            offsets,
            targets,
            weights,
            n,
            undirected_m: edges.len(),
            max_weight,
        }
    }

    /// Assembles a graph from already-built CSR arrays. Used by the layout
    /// code, which produces the permuted adjacency directly instead of
    /// round-tripping through an edge list.
    pub(crate) fn from_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Vec<Weight>,
        n: usize,
        undirected_m: usize,
        max_weight: Weight,
    ) -> Self {
        debug_assert_eq!(offsets.len(), n + 1);
        debug_assert_eq!(offsets[n] as usize, targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        Self {
            offsets,
            targets,
            weights,
            n,
            undirected_m,
            max_weight,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (each stored as two arcs).
    #[inline]
    pub fn m(&self) -> usize {
        self.undirected_m
    }

    /// Number of directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Largest edge weight, `C` in the paper's `<class>-<dist>-<n>-<C>`
    /// naming (0 for an edgeless graph).
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// Degree of `v` (counting both copies of self loops and every parallel
    /// edge).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The neighbours of `v` with weights, as parallel slices.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Iterates `(target, weight)` pairs out of `v`.
    #[inline]
    pub fn edges_from(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (t, w) = self.neighbors(v);
        t.iter().copied().zip(w.iter().copied())
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n as VertexId
    }

    /// Recovers the undirected edge list (each edge once, in canonical
    /// order; self loops once).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.undirected_m);
        for u in self.vertices() {
            for (v, w) in self.edges_from(u) {
                if u < v {
                    edges.push(Edge::new(u, v, w));
                } else if u == v {
                    // A self loop appears twice in u's own adjacency; keep
                    // every other occurrence.
                    edges.push(Edge::new(u, v, w));
                }
            }
        }
        // Self loops were double-counted above (both arc copies live in the
        // same adjacency list); keep one copy of each pair.
        let mut out = Vec::with_capacity(self.undirected_m);
        let mut skip_next_loop_at: Option<(VertexId, Weight)> = None;
        for e in edges {
            if e.is_self_loop() {
                if skip_next_loop_at == Some((e.u, e.w)) {
                    skip_next_loop_at = None;
                    continue;
                }
                skip_next_loop_at = Some((e.u, e.w));
            }
            out.push(e);
        }
        EdgeList {
            n: self.n,
            edges: out,
        }
    }

    /// Heap bytes of the adjacency structure (Table 2's "graph memory").
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
            + self.weights.capacity() * std::mem::size_of::<Weight>()
    }

    /// Sum of `degree(v)` over all vertices — equals `num_arcs`, used as a
    /// consistency check.
    pub fn total_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).sum()
    }

    /// Sum of all arc weights (each undirected edge counted twice).
    /// `total_arc_weight / num_arcs` is the average edge weight that seeds
    /// the adaptive Δ heuristic.
    pub fn total_arc_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }
}

impl mmt_platform::MemFootprint for CsrGraph {
    fn heap_bytes(&self) -> usize {
        CsrGraph::heap_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EdgeList;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeList::from_triples(
            3,
            [(0, 1, 5), (1, 2, 7), (0, 2, 9)],
        ))
    }

    #[test]
    fn basic_shape() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.max_weight(), 9);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        for u in g.vertices() {
            for (v, w) in g.edges_from(u) {
                assert!(
                    g.edges_from(v).any(|(x, xw)| x == u && xw == w),
                    "arc {u}->{v} missing reverse"
                );
            }
        }
    }

    #[test]
    fn self_loops_and_parallel_edges_kept() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            2,
            [(0, 0, 3), (0, 1, 1), (0, 1, 2)],
        ));
        assert_eq!(g.m(), 3);
        // self loop contributes 2 to the degree of vertex 0, plus 2 parallel arcs
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(5, [(0, 1, 1)]));
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.n(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_weight(), 0);
    }

    #[test]
    fn round_trip_edge_list() {
        let el = EdgeList::from_triples(4, [(0, 1, 2), (2, 3, 4), (1, 1, 9), (0, 1, 2)]);
        let g = CsrGraph::from_edge_list(&el);
        let back = g.to_edge_list();
        assert_eq!(back.m(), el.m());
        let mut a: Vec<_> = el.edges.iter().map(|e| e.canonical()).collect();
        let mut b: Vec<_> = back.edges.iter().map(|e| e.canonical()).collect();
        let key = |e: &Edge| (e.u, e.v, e.w);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn total_arc_weight_counts_both_directions() {
        let g = triangle();
        assert_eq!(g.total_arc_weight(), 2 * (5 + 7 + 9));
        let empty = CsrGraph::from_edge_list(&EdgeList::new(3));
        assert_eq!(empty.total_arc_weight(), 0);
    }

    #[test]
    fn heap_bytes_scale_with_graph() {
        let small = CsrGraph::from_edge_list(&EdgeList::from_triples(2, [(0, 1, 1)]));
        let big = CsrGraph::from_edge_list(&EdgeList::from_triples(
            100,
            (0..99u32).map(|i| (i, i + 1, 1)),
        ));
        assert!(big.heap_bytes() > small.heap_bytes());
    }
}
