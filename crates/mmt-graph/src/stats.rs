//! Degree and weight summaries printed by the benchmark harness next to each
//! workload, giving the "platform independent view of the structure of the
//! graph" the paper's Section 4.3 asks for.

use crate::csr::CsrGraph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree (arcs per vertex).
    pub avg_degree: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
    /// Number of self loops (arc pairs with equal endpoints / 2).
    pub self_loops: usize,
    /// Maximum edge weight `C`.
    pub max_weight: u32,
    /// Minimum edge weight (0 for edgeless graphs).
    pub min_weight: u32,
}

impl GraphStats {
    /// Computes the summary in one pass over the adjacency structure.
    pub fn of(g: &CsrGraph) -> Self {
        let mut max_degree = 0;
        let mut isolated = 0;
        let mut self_loop_arcs = 0usize;
        let mut min_weight = u32::MAX;
        for v in g.vertices() {
            let d = g.degree(v);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
            for (t, w) in g.edges_from(v) {
                if t == v {
                    self_loop_arcs += 1;
                }
                min_weight = min_weight.min(w);
            }
        }
        Self {
            n: g.n(),
            m: g.m(),
            max_degree,
            avg_degree: if g.n() == 0 {
                0.0
            } else {
                g.num_arcs() as f64 / g.n() as f64
            },
            isolated,
            self_loops: self_loop_arcs / 2,
            max_weight: g.max_weight(),
            min_weight: if min_weight == u32::MAX {
                0
            } else {
                min_weight
            },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} deg(avg={:.2}, max={}) isolated={} loops={} w=[{}, {}]",
            self.n,
            self.m,
            self.avg_degree,
            self.max_degree,
            self.isolated,
            self.self_loops,
            self.min_weight,
            self.max_weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::shapes;
    use crate::types::EdgeList;

    #[test]
    fn star_stats() {
        let g = CsrGraph::from_edge_list(&shapes::star(5, 3));
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.self_loops, 0);
        assert_eq!((s.min_weight, s.max_weight), (3, 3));
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
    }

    #[test]
    fn loops_and_isolated_counted() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 0, 2), (0, 1, 5)]));
        let s = GraphStats::of(&g);
        assert_eq!(s.self_loops, 1);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.min_weight, 2);
        assert_eq!(s.max_weight, 5);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.min_weight, 0);
    }

    #[test]
    fn display_is_informative() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 1));
        let text = GraphStats::of(&g).to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("m=2"));
    }
}
