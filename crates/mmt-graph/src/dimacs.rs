//! 9th DIMACS Implementation Challenge `.gr` format support.
//!
//! The challenge format (the one the paper's instances and reference solver
//! speak) is line-oriented ASCII:
//!
//! ```text
//! c  comment
//! p  sp <n> <m>
//! a  <u> <v> <w>      (1-based vertex ids; one line per arc)
//! ```
//!
//! The challenge generators emit each undirected edge as a *pair* of arcs;
//! writers here do the same, and the reader folds arc pairs back into
//! undirected edges (keeping genuinely asymmetric inputs as parallel edges,
//! which is the safe interpretation for an undirected solver).

use crate::types::{Edge, EdgeList, VertexId, Weight};
use std::io::{self, BufRead, Write};

/// Errors produced by the `.gr` reader.
#[derive(Debug)]
pub enum GrError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
}

impl std::fmt::Display for GrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrError::Io(e) => write!(f, "io error: {e}"),
            GrError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GrError {}

impl From<io::Error> for GrError {
    fn from(e: io::Error) -> Self {
        GrError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> GrError {
    GrError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Reads a `.gr` file into an [`EdgeList`], folding symmetric arc pairs into
/// single undirected edges.
pub fn read_gr<R: BufRead>(reader: R) -> Result<EdgeList, GrError> {
    let mut n: Option<usize> = None;
    let mut declared_arcs = 0usize;
    let mut arcs: Vec<Edge> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("c") => {}
            Some("p") => {
                if n.is_some() {
                    return Err(parse_err(lineno, "duplicate problem line"));
                }
                if it.next() != Some("sp") {
                    return Err(parse_err(lineno, "expected `p sp <n> <m>`"));
                }
                let nv: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex count"))?;
                declared_arcs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc count"))?;
                n = Some(nv);
            }
            Some("a") => {
                let n = n.ok_or_else(|| parse_err(lineno, "arc before problem line"))?;
                let u: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad tail"))?;
                let v: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad head"))?;
                let w: Weight = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad weight"))?;
                if u == 0 || v == 0 || u as usize > n || v as usize > n {
                    return Err(parse_err(
                        lineno,
                        "vertex id out of range (ids are 1-based)",
                    ));
                }
                arcs.push(Edge::new((u - 1) as VertexId, (v - 1) as VertexId, w));
            }
            Some(tok) => return Err(parse_err(lineno, format!("unknown line type `{tok}`"))),
            None => {}
        }
    }
    let n = n.ok_or_else(|| parse_err(0, "missing problem line"))?;
    if arcs.len() != declared_arcs {
        return Err(parse_err(
            0,
            format!("declared {declared_arcs} arcs, found {}", arcs.len()),
        ));
    }
    // Fold (u,v,w)/(v,u,w) pairs into undirected edges: sort canonical forms
    // and take every pair; odd occurrences stay as single edges.
    let mut canon: Vec<Edge> = arcs.iter().map(|e| e.canonical()).collect();
    canon.sort_by_key(|e| (e.u, e.v, e.w));
    let mut edges = Vec::with_capacity(canon.len() / 2 + 1);
    let mut i = 0;
    while i < canon.len() {
        let e = canon[i];
        if i + 1 < canon.len() && canon[i + 1] == e {
            edges.push(e);
            i += 2;
        } else {
            edges.push(e);
            i += 1;
        }
    }
    Ok(EdgeList { n, edges })
}

/// Writes an [`EdgeList`] in `.gr` form (each undirected edge as two arcs,
/// the challenge convention).
pub fn write_gr<W: Write>(mut writer: W, el: &EdgeList, comment: &str) -> io::Result<()> {
    if !comment.is_empty() {
        for line in comment.lines() {
            writeln!(writer, "c {line}")?;
        }
    }
    writeln!(writer, "p sp {} {}", el.n, 2 * el.m())?;
    for e in &el.edges {
        writeln!(writer, "a {} {} {}", e.u + 1, e.v + 1, e.w)?;
        writeln!(writer, "a {} {} {}", e.v + 1, e.u + 1, e.w)?;
    }
    Ok(())
}

/// Reads a challenge `.ss` auxiliary file: the query sources for an SSSP
/// benchmark run (`p aux sp ss <k>` header, then `s <id>` lines, 1-based).
pub fn read_sources<R: BufRead>(reader: R, n: usize) -> Result<Vec<VertexId>, GrError> {
    let mut declared: Option<usize> = None;
    let mut sources = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("c") => {}
            Some("p") => {
                let rest: Vec<&str> = it.collect();
                if rest.len() != 4 || rest[0] != "aux" || rest[1] != "sp" || rest[2] != "ss" {
                    return Err(parse_err(lineno, "expected `p aux sp ss <k>`"));
                }
                declared = rest[3].parse().ok();
                if declared.is_none() {
                    return Err(parse_err(lineno, "bad source count"));
                }
            }
            Some("s") => {
                let id: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad source id"))?;
                if id == 0 || id as usize > n {
                    return Err(parse_err(lineno, "source id out of range"));
                }
                sources.push((id - 1) as VertexId);
            }
            Some(tok) => return Err(parse_err(lineno, format!("unknown line type `{tok}`"))),
            None => {}
        }
    }
    match declared {
        Some(k) if k != sources.len() => Err(parse_err(
            0,
            format!("declared {k} sources, found {}", sources.len()),
        )),
        None => Err(parse_err(0, "missing `p aux sp ss` line")),
        _ => Ok(sources),
    }
}

/// Writes a challenge `.ss` source file.
pub fn write_sources<W: Write>(mut writer: W, sources: &[VertexId]) -> io::Result<()> {
    writeln!(writer, "p aux sp ss {}", sources.len())?;
    for &s in sources {
        writeln!(writer, "s {}", s + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_canon(el: &EdgeList) -> Vec<Edge> {
        let mut v: Vec<Edge> = el.edges.iter().map(|e| e.canonical()).collect();
        v.sort_by_key(|e| (e.u, e.v, e.w));
        v
    }

    #[test]
    fn round_trip() {
        let el = EdgeList::from_triples(4, [(0, 1, 5), (1, 2, 7), (3, 3, 2), (0, 1, 5)]);
        let mut buf = Vec::new();
        write_gr(&mut buf, &el, "test graph\nsecond line").unwrap();
        let back = read_gr(&buf[..]).unwrap();
        assert_eq!(back.n, 4);
        assert_eq!(sorted_canon(&back), sorted_canon(&el));
    }

    #[test]
    fn reads_reference_syntax() {
        let text = "c demo\np sp 3 4\na 1 2 10\na 2 1 10\na 2 3 4\na 3 2 4\n";
        let el = read_gr(text.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.m(), 2);
        assert_eq!(
            sorted_canon(&el),
            vec![Edge::new(0, 1, 10), Edge::new(1, 2, 4)]
        );
    }

    #[test]
    fn one_directional_arc_becomes_edge() {
        let text = "p sp 2 1\na 1 2 3\n";
        let el = read_gr(text.as_bytes()).unwrap();
        assert_eq!(el.m(), 1);
        assert_eq!(el.edges[0], Edge::new(0, 1, 3));
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(read_gr("a 1 2 3\n".as_bytes()).is_err());
        assert!(read_gr("c only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_and_garbage() {
        assert!(read_gr("p sp 2 1\na 1 3 5\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 1\na 0 1 5\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 1\na 1 2 x\n".as_bytes()).is_err());
        assert!(read_gr("q sp 2 1\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 2\na 1 2 3\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 0\np sp 2 0\n".as_bytes()).is_err());
    }

    #[test]
    fn truncated_header_is_a_typed_parse_error() {
        // `p sp <n>` with the arc count cut off mid-line.
        let err = read_gr("p sp 10\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 1, ref msg } if msg.contains("arc count")),
            "{err}"
        );
        // `p sp` with nothing after it.
        let err = read_gr("p sp\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 1, .. }), "{err}");
        // `p` alone is not `p sp`.
        let err = read_gr("p\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn arc_before_problem_line_is_a_typed_parse_error() {
        let err = read_gr("c header\na 1 2 3\np sp 3 1\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains("problem line")),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_vertex_ids_are_typed_parse_errors() {
        // Head beyond n.
        let err = read_gr("p sp 3 1\na 1 4 2\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains("out of range")),
            "{err}"
        );
        // Id 0 in a 1-based format.
        let err = read_gr("p sp 3 1\na 0 2 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 2, .. }), "{err}");
        // An id too large for u64 parses as a bad token, not a panic.
        let err = read_gr("p sp 3 1\na 99999999999999999999999 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn truncated_arc_lines_are_typed_parse_errors() {
        for (text, what) in [
            ("p sp 3 1\na 1\n", "head"),
            ("p sp 3 1\na 1 2\n", "weight"),
            ("p sp 3 1\na\n", "tail"),
        ] {
            let err = read_gr(text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains(what)),
                "{text:?}: {err}"
            );
        }
    }

    #[test]
    fn error_display_mentions_line() {
        let err = read_gr("p sp 2 1\na 9 9 9\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "{text}");
    }

    #[test]
    fn sources_round_trip() {
        let sources = vec![0u32, 5, 2, 5];
        let mut buf = Vec::new();
        write_sources(&mut buf, &sources).unwrap();
        let back = read_sources(&buf[..], 6).unwrap();
        assert_eq!(back, sources);
    }

    #[test]
    fn sources_reject_bad_input() {
        assert!(read_sources("s 1\n".as_bytes(), 5).is_err()); // no header
        assert!(read_sources("p aux sp ss 2\ns 1\n".as_bytes(), 5).is_err()); // count
        assert!(read_sources("p aux sp ss 1\ns 9\n".as_bytes(), 5).is_err()); // range
        assert!(read_sources("p aux sp ss 1\ns 0\n".as_bytes(), 5).is_err()); // 1-based
        assert!(read_sources("p aux sp wrong 1\n".as_bytes(), 5).is_err());
        // comments and blank lines are fine
        let ok = read_sources("c hi\n\np aux sp ss 1\ns 3\n".as_bytes(), 5).unwrap();
        assert_eq!(ok, vec![2]);
    }
}
