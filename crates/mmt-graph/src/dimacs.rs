//! 9th DIMACS Implementation Challenge `.gr` format support.
//!
//! The challenge format (the one the paper's instances and reference solver
//! speak) is line-oriented ASCII:
//!
//! ```text
//! c  comment
//! p  sp <n> <m>
//! a  <u> <v> <w>      (1-based vertex ids; one line per arc)
//! ```
//!
//! The challenge generators emit each undirected edge as a *pair* of arcs;
//! writers here do the same, and the reader folds arc pairs back into
//! undirected edges (keeping genuinely asymmetric inputs as parallel edges,
//! which is the safe interpretation for an undirected solver).

use crate::types::{Edge, EdgeList, VertexId, Weight};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the `.gr` reader.
#[derive(Debug)]
pub enum GrError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file, with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },
    /// The file ended with fewer arcs than the problem line declared —
    /// the signature of a truncated download or interrupted write.
    Truncated {
        /// Arcs the `p sp` line promised.
        declared: usize,
        /// Arcs actually present.
        found: usize,
    },
    /// An arc weight parses as an integer but does not fit the 32-bit
    /// weight type.
    WeightOverflow {
        /// 1-based line number of the offending arc.
        line: usize,
        /// The overflowing value.
        value: u64,
    },
}

impl std::fmt::Display for GrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrError::Io(e) => write!(f, "io error: {e}"),
            GrError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            GrError::Truncated { declared, found } => write!(
                f,
                "truncated input: declared {declared} arcs, found only {found}"
            ),
            GrError::WeightOverflow { line, value } => write!(
                f,
                "line {line}: weight {value} overflows the 32-bit weight type"
            ),
        }
    }
}

impl std::error::Error for GrError {}

impl From<io::Error> for GrError {
    fn from(e: io::Error) -> Self {
        GrError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> GrError {
    GrError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Longest accepted input line, in bytes. Arc lines are tens of bytes,
/// so the bound only rejects corrupt input (e.g. a newline-free binary
/// blob) that would otherwise be buffered wholesale.
const MAX_LINE_BYTES: u64 = 4096;

/// Reads one `\n`-terminated line into `buf` (cleared first), refusing
/// lines longer than [`MAX_LINE_BYTES`]. Returns the bytes read; `0`
/// means end of input.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    buf: &mut String,
    lineno: usize,
) -> Result<usize, GrError> {
    buf.clear();
    let read = reader.by_ref().take(MAX_LINE_BYTES).read_line(buf)?;
    if read as u64 == MAX_LINE_BYTES && !buf.ends_with('\n') {
        return Err(parse_err(
            lineno,
            format!("line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    Ok(read)
}

/// What one validating scan of a `.gr` stream established.
struct GrScan {
    n: usize,
    arcs_found: usize,
}

/// Scans a `.gr` stream line by line with a bounded buffer, handing each
/// parsed arc to `on_arc`. Validates everything the format promises:
/// header shape, 1-based vertex ranges, 32-bit weights
/// ([`GrError::WeightOverflow`]), and the declared arc count
/// ([`GrError::Truncated`] when the file ends early).
fn scan_gr<R: BufRead>(reader: &mut R, mut on_arc: impl FnMut(Edge)) -> Result<GrScan, GrError> {
    let mut n: Option<usize> = None;
    let mut declared_arcs = 0usize;
    let mut arcs_found = 0usize;
    let mut buf = String::with_capacity(128);
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        if read_line_bounded(reader, &mut buf, lineno)? == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("c") => {}
            Some("p") => {
                if n.is_some() {
                    return Err(parse_err(lineno, "duplicate problem line"));
                }
                if it.next() != Some("sp") {
                    return Err(parse_err(lineno, "expected `p sp <n> <m>`"));
                }
                let nv: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad vertex count"))?;
                declared_arcs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad arc count"))?;
                n = Some(nv);
            }
            Some("a") => {
                let n = n.ok_or_else(|| parse_err(lineno, "arc before problem line"))?;
                let u: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad tail"))?;
                let v: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad head"))?;
                let w: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad weight"))?;
                if u == 0 || v == 0 || u as usize > n || v as usize > n {
                    return Err(parse_err(
                        lineno,
                        "vertex id out of range (ids are 1-based)",
                    ));
                }
                if w > Weight::MAX as u64 {
                    return Err(GrError::WeightOverflow {
                        line: lineno,
                        value: w,
                    });
                }
                arcs_found += 1;
                on_arc(Edge::new(
                    (u - 1) as VertexId,
                    (v - 1) as VertexId,
                    w as Weight,
                ));
            }
            Some(tok) => return Err(parse_err(lineno, format!("unknown line type `{tok}`"))),
            None => {}
        }
    }
    let n = n.ok_or_else(|| parse_err(0, "missing problem line"))?;
    if arcs_found < declared_arcs {
        return Err(GrError::Truncated {
            declared: declared_arcs,
            found: arcs_found,
        });
    }
    if arcs_found > declared_arcs {
        return Err(parse_err(
            0,
            format!("declared {declared_arcs} arcs, found {arcs_found}"),
        ));
    }
    Ok(GrScan { n, arcs_found })
}

/// Folds (u,v,w)/(v,u,w) arc pairs into undirected edges, in place: sort
/// canonical forms and take every pair; odd occurrences stay as single
/// edges (the safe interpretation of asymmetric input for an undirected
/// solver).
fn fold_symmetric(arcs: &mut Vec<Edge>) {
    for e in arcs.iter_mut() {
        *e = e.canonical();
    }
    arcs.sort_by_key(|e| (e.u, e.v, e.w));
    let mut write = 0;
    let mut i = 0;
    while i < arcs.len() {
        let e = arcs[i];
        let step = if i + 1 < arcs.len() && arcs[i + 1] == e {
            2
        } else {
            1
        };
        arcs[write] = e;
        write += 1;
        i += step;
    }
    arcs.truncate(write);
}

/// Reads a `.gr` file into an [`EdgeList`], folding symmetric arc pairs into
/// single undirected edges.
pub fn read_gr<R: BufRead>(mut reader: R) -> Result<EdgeList, GrError> {
    let mut arcs: Vec<Edge> = Vec::new();
    let scan = scan_gr(&mut reader, |e| arcs.push(e))?;
    fold_symmetric(&mut arcs);
    Ok(EdgeList {
        n: scan.n,
        edges: arcs,
    })
}

/// Files at least this large take the two-pass streaming path in
/// [`read_gr_path`].
pub const STREAM_THRESHOLD_BYTES: u64 = 64 << 20;

/// Reads a `.gr` file in two streaming passes: the first validates the
/// entire file (so a truncated tail or overflowing weight is reported
/// before any arc storage is committed) and counts arcs; the second
/// collects them into one exact-capacity allocation. Peak memory is the
/// folded arc array plus one bounded line buffer — never the file text.
pub fn read_gr_streaming<P: AsRef<Path>>(path: P) -> Result<EdgeList, GrError> {
    let path = path.as_ref();
    let mut reader = BufReader::new(File::open(path)?);
    let scan = scan_gr(&mut reader, |_| {})?;
    let mut arcs: Vec<Edge> = Vec::with_capacity(scan.arcs_found);
    let mut reader = BufReader::new(File::open(path)?);
    let rescan = scan_gr(&mut reader, |e| arcs.push(e))?;
    if rescan.n != scan.n || arcs.len() != scan.arcs_found {
        return Err(parse_err(0, "file changed between validation and read"));
    }
    fold_symmetric(&mut arcs);
    Ok(EdgeList {
        n: scan.n,
        edges: arcs,
    })
}

/// Builds a [`CsrGraph`](crate::CsrGraph) directly from a `.gr` source,
/// without ever materialising the intermediate [`EdgeList`].
///
/// `open` is called once per pass (twice total) and must yield a fresh
/// reader over the same bytes — a fresh [`BufReader`] over the file, or a
/// slice for in-memory input. Pass one validates the whole stream (so a
/// [`GrError::Truncated`] tail or [`GrError::WeightOverflow`] is reported
/// before any arc storage is committed) and counts canonical-tail degrees;
/// pass two places each arc's `(other endpoint, weight)` into an
/// exact-capacity per-vertex staging area, which is then sorted and
/// pair-folded in place and scattered into the final CSR arrays.
///
/// Peak memory is the 8-byte-per-arc staging area plus the final CSR —
/// never the 12-byte-per-arc raw [`Edge`] array plus a retained edge list
/// that the `read_gr`-then-`from_edge_list` route holds live together.
///
/// The result is **identical** (field for field) to
/// `CsrGraph::from_edge_list(&read_gr(..)?)`: the staged fold reproduces
/// [`read_gr`]'s symmetric-pair semantics (arc pairs collapse to one
/// undirected edge, odd occurrences survive) and the per-bucket sorted
/// placement reproduces `from_edge_list`'s adjacency order exactly. The
/// property suite in `tests/prop.rs` holds the two paths equal — errors
/// included — over seeded corpora.
pub fn read_gr_csr<R: BufRead>(
    mut open: impl FnMut() -> Result<R, GrError>,
) -> Result<crate::CsrGraph, GrError> {
    // Pass 1: validate + count arcs per canonical tail (min endpoint).
    // The vertex count arrives mid-scan (on the problem line), so the
    // degree array grows on demand and is right-sized afterwards.
    let mut stage_deg: Vec<u64> = Vec::new();
    let scan = scan_gr(&mut open()?, |e| {
        let a = e.u.min(e.v) as usize;
        if stage_deg.len() < a + 2 {
            stage_deg.resize(a + 2, 0);
        }
        stage_deg[a + 1] += 1;
    })?;
    let n = scan.n;
    stage_deg.resize(n + 1, 0);
    for i in 0..n {
        stage_deg[i + 1] += stage_deg[i];
    }
    let stage_off = stage_deg;

    // Pass 2: place each arc as (max endpoint, weight) at its canonical
    // tail's cursor. A file that changed between passes can only misplace
    // within bounds; the flag (plus the scan totals) turns any drift into
    // a typed error instead of a bogus graph.
    let mut stage: Vec<(VertexId, Weight)> = vec![(0, 0); scan.arcs_found];
    let mut cursor: Vec<u64> = stage_off[..n].to_vec();
    let mut drifted = false;
    let rescan = scan_gr(&mut open()?, |e| {
        let (a, b) = if e.u <= e.v { (e.u, e.v) } else { (e.v, e.u) };
        let ai = a as usize;
        if ai + 1 >= stage_off.len() || cursor[ai] >= stage_off[ai + 1] {
            drifted = true;
            return;
        }
        stage[cursor[ai] as usize] = (b, e.w);
        cursor[ai] += 1;
    })?;
    if drifted || rescan.n != n || rescan.arcs_found != scan.arcs_found {
        return Err(parse_err(0, "file changed between validation and read"));
    }

    // Sort each canonical bucket by (other, weight) and fold identical
    // pairs in place — bucket-by-bucket this is exactly `fold_symmetric`'s
    // global (u, v, w) order. Folded degrees charge both endpoints (a
    // self loop charges its vertex twice), matching `CsrGraph` placement.
    let mut fdeg = vec![0u64; n + 1];
    let mut fold_off = vec![0usize; n + 1];
    let mut write = 0usize;
    let mut max_weight: Weight = 0;
    for a in 0..n {
        let (lo, hi) = (stage_off[a] as usize, stage_off[a + 1] as usize);
        stage[lo..hi].sort_unstable();
        fold_off[a] = write;
        let mut i = lo;
        while i < hi {
            let e = stage[i];
            i += if i + 1 < hi && stage[i + 1] == e {
                2
            } else {
                1
            };
            stage[write] = e;
            write += 1;
            fdeg[a + 1] += 1;
            fdeg[e.0 as usize + 1] += 1;
            max_weight = max_weight.max(e.1);
        }
    }
    fold_off[n] = write;

    // Final CSR: prefix-sum the folded degrees and scatter every folded
    // edge at both endpoints, in the same order `CsrGraph::build` walks
    // its (sorted) edge list.
    for i in 0..n {
        fdeg[i + 1] += fdeg[i];
    }
    let offsets = fdeg;
    let dm = offsets[n] as usize;
    let mut targets = vec![0 as VertexId; dm];
    let mut weights = vec![0 as Weight; dm];
    let mut cur: Vec<u64> = offsets[..n].to_vec();
    for a in 0..n {
        for &(b, w) in &stage[fold_off[a]..fold_off[a + 1]] {
            let ca = cur[a] as usize;
            targets[ca] = b;
            weights[ca] = w;
            cur[a] += 1;
            let cb = cur[b as usize] as usize;
            targets[cb] = a as VertexId;
            weights[cb] = w;
            cur[b as usize] += 1;
        }
    }
    Ok(crate::CsrGraph::from_parts(
        offsets, targets, weights, n, write, max_weight,
    ))
}

/// [`read_gr_csr`] over a file path: the on-the-fly CSR route for DIMACS
/// instances too large to hold as an edge list next to their CSR.
pub fn read_gr_csr_path<P: AsRef<Path>>(path: P) -> Result<crate::CsrGraph, GrError> {
    let path = path.as_ref();
    read_gr_csr(|| Ok(BufReader::new(File::open(path)?)))
}

/// Reads a `.gr` file from disk, choosing the in-memory single-pass
/// reader for small files and the two-pass streaming reader (bounded
/// buffers, exact-capacity arc storage) for files of at least
/// [`STREAM_THRESHOLD_BYTES`]. Both paths parse identically.
pub fn read_gr_path<P: AsRef<Path>>(path: P) -> Result<EdgeList, GrError> {
    read_gr_path_with_threshold(path, STREAM_THRESHOLD_BYTES)
}

/// [`read_gr_path`] with an explicit streaming threshold (exposed so
/// tests can force either path on small files).
pub fn read_gr_path_with_threshold<P: AsRef<Path>>(
    path: P,
    threshold: u64,
) -> Result<EdgeList, GrError> {
    let path = path.as_ref();
    if std::fs::metadata(path)?.len() >= threshold {
        read_gr_streaming(path)
    } else {
        read_gr(BufReader::new(File::open(path)?))
    }
}

/// Writes an [`EdgeList`] in `.gr` form (each undirected edge as two arcs,
/// the challenge convention).
pub fn write_gr<W: Write>(mut writer: W, el: &EdgeList, comment: &str) -> io::Result<()> {
    if !comment.is_empty() {
        for line in comment.lines() {
            writeln!(writer, "c {line}")?;
        }
    }
    writeln!(writer, "p sp {} {}", el.n, 2 * el.m())?;
    for e in &el.edges {
        writeln!(writer, "a {} {} {}", e.u + 1, e.v + 1, e.w)?;
        writeln!(writer, "a {} {} {}", e.v + 1, e.u + 1, e.w)?;
    }
    Ok(())
}

/// Reads a challenge `.ss` auxiliary file: the query sources for an SSSP
/// benchmark run (`p aux sp ss <k>` header, then `s <id>` lines, 1-based).
pub fn read_sources<R: BufRead>(reader: R, n: usize) -> Result<Vec<VertexId>, GrError> {
    let mut declared: Option<usize> = None;
    let mut sources = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        match it.next() {
            Some("c") => {}
            Some("p") => {
                let rest: Vec<&str> = it.collect();
                if rest.len() != 4 || rest[0] != "aux" || rest[1] != "sp" || rest[2] != "ss" {
                    return Err(parse_err(lineno, "expected `p aux sp ss <k>`"));
                }
                declared = rest[3].parse().ok();
                if declared.is_none() {
                    return Err(parse_err(lineno, "bad source count"));
                }
            }
            Some("s") => {
                let id: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err(lineno, "bad source id"))?;
                if id == 0 || id as usize > n {
                    return Err(parse_err(lineno, "source id out of range"));
                }
                sources.push((id - 1) as VertexId);
            }
            Some(tok) => return Err(parse_err(lineno, format!("unknown line type `{tok}`"))),
            None => {}
        }
    }
    match declared {
        Some(k) if k != sources.len() => Err(parse_err(
            0,
            format!("declared {k} sources, found {}", sources.len()),
        )),
        None => Err(parse_err(0, "missing `p aux sp ss` line")),
        _ => Ok(sources),
    }
}

/// Writes a challenge `.ss` source file.
pub fn write_sources<W: Write>(mut writer: W, sources: &[VertexId]) -> io::Result<()> {
    writeln!(writer, "p aux sp ss {}", sources.len())?;
    for &s in sources {
        writeln!(writer, "s {}", s + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_canon(el: &EdgeList) -> Vec<Edge> {
        let mut v: Vec<Edge> = el.edges.iter().map(|e| e.canonical()).collect();
        v.sort_by_key(|e| (e.u, e.v, e.w));
        v
    }

    #[test]
    fn round_trip() {
        let el = EdgeList::from_triples(4, [(0, 1, 5), (1, 2, 7), (3, 3, 2), (0, 1, 5)]);
        let mut buf = Vec::new();
        write_gr(&mut buf, &el, "test graph\nsecond line").unwrap();
        let back = read_gr(&buf[..]).unwrap();
        assert_eq!(back.n, 4);
        assert_eq!(sorted_canon(&back), sorted_canon(&el));
    }

    #[test]
    fn reads_reference_syntax() {
        let text = "c demo\np sp 3 4\na 1 2 10\na 2 1 10\na 2 3 4\na 3 2 4\n";
        let el = read_gr(text.as_bytes()).unwrap();
        assert_eq!(el.n, 3);
        assert_eq!(el.m(), 2);
        assert_eq!(
            sorted_canon(&el),
            vec![Edge::new(0, 1, 10), Edge::new(1, 2, 4)]
        );
    }

    #[test]
    fn one_directional_arc_becomes_edge() {
        let text = "p sp 2 1\na 1 2 3\n";
        let el = read_gr(text.as_bytes()).unwrap();
        assert_eq!(el.m(), 1);
        assert_eq!(el.edges[0], Edge::new(0, 1, 3));
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(read_gr("a 1 2 3\n".as_bytes()).is_err());
        assert!(read_gr("c only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_and_garbage() {
        assert!(read_gr("p sp 2 1\na 1 3 5\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 1\na 0 1 5\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 1\na 1 2 x\n".as_bytes()).is_err());
        assert!(read_gr("q sp 2 1\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 2\na 1 2 3\n".as_bytes()).is_err());
        assert!(read_gr("p sp 2 0\np sp 2 0\n".as_bytes()).is_err());
    }

    #[test]
    fn truncated_header_is_a_typed_parse_error() {
        // `p sp <n>` with the arc count cut off mid-line.
        let err = read_gr("p sp 10\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 1, ref msg } if msg.contains("arc count")),
            "{err}"
        );
        // `p sp` with nothing after it.
        let err = read_gr("p sp\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 1, .. }), "{err}");
        // `p` alone is not `p sp`.
        let err = read_gr("p\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn arc_before_problem_line_is_a_typed_parse_error() {
        let err = read_gr("c header\na 1 2 3\np sp 3 1\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains("problem line")),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_vertex_ids_are_typed_parse_errors() {
        // Head beyond n.
        let err = read_gr("p sp 3 1\na 1 4 2\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains("out of range")),
            "{err}"
        );
        // Id 0 in a 1-based format.
        let err = read_gr("p sp 3 1\na 0 2 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 2, .. }), "{err}");
        // An id too large for u64 parses as a bad token, not a panic.
        let err = read_gr("p sp 3 1\na 99999999999999999999999 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GrError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn truncated_arc_lines_are_typed_parse_errors() {
        for (text, what) in [
            ("p sp 3 1\na 1\n", "head"),
            ("p sp 3 1\na 1 2\n", "weight"),
            ("p sp 3 1\na\n", "tail"),
        ] {
            let err = read_gr(text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains(what)),
                "{text:?}: {err}"
            );
        }
    }

    #[test]
    fn error_display_mentions_line() {
        let err = read_gr("p sp 2 1\na 9 9 9\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "{text}");
    }

    /// A self-deleting temp file holding `contents`.
    struct TempGr(std::path::PathBuf);

    impl TempGr {
        fn new(tag: &str, contents: &[u8]) -> Self {
            let path =
                std::env::temp_dir().join(format!("mmt-dimacs-{}-{tag}.gr", std::process::id()));
            std::fs::write(&path, contents).unwrap();
            Self(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempGr {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn streaming_reader_matches_in_memory_reader() {
        // A workload with duplicate edges and self-loops exercises the
        // fold; both readers must agree byte for byte on the result.
        let el = EdgeList::from_triples(
            6,
            [
                (0, 1, 5),
                (1, 2, 7),
                (3, 3, 2),
                (0, 1, 5),
                (4, 5, 1),
                (2, 4, 9),
            ],
        );
        let mut buf = Vec::new();
        write_gr(&mut buf, &el, "streaming equality fixture").unwrap();
        let file = TempGr::new("stream-eq", &buf);
        let in_memory = read_gr(&buf[..]).unwrap();
        let streamed = read_gr_streaming(file.path()).unwrap();
        assert_eq!(streamed.n, in_memory.n);
        assert_eq!(sorted_canon(&streamed), sorted_canon(&in_memory));
        // And the CSR built from either is identical.
        let a = crate::CsrGraph::from_edge_list(&in_memory);
        let b = crate::CsrGraph::from_edge_list(&streamed);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        for v in 0..a.n() as VertexId {
            let (ha, wa) = a.neighbors(v);
            let (hb, wb) = b.neighbors(v);
            let mut na: Vec<_> = ha.iter().zip(wa).collect();
            let mut nb: Vec<_> = hb.iter().zip(wb).collect();
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "vertex {v}");
        }
    }

    #[test]
    fn csr_builder_is_identical_to_the_edge_list_route() {
        // Self loops, duplicate edges, and an isolated vertex — the cases
        // where fold/placement order could drift. `CsrGraph` derives `Eq`,
        // so identity here means field-for-field identity.
        let el = EdgeList::from_triples(
            7,
            [
                (0, 1, 5),
                (1, 2, 7),
                (3, 3, 2),
                (0, 1, 5),
                (4, 5, 1),
                (2, 4, 9),
                (2, 4, 9),
            ],
        );
        let mut buf = Vec::new();
        write_gr(&mut buf, &el, "csr identity fixture").unwrap();
        let via_edge_list = crate::CsrGraph::from_edge_list(&read_gr(&buf[..]).unwrap());
        let direct = read_gr_csr(|| Ok(buf.as_slice())).unwrap();
        assert_eq!(direct, via_edge_list);
        let file = TempGr::new("csr-direct", &buf);
        assert_eq!(read_gr_csr_path(file.path()).unwrap(), via_edge_list);
    }

    #[test]
    fn csr_builder_handles_asymmetric_arcs() {
        // One-directional and odd-multiplicity arcs: the fold must keep
        // the odd survivor exactly like the edge-list route does.
        let text = b"p sp 4 5\na 1 2 3\na 3 2 8\na 2 3 8\na 2 3 8\na 4 4 1\n";
        let via_edge_list = crate::CsrGraph::from_edge_list(&read_gr(&text[..]).unwrap());
        let direct = read_gr_csr(|| Ok(&text[..])).unwrap();
        assert_eq!(direct, via_edge_list);
    }

    #[test]
    fn csr_builder_reports_the_same_typed_errors() {
        let truncated = b"p sp 3 4\na 1 2 10\na 2 1 10\n";
        let err = read_gr_csr(|| Ok(&truncated[..])).unwrap_err();
        assert!(
            matches!(
                err,
                GrError::Truncated {
                    declared: 4,
                    found: 2
                }
            ),
            "{err}"
        );
        let overflow = b"p sp 2 1\na 1 2 4294967296\n";
        let err = read_gr_csr(|| Ok(&overflow[..])).unwrap_err();
        assert!(
            matches!(
                err,
                GrError::WeightOverflow {
                    line: 2,
                    value: 4294967296
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn csr_builder_detects_input_changing_between_passes() {
        // The second pass sees fewer arcs than the validated first pass —
        // the moral equivalent of a file rewritten mid-read.
        let full = b"p sp 3 2\na 1 2 4\na 2 3 5\n";
        let short = b"p sp 3 2\na 1 2 4\n";
        let mut call = 0;
        let err = read_gr_csr(|| {
            call += 1;
            Ok(if call == 1 { &full[..] } else { &short[..] })
        })
        .unwrap_err();
        // The rescan itself reports the missing arc as truncation — either
        // typed shape is acceptable, silent drift is not.
        assert!(
            matches!(err, GrError::Truncated { .. } | GrError::Parse { .. }),
            "{err}"
        );
    }

    #[test]
    fn read_gr_path_takes_both_routes() {
        let el = EdgeList::from_triples(3, [(0, 1, 4), (1, 2, 6)]);
        let mut buf = Vec::new();
        write_gr(&mut buf, &el, "").unwrap();
        let file = TempGr::new("both-routes", &buf);
        // Threshold 0: every file streams. Threshold u64::MAX: none does.
        let streamed = read_gr_path_with_threshold(file.path(), 0).unwrap();
        let buffered = read_gr_path_with_threshold(file.path(), u64::MAX).unwrap();
        assert_eq!(sorted_canon(&streamed), sorted_canon(&buffered));
        assert_eq!(
            sorted_canon(&read_gr_path(file.path()).unwrap()),
            sorted_canon(&el)
        );
    }

    #[test]
    fn truncated_file_is_a_typed_error_on_both_paths() {
        // Declares 4 arcs, delivers 2 — a cut-off download.
        let text = b"p sp 3 4\na 1 2 10\na 2 1 10\n";
        let err = read_gr(&text[..]).unwrap_err();
        assert!(
            matches!(
                err,
                GrError::Truncated {
                    declared: 4,
                    found: 2
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("truncated"), "{err}");
        let file = TempGr::new("truncated", text);
        let err = read_gr_streaming(file.path()).unwrap_err();
        assert!(matches!(err, GrError::Truncated { .. }), "{err}");
    }

    #[test]
    fn weight_overflow_is_a_typed_error_on_both_paths() {
        // 2^32 does not fit the 32-bit weight type.
        let text = b"p sp 2 1\na 1 2 4294967296\n";
        let err = read_gr(&text[..]).unwrap_err();
        assert!(
            matches!(
                err,
                GrError::WeightOverflow {
                    line: 2,
                    value: 4294967296
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("overflows"), "{err}");
        let file = TempGr::new("overflow", text);
        let err = read_gr_streaming(file.path()).unwrap_err();
        assert!(matches!(err, GrError::WeightOverflow { .. }), "{err}");
        // u32::MAX itself is fine.
        let ok = read_gr(&b"p sp 2 1\na 1 2 4294967295\n"[..]).unwrap();
        assert_eq!(ok.edges[0].w, u32::MAX);
    }

    #[test]
    fn unbounded_line_is_rejected_not_buffered() {
        // A newline-free blob longer than the line bound must fail with a
        // typed parse error instead of being slurped into memory.
        let mut text = b"p sp 2 1\nc ".to_vec();
        text.extend(std::iter::repeat_n(b'x', 2 * MAX_LINE_BYTES as usize));
        let err = read_gr(&text[..]).unwrap_err();
        assert!(
            matches!(err, GrError::Parse { line: 2, ref msg } if msg.contains("exceeds")),
            "{err}"
        );
    }

    #[test]
    fn sources_round_trip() {
        let sources = vec![0u32, 5, 2, 5];
        let mut buf = Vec::new();
        write_sources(&mut buf, &sources).unwrap();
        let back = read_sources(&buf[..], 6).unwrap();
        assert_eq!(back, sources);
    }

    #[test]
    fn sources_reject_bad_input() {
        assert!(read_sources("s 1\n".as_bytes(), 5).is_err()); // no header
        assert!(read_sources("p aux sp ss 2\ns 1\n".as_bytes(), 5).is_err()); // count
        assert!(read_sources("p aux sp ss 1\ns 9\n".as_bytes(), 5).is_err()); // range
        assert!(read_sources("p aux sp ss 1\ns 0\n".as_bytes(), 5).is_err()); // 1-based
        assert!(read_sources("p aux sp wrong 1\n".as_bytes(), 5).is_err());
        // comments and blank lines are fine
        let ok = read_sources("c hi\n\np aux sp ss 1\ns 3\n".as_bytes(), 5).unwrap();
        assert_eq!(ok, vec![2]);
    }
}
