//! Owned arc partitions: per-worker contiguous vertex ranges balanced by
//! arc count.
//!
//! The topology-aware stepping kernels give each worker *exclusive
//! ownership* of a contiguous slice of the vertex space — and, because a
//! CSR stores a vertex's arcs contiguously, of the corresponding
//! contiguous range of the arc array. During a relax phase a worker walks
//! only arcs it owns, so its adjacency reads stream through the same arc
//! pages query after query and its bin pushes stay in its own lane (the
//! `FrontierBins::scatter_owned` discipline). Ownership changes *where*
//! arcs are relaxed, never *whether*: distance writes still go through
//! the shared `fetch_min` fixpoint, which is what preserves the 1-vs-N
//! determinism guarantee.
//!
//! [`ArcPartition`] computes the ranges (degree-prefix balancing, the
//! standard CSR work split); [`PartitionedCsr`] bundles a partition with
//! any [`SplitAdjacency`] so kernels accept "adjacency + ownership" as
//! one value behind the same trait.

use crate::arena::{CompactCertified, SplitAdjacency};
use crate::types::{VertexId, Weight};
use std::ops::Range;

/// A partition of the vertex space (equivalently: of the CSR arc array)
/// into contiguous per-lane ranges, balanced by arc count.
///
/// Invariants, checked in debug builds and by the proptest suite: the
/// ranges tile `[0, n)` in order — every vertex (hence every arc) is
/// owned by exactly one lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArcPartition {
    /// `lanes + 1` ascending vertex boundaries; lane `i` owns
    /// `starts[i]..starts[i + 1]`.
    starts: Vec<u32>,
}

impl ArcPartition {
    /// Partitions `split`'s vertex space into `lanes` ranges (clamped to
    /// ≥ 1) so each range holds as close to `num_arcs / lanes` arcs as a
    /// contiguous vertex split allows. Deterministic: depends only on the
    /// degree sequence and `lanes`.
    pub fn new<S: SplitAdjacency>(split: &S, lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let n = split.n();
        let total = split.num_arcs() as u64;
        let mut starts = Vec::with_capacity(lanes + 1);
        starts.push(0u32);
        let mut acc = 0u64;
        let mut v = 0usize;
        for lane in 1..lanes {
            // Advance until this lane's arc share is met; an empty suffix
            // leaves the remaining lanes empty rather than unbalanced.
            let target = total * lane as u64 / lanes as u64;
            while v < n && acc < target {
                acc += split.degree(v as VertexId) as u64;
                v += 1;
            }
            starts.push(v as u32);
        }
        starts.push(n as u32);
        debug_assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        Self { starts }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.starts.len() - 1
    }

    /// The vertex range lane `lane` owns.
    #[inline]
    pub fn range(&self, lane: usize) -> Range<VertexId> {
        self.starts[lane]..self.starts[lane + 1]
    }

    /// The lane owning vertex `v` (callers keep `v < n`).
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        // Boundaries are ascending; the owner is the last lane whose
        // start is ≤ v. Empty lanes share a boundary and never win.
        (self.starts.partition_point(|&s| s <= v) - 1).min(self.lanes() - 1)
    }
}

/// A [`SplitAdjacency`] paired with the [`ArcPartition`] its workers own
/// — the value the partitioned stepping kernels take. Pure delegation on
/// the adjacency side; [`CompactCertified`] passes through, so a compact
/// view stays compact when partitioned.
#[derive(Debug)]
pub struct PartitionedCsr<'a, S: SplitAdjacency> {
    split: &'a S,
    partition: ArcPartition,
}

impl<'a, S: SplitAdjacency> PartitionedCsr<'a, S> {
    /// Partitions `split` for `lanes` workers.
    pub fn new(split: &'a S, lanes: usize) -> Self {
        Self {
            split,
            partition: ArcPartition::new(split, lanes),
        }
    }

    /// The ownership map.
    #[inline]
    pub fn partition(&self) -> &ArcPartition {
        &self.partition
    }

    /// The underlying adjacency.
    #[inline]
    pub fn split(&self) -> &'a S {
        self.split
    }
}

impl<S: SplitAdjacency> SplitAdjacency for PartitionedCsr<'_, S> {
    fn n(&self) -> usize {
        self.split.n()
    }
    fn num_arcs(&self) -> usize {
        self.split.num_arcs()
    }
    fn delta(&self) -> Weight {
        self.split.delta()
    }
    fn max_weight(&self) -> Weight {
        self.split.max_weight()
    }
    fn light(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        self.split.light(v)
    }
    fn heavy(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        self.split.heavy(v)
    }
    fn degree(&self, v: VertexId) -> usize {
        self.split.degree(v)
    }
}

impl<S: CompactCertified> CompactCertified for PartitionedCsr<'_, S> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphClass, WeightDist, WorkloadSpec};
    use crate::{CsrGraph, SplitCsr};
    use proptest::prelude::*;

    fn split_for(seed: u64, log_n: u32) -> (CsrGraph, SplitCsr) {
        let mut spec = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, log_n, log_n);
        spec.seed = seed;
        let g = CsrGraph::from_edge_list(&spec.generate());
        let split = SplitCsr::new(&g, 16);
        (g, split)
    }

    #[test]
    fn ranges_tile_the_vertex_space() {
        let (g, split) = split_for(11, 7);
        for lanes in [1, 2, 3, 5, 8, 200] {
            let p = ArcPartition::new(&split, lanes);
            assert_eq!(p.lanes(), lanes);
            assert_eq!(p.range(0).start, 0);
            assert_eq!(p.range(lanes - 1).end as usize, g.n());
            for lane in 1..lanes {
                assert_eq!(p.range(lane - 1).end, p.range(lane).start, "contiguous");
            }
        }
    }

    #[test]
    fn owner_matches_ranges_and_balances_arcs() {
        let (g, split) = split_for(23, 8);
        let p = ArcPartition::new(&split, 4);
        let mut arcs_per_lane = [0u64; 4];
        for v in 0..g.n() as u32 {
            let lane = p.owner(v);
            assert!(p.range(lane).contains(&v), "v={v} lane={lane}");
            arcs_per_lane[lane] += split.degree(v) as u64;
        }
        let total: u64 = arcs_per_lane.iter().sum();
        assert_eq!(total, g.num_arcs() as u64);
        let ideal = total / 4;
        for (lane, &arcs) in arcs_per_lane.iter().enumerate() {
            // A contiguous split can overshoot by at most one vertex's
            // degree; random graphs at this scale stay well inside 2×.
            assert!(arcs <= 2 * ideal + 64, "lane {lane}: {arcs} vs {ideal}");
        }
    }

    #[test]
    fn partitioned_view_delegates_adjacency() {
        let (g, split) = split_for(37, 6);
        let part = PartitionedCsr::new(&split, 3);
        assert_eq!(part.n(), g.n());
        assert_eq!(part.num_arcs(), g.num_arcs());
        assert_eq!(part.delta(), split.delta());
        assert_eq!(part.max_weight(), split.max_weight());
        for v in 0..g.n() as u32 {
            assert_eq!(part.light(v), SplitAdjacency::light(&split, v));
            assert_eq!(part.heavy(v), SplitAdjacency::heavy(&split, v));
            assert_eq!(part.degree(v), SplitAdjacency::degree(&split, v));
        }
        assert_eq!(part.partition().lanes(), 3);
    }

    #[test]
    fn degenerate_shapes() {
        let g = CsrGraph::from_edge_list(&crate::types::EdgeList::new(1));
        let split = SplitCsr::new(&g, 1);
        let p = ArcPartition::new(&split, 8);
        assert_eq!(p.lanes(), 8);
        // Seven lanes are empty; the owner is whichever lane's range
        // actually contains the vertex.
        assert!(p.range(p.owner(0)).contains(&0));
        let p = ArcPartition::new(&split, 0);
        assert_eq!(p.lanes(), 1, "lane count clamps to 1");
    }

    proptest! {
        /// The tentpole ownership law: across arbitrary seeds and lane
        /// counts, every vertex — and therefore every contiguous CSR arc
        /// range — is owned by exactly one lane, and the per-lane arc
        /// counts add up to the whole arc array.
        #[test]
        fn every_arc_owned_exactly_once(seed in 0u64..500, lanes in 1usize..17) {
            let (g, split) = split_for(seed, 6);
            let p = ArcPartition::new(&split, lanes);
            prop_assert_eq!(p.lanes(), lanes);
            let mut owners = 0usize;
            let mut arcs = 0u64;
            for lane in 0..lanes {
                let r = p.range(lane);
                for v in r.clone() {
                    prop_assert_eq!(p.owner(v), lane);
                    owners += 1;
                    arcs += split.degree(v) as u64;
                }
            }
            prop_assert_eq!(owners, g.n());
            prop_assert_eq!(arcs, g.num_arcs() as u64);
        }
    }
}
