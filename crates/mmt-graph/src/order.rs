//! Locality-optimizing vertex orderings.
//!
//! The MTA-2's uniform-latency memory let the paper ignore data layout
//! entirely; on a commodity cache hierarchy the irregular `targets[]`
//! gather of CSR SSSP is the dominant cost. Relabeling vertices so that
//! neighbours (or, for Thorup, members of the same CH component) occupy
//! adjacent indices turns that gather into mostly-sequential traffic.
//!
//! A [`VertexPermutation`] is the bridge: solvers run on a permuted graph
//! ([`CsrGraph::permuted`]) in the *new* index space, and the facade maps
//! sources in ([`VertexPermutation::to_new`]) and scatters distances back
//! out ([`VertexPermutation::scatter_to_original`]) so callers only ever
//! see original vertex ids.
//!
//! Orderings provided here:
//!
//! * [`VertexPermutation::bfs`] — breadth-first from the highest-degree
//!   vertex (then each remaining component from its own densest root), the
//!   classic bandwidth-reducing order for near-uniform graphs;
//! * [`VertexPermutation::degree_sorted`] — hubs first, which clusters the
//!   hot end of a scale-free degree distribution into a few cache lines;
//! * the CH-DFS order is produced by `mmt-ch` (a DFS over the Component
//!   Hierarchy, making every Thorup component index-contiguous) and fed in
//!   through [`VertexPermutation::from_new_to_old`].

use crate::csr::CsrGraph;
use crate::split::SplitCsr;
use crate::types::{Dist, Edge, EdgeList, VertexId};
use std::collections::VecDeque;

/// A bijective relabeling of the vertex set `0..n`.
///
/// Both directions are stored (`n` `u32`s each) because the hot paths need
/// both: edge rebuilding maps old→new, result scattering maps new→old.
///
/// ```
/// use mmt_graph::order::VertexPermutation;
///
/// let p = VertexPermutation::from_new_to_old(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.to_old(0), 2);
/// assert_eq!(p.to_new(2), 0);
/// assert_eq!(p.inverse().to_new(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPermutation {
    /// `new_to_old[new] = old`: which original vertex sits at each new index.
    new_to_old: Vec<VertexId>,
    /// `old_to_new[old] = new`: where each original vertex went.
    old_to_new: Vec<VertexId>,
}

impl VertexPermutation {
    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        Self {
            new_to_old: ids.clone(),
            old_to_new: ids,
        }
    }

    /// Builds from a `new_to_old` order (position `i` holds the original id
    /// placed at new index `i`). Returns `Err` with a description unless
    /// the input is a permutation of `0..len`.
    pub fn from_new_to_old(new_to_old: Vec<VertexId>) -> Result<Self, String> {
        let n = new_to_old.len();
        let mut old_to_new = vec![VertexId::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            let oi = old as usize;
            if oi >= n {
                return Err(format!("vertex {old} out of range for n={n}"));
            }
            if old_to_new[oi] != VertexId::MAX {
                return Err(format!("vertex {old} appears twice"));
            }
            old_to_new[oi] = new as VertexId;
        }
        Ok(Self {
            new_to_old,
            old_to_new,
        })
    }

    /// Breadth-first order rooted at the highest-degree vertex; every
    /// remaining component is appended the same way from its own
    /// highest-degree unvisited vertex, so disconnected graphs stay fully
    /// covered. Ties break towards the smaller vertex id, keeping the
    /// order deterministic.
    pub fn bfs(g: &CsrGraph) -> Self {
        let n = g.n();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Vertices by descending degree: the first unvisited entry is the
        // densest root of the next component.
        let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
        by_degree.sort_by_key(|&v| (usize::MAX - g.degree(v), v));
        let mut queue = VecDeque::new();
        for &root in &by_degree {
            if seen[root as usize] {
                continue;
            }
            seen[root as usize] = true;
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for (v, _) in g.edges_from(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        Self::from_new_to_old(order).expect("BFS visits each vertex exactly once")
    }

    /// Descending-degree order (hubs first), ties towards the smaller id.
    pub fn degree_sorted(g: &CsrGraph) -> Self {
        let mut order: Vec<VertexId> = (0..g.n() as VertexId).collect();
        order.sort_by_key(|&v| (usize::MAX - g.degree(v), v));
        Self::from_new_to_old(order).expect("a sort of 0..n is a permutation")
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.new_to_old.len()
    }

    /// True when the permutation maps every vertex to itself.
    pub fn is_identity(&self) -> bool {
        self.new_to_old
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as VertexId)
    }

    /// The new index of original vertex `old`.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// The original vertex at new index `new`.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// The full `new_to_old` order.
    #[inline]
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Self {
        Self {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }

    /// Composition: first relabel by `self`, then by `then` (so
    /// `composed.to_new(v) == then.to_new(self.to_new(v))`).
    pub fn compose(&self, then: &Self) -> Self {
        assert_eq!(self.n(), then.n(), "composing permutations of unequal n");
        let new_to_old: Vec<VertexId> = then
            .new_to_old
            .iter()
            .map(|&mid| self.new_to_old[mid as usize])
            .collect();
        Self::from_new_to_old(new_to_old).expect("composition of bijections is a bijection")
    }

    /// The edge list relabeled into the new index space.
    pub fn permute_edge_list(&self, el: &EdgeList) -> EdgeList {
        assert_eq!(el.n, self.n(), "permutation built for a different graph");
        EdgeList {
            n: el.n,
            edges: el
                .edges
                .iter()
                .map(|e| Edge::new(self.to_new(e.u), self.to_new(e.v), e.w))
                .collect(),
        }
    }

    /// Scatters a distance array indexed by *new* ids back into original
    /// order: `out[old] = permuted[to_new(old)]`. Clears and fills `out`
    /// without allocating once it has the capacity — this is the single
    /// O(n) pass a layout-aware query pays at the facade.
    pub fn scatter_to_original(&self, permuted: &[Dist], out: &mut Vec<Dist>) {
        assert_eq!(permuted.len(), self.n(), "distance array length mismatch");
        out.clear();
        out.extend(self.old_to_new.iter().map(|&new| permuted[new as usize]));
    }

    /// As [`scatter_to_original`](Self::scatter_to_original), returning a
    /// fresh vector.
    pub fn scatter_to_original_vec(&self, permuted: &[Dist]) -> Vec<Dist> {
        let mut out = Vec::with_capacity(self.n());
        self.scatter_to_original(permuted, &mut out);
        out
    }

    /// Heap bytes of both direction tables.
    pub fn heap_bytes(&self) -> usize {
        (self.new_to_old.capacity() + self.old_to_new.capacity()) * std::mem::size_of::<VertexId>()
    }
}

impl CsrGraph {
    /// The same graph with vertices relabeled by `perm`: new vertex `i` is
    /// original vertex `perm.to_old(i)`, every arc target renamed
    /// accordingly. `O(n + m)`, one placement pass — no intermediate edge
    /// list. Arc multiset, `m`, and `max_weight` are preserved.
    pub fn permuted(&self, perm: &VertexPermutation) -> CsrGraph {
        assert_eq!(
            self.n(),
            perm.n(),
            "permutation built for a different graph"
        );
        let n = self.n();
        let mut offsets = vec![0u64; n + 1];
        for new_v in 0..n {
            offsets[new_v + 1] =
                offsets[new_v] + self.degree(perm.to_old(new_v as VertexId)) as u64;
        }
        let mut targets = vec![0 as VertexId; self.num_arcs()];
        let mut weights = vec![0; self.num_arcs()];
        for (new_v, &base) in offsets[..n].iter().enumerate() {
            let (ts, ws) = self.neighbors(perm.to_old(new_v as VertexId));
            let base = base as usize;
            for (i, (&t, &w)) in ts.iter().zip(ws).enumerate() {
                targets[base + i] = perm.to_new(t);
                weights[base + i] = w;
            }
        }
        CsrGraph::from_parts(offsets, targets, weights, n, self.m(), self.max_weight())
    }
}

impl SplitCsr {
    /// Builds the light/heavy pre-split view of `g` *after* relabeling by
    /// `perm` — the one-call constructor for a layout-aware Δ-stepping
    /// kernel. Equivalent to `SplitCsr::new(&g.permuted(perm), delta)`.
    pub fn permuted(g: &CsrGraph, perm: &VertexPermutation, delta: crate::types::Weight) -> Self {
        SplitCsr::new(&g.permuted(perm), delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{shapes, GraphClass, WeightDist, WorkloadSpec};
    use crate::types::INF;

    #[test]
    fn identity_and_validation() {
        let p = VertexPermutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.n(), 4);
        assert!(VertexPermutation::from_new_to_old(vec![0, 0, 1]).is_err());
        assert!(VertexPermutation::from_new_to_old(vec![0, 3]).is_err());
        assert!(VertexPermutation::from_new_to_old(vec![])
            .unwrap()
            .is_identity());
    }

    #[test]
    fn inverse_and_compose_round_trip() {
        let p = VertexPermutation::from_new_to_old(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for v in 0..4u32 {
            assert_eq!(inv.to_new(p.to_new(v)), v);
            assert_eq!(p.compose(&inv).to_new(v), v);
        }
        assert!(p.compose(&inv).is_identity());
    }

    #[test]
    fn bfs_starts_at_the_densest_vertex_and_covers_components() {
        // star(6): vertex 0 has degree 5. Appended isolated component.
        let mut el = shapes::star(6, 2);
        el.n = 8;
        el.push(6, 7, 1);
        let g = CsrGraph::from_edge_list(&el);
        let p = VertexPermutation::bfs(&g);
        assert_eq!(p.to_old(0), 0, "BFS roots at the max-degree vertex");
        // All 8 vertices covered exactly once.
        let mut olds: Vec<VertexId> = (0..8).map(|i| p.to_old(i)).collect();
        olds.sort_unstable();
        assert_eq!(olds, (0..8u32).collect::<Vec<_>>());
        // The second component is contiguous at the tail.
        let tail: Vec<VertexId> = (6..8).map(|i| p.to_old(i)).collect();
        assert!(tail.contains(&6) && tail.contains(&7));
    }

    #[test]
    fn degree_sort_places_hubs_first() {
        let g = CsrGraph::from_edge_list(&shapes::star(5, 1));
        let p = VertexPermutation::degree_sorted(&g);
        assert_eq!(p.to_old(0), 0, "the hub comes first");
        assert_eq!(p.to_new(0), 0);
    }

    #[test]
    fn permuted_graph_is_isomorphic() {
        let mut spec = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 7, 8);
        spec.seed = 77;
        let el = spec.generate();
        let g = CsrGraph::from_edge_list(&el);
        for p in [
            VertexPermutation::bfs(&g),
            VertexPermutation::degree_sorted(&g),
            VertexPermutation::identity(g.n()),
        ] {
            let pg = g.permuted(&p);
            assert_eq!(pg.n(), g.n());
            assert_eq!(pg.m(), g.m());
            assert_eq!(pg.num_arcs(), g.num_arcs());
            assert_eq!(pg.max_weight(), g.max_weight());
            assert_eq!(pg.total_arc_weight(), g.total_arc_weight());
            for old_u in g.vertices() {
                let new_u = p.to_new(old_u);
                let mut want: Vec<_> = g.edges_from(old_u).map(|(v, w)| (p.to_new(v), w)).collect();
                let mut got: Vec<_> = pg.edges_from(new_u).collect();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "vertex {old_u}");
            }
        }
    }

    #[test]
    fn permuted_matches_edge_list_relabeling() {
        let el = shapes::figure_one();
        let g = CsrGraph::from_edge_list(&el);
        let p = VertexPermutation::from_new_to_old(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let direct = g.permuted(&p);
        let via_el = CsrGraph::from_edge_list(&p.permute_edge_list(&el));
        for v in direct.vertices() {
            let mut a: Vec<_> = direct.edges_from(v).collect();
            let mut b: Vec<_> = via_el.edges_from(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scatter_round_trips_distances() {
        let p = VertexPermutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        // Distances in new space: new 0 (= old 2) has 7, etc.
        let permuted = vec![7, 0, INF];
        let mut out = Vec::new();
        p.scatter_to_original(&permuted, &mut out);
        assert_eq!(out, vec![0, INF, 7]);
        assert_eq!(p.scatter_to_original_vec(&permuted), vec![0, INF, 7]);
        // Identity is a no-op.
        let id = VertexPermutation::identity(3);
        assert_eq!(id.scatter_to_original_vec(&permuted), permuted);
    }

    #[test]
    fn split_permuted_convenience() {
        let el = shapes::path(6, 3);
        let g = CsrGraph::from_edge_list(&el);
        let p = VertexPermutation::bfs(&g);
        let s = SplitCsr::permuted(&g, &p, 2);
        assert_eq!(s.n(), g.n());
        assert_eq!(s.num_arcs(), g.num_arcs());
    }
}
