//! Shortest-path *tree* reconstruction from a distance vector.
//!
//! The parallel solvers in this workspace produce distances only — tracking
//! parents during concurrent relaxation would need a double-width atomic to
//! keep `(dist, parent)` consistent. The certificate structure of SSSP
//! makes the tree recoverable afterwards instead: every reached non-source
//! vertex has a *tight* incoming edge (`dist[u] + w == dist[v]`), and any
//! choice of tight edge per vertex forms a valid shortest-path tree. The
//! post-pass is one parallel scan over the arcs.

use crate::csr::CsrGraph;
use crate::types::{Dist, VertexId, INF};
use rayon::prelude::*;

/// A reconstructed shortest-path tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPathTree {
    /// Predecessor of each vertex on a shortest path (`parent[v] == v` for
    /// the source and for unreachable vertices).
    pub parent: Vec<VertexId>,
    /// The source the tree hangs from.
    pub source: VertexId,
}

/// Builds a shortest-path tree from exact distances.
///
/// Panics (debug) or produces `parent[v] == v` markers if `dist` is not a
/// valid SSSP vector; run it through `mmt-baselines`' verifier first if in
/// doubt.
pub fn build_tree(g: &CsrGraph, source: VertexId, dist: &[Dist]) -> ShortestPathTree {
    assert_eq!(dist.len(), g.n());
    let parent: Vec<VertexId> = (0..g.n() as VertexId)
        .into_par_iter()
        .map(|v| {
            let dv = dist[v as usize];
            if v == source || dv == INF {
                return v;
            }
            g.edges_from(v)
                .find(|&(u, w)| {
                    let du = dist[u as usize];
                    du != INF && du + w as Dist == dv
                })
                .map(|(u, _)| u)
                .unwrap_or_else(|| {
                    debug_assert!(false, "vertex {v} has no tight incoming edge");
                    v
                })
        })
        .collect();
    ShortestPathTree { parent, source }
}

impl ShortestPathTree {
    /// The path `source -> target`, or `None` when unreachable.
    pub fn path_to(&self, target: VertexId) -> Option<Vec<VertexId>> {
        if target != self.source && self.parent[target as usize] == target {
            return None;
        }
        let mut path = vec![target];
        let mut v = target;
        while v != self.source {
            v = self.parent[v as usize];
            path.push(v);
            if path.len() > self.parent.len() {
                return None; // defensive: malformed tree
            }
        }
        path.reverse();
        Some(path)
    }

    /// Number of tree edges (reached vertices minus the source).
    pub fn num_edges(&self) -> usize {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(v, &p)| v as VertexId != p)
            .count()
    }

    /// Checks the tree against the distances it was built from: every tree
    /// edge must be tight and the parent chain must reach the source.
    pub fn validate(&self, g: &CsrGraph, dist: &[Dist]) -> Result<(), String> {
        for v in 0..g.n() as VertexId {
            let p = self.parent[v as usize];
            if p == v {
                if v != self.source && dist[v as usize] != INF {
                    return Err(format!("reached vertex {v} has no parent"));
                }
                continue;
            }
            let w = g
                .edges_from(v)
                .filter(|&(u, _)| u == p)
                .map(|(_, w)| w as Dist)
                .min()
                .ok_or_else(|| format!("tree edge ({p},{v}) not in graph"))?;
            if dist[p as usize] == INF || dist[p as usize] + w < dist[v as usize] {
                return Err(format!("tree edge ({p},{v}) inconsistent with distances"));
            }
            if dist[p as usize] + w > dist[v as usize]
                && g.edges_from(v)
                    .all(|(u, w2)| u != p || dist[p as usize] + w2 as Dist != dist[v as usize])
            {
                return Err(format!("tree edge ({p},{v}) is not tight"));
            }
        }
        // Acyclicity / reachability: walk each chain with a step budget.
        for v in 0..g.n() as VertexId {
            if dist[v as usize] == INF {
                continue;
            }
            if self.path_to(v).is_none() {
                return Err(format!("no tree path to reached vertex {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::shapes;
    use crate::types::EdgeList;

    /// Tiny serial Dijkstra so this crate's tests do not depend on
    /// mmt-baselines (which depends on us).
    fn dijkstra(g: &CsrGraph, s: VertexId) -> Vec<Dist> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist = vec![INF; g.n()];
        let mut heap = BinaryHeap::new();
        dist[s as usize] = 0;
        heap.push(Reverse((0u64, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.edges_from(u) {
                let nd = d + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn tree_on_figure_one() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let dist = dijkstra(&g, 0);
        let tree = build_tree(&g, 0, &dist);
        tree.validate(&g, &dist).unwrap();
        assert_eq!(tree.num_edges(), 5);
        let path = tree.path_to(5).unwrap();
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 5);
        // Path length equals the distance.
        let mut len = 0u64;
        for pair in path.windows(2) {
            len += g
                .edges_from(pair[0])
                .filter(|&(u, _)| u == pair[1])
                .map(|(_, w)| w as Dist)
                .min()
                .unwrap();
        }
        assert_eq!(len, dist[5]);
    }

    #[test]
    fn unreachable_vertices_are_roots() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 3)]));
        let dist = dijkstra(&g, 0);
        let tree = build_tree(&g, 0, &dist);
        tree.validate(&g, &dist).unwrap();
        assert_eq!(tree.parent[2], 2);
        assert!(tree.path_to(2).is_none());
        assert_eq!(tree.path_to(1).unwrap(), vec![0, 1]);
    }

    #[test]
    fn source_path_is_singleton() {
        let g = CsrGraph::from_edge_list(&shapes::path(3, 1));
        let dist = dijkstra(&g, 1);
        let tree = build_tree(&g, 1, &dist);
        assert_eq!(tree.path_to(1).unwrap(), vec![1]);
    }

    #[test]
    fn validate_rejects_forged_parent() {
        let g = CsrGraph::from_edge_list(&shapes::path(4, 2));
        let dist = dijkstra(&g, 0);
        let mut tree = build_tree(&g, 0, &dist);
        tree.parent[3] = 1; // not even an edge
        assert!(tree.validate(&g, &dist).is_err());
        tree.parent[3] = 3; // reached vertex with no parent
        assert!(tree.validate(&g, &dist).is_err());
    }

    #[test]
    fn ties_pick_some_tight_edge() {
        // Two equal shortest paths 0->3: via 1 or via 2.
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(
            4,
            [(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 1)],
        ));
        let dist = dijkstra(&g, 0);
        let tree = build_tree(&g, 0, &dist);
        tree.validate(&g, &dist).unwrap();
        assert!(tree.parent[3] == 1 || tree.parent[3] == 2);
    }
}
