//! Edge-list preparation: the cleanup pipeline between raw input (files,
//! generators, user code) and the solvers.
//!
//! Real inputs arrive messy — duplicated arcs, self loops, zero weights,
//! disconnected fragments. The solvers tolerate all of that, but
//! preprocessing options matter for benchmarks (the DIMACS generators
//! deliberately keep parallel edges) and for users who want the classic
//! "largest connected component, simple graph" preparation.

use crate::types::{Edge, EdgeList, VertexId, Weight};
use rayon::prelude::*;

/// A configurable cleanup pass over an edge list.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prepare {
    /// Drop self loops.
    pub drop_self_loops: bool,
    /// Collapse parallel edges, keeping the minimum weight per pair.
    pub dedup_min: bool,
    /// Clamp weights into `[min_weight, max_weight]` (applied before
    /// dedup). `None` leaves weights untouched.
    pub clamp: Option<(Weight, Weight)>,
}

impl Prepare {
    /// The common "simple graph" preparation.
    pub fn simple() -> Self {
        Self {
            drop_self_loops: true,
            dedup_min: true,
            clamp: None,
        }
    }

    /// Applies the pass, returning a new edge list.
    pub fn apply(&self, el: &EdgeList) -> EdgeList {
        let mut edges: Vec<Edge> = el
            .edges
            .par_iter()
            .filter(|e| !(self.drop_self_loops && e.is_self_loop()))
            .map(|e| {
                let mut e = e.canonical();
                if let Some((lo, hi)) = self.clamp {
                    e.w = e.w.clamp(lo, hi);
                }
                e
            })
            .collect();
        if self.dedup_min {
            edges.par_sort_unstable_by_key(|e| (e.u, e.v, e.w));
            edges.dedup_by_key(|e| (e.u, e.v));
        }
        EdgeList { n: el.n, edges }
    }
}

/// The vertices of the largest connected component, plus a renumbered
/// edge list over them — the standard preparation for SSSP benchmarks on
/// possibly-disconnected inputs (R-MAT).
#[derive(Debug, Clone)]
pub struct LargestComponent {
    /// Renumbered edge list over `0..k`.
    pub edges: EdgeList,
    /// `original_id[new_id]` mapping back to the input graph.
    pub original_id: Vec<VertexId>,
}

/// Extracts the largest connected component (ties broken by smallest
/// label). Runs a serial union-find; input sizes here are edge lists, not
/// hierarchies, so this is `O(m α)`.
pub fn largest_component(el: &EdgeList) -> LargestComponent {
    // Local DSU to avoid a circular dependency on mmt-cc.
    let mut parent: Vec<u32> = (0..el.n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            let gp = parent[parent[v as usize] as usize];
            parent[v as usize] = gp;
            v = gp;
        }
        v
    }
    for e in &el.edges {
        let (ru, rv) = (find(&mut parent, e.u), find(&mut parent, e.v));
        if ru != rv {
            let (small, large) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[large as usize] = small;
        }
    }
    let mut size = vec![0u32; el.n];
    for v in 0..el.n as u32 {
        let r = find(&mut parent, v);
        size[r as usize] += 1;
    }
    let best_root = (0..el.n as u32)
        .max_by_key(|&r| (size[r as usize], std::cmp::Reverse(r)))
        .unwrap_or(0);
    let mut new_id = vec![u32::MAX; el.n];
    let mut original_id = Vec::new();
    for v in 0..el.n as u32 {
        if find(&mut parent, v) == best_root {
            new_id[v as usize] = original_id.len() as u32;
            original_id.push(v);
        }
    }
    let edges: Vec<Edge> = el
        .edges
        .iter()
        .filter(|e| new_id[e.u as usize] != u32::MAX && new_id[e.v as usize] != u32::MAX)
        .map(|e| Edge::new(new_id[e.u as usize], new_id[e.v as usize], e.w))
        .collect();
    LargestComponent {
        edges: EdgeList {
            n: original_id.len(),
            edges,
        },
        original_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_preparation() {
        let el = EdgeList::from_triples(3, [(0, 0, 1), (1, 0, 5), (0, 1, 3), (1, 2, 2), (2, 1, 2)]);
        let out = Prepare::simple().apply(&el);
        assert_eq!(out.m(), 2);
        assert_eq!(out.edges[0], Edge::new(0, 1, 3));
        assert_eq!(out.edges[1], Edge::new(1, 2, 2));
    }

    #[test]
    fn clamp_applies_before_dedup() {
        let el = EdgeList::from_triples(2, [(0, 1, 100), (0, 1, 1)]);
        let out = Prepare {
            drop_self_loops: false,
            dedup_min: true,
            clamp: Some((5, 50)),
        }
        .apply(&el);
        assert_eq!(out.edges, vec![Edge::new(0, 1, 5)]);
    }

    #[test]
    fn noop_preparation_keeps_everything() {
        let el = EdgeList::from_triples(2, [(0, 0, 1), (0, 1, 2), (1, 0, 2)]);
        let out = Prepare::default().apply(&el);
        assert_eq!(out.m(), 3);
    }

    #[test]
    fn largest_component_extraction() {
        // component {0,1,2} (3 vertices) vs {4,5} vs isolated 3
        let el = EdgeList::from_triples(6, [(0, 1, 1), (1, 2, 1), (4, 5, 9)]);
        let lc = largest_component(&el);
        assert_eq!(lc.edges.n, 3);
        assert_eq!(lc.edges.m(), 2);
        assert_eq!(lc.original_id, vec![0, 1, 2]);
    }

    #[test]
    fn tie_breaks_to_smallest_label() {
        let el = EdgeList::from_triples(4, [(0, 1, 1), (2, 3, 1)]);
        let lc = largest_component(&el);
        assert_eq!(lc.original_id, vec![0, 1]);
    }

    #[test]
    fn fully_connected_is_identity() {
        let el = EdgeList::from_triples(3, [(0, 1, 1), (1, 2, 1)]);
        let lc = largest_component(&el);
        assert_eq!(lc.edges, el);
        assert_eq!(lc.original_id, vec![0, 1, 2]);
    }

    #[test]
    fn edgeless_graph_picks_one_vertex() {
        let el = EdgeList::new(3);
        let lc = largest_component(&el);
        assert_eq!(lc.edges.n, 1);
    }
}
