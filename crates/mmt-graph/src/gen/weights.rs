//! The paper's two edge-weight distributions.
//!
//! * **UWD** — uniform over `[1, C]`;
//! * **PWD** — poly-logarithmic: weights of the form `2^i` with `i` uniform
//!   over `[1, log2 C]` (so the support is `{2, 4, …, C}`; all weights are
//!   powers of two, which is what gives PWD instances their shallow, bushy
//!   Component Hierarchies).

use crate::types::Weight;
use rand::Rng;

/// Which distribution a workload draws weights from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightDist {
    /// Uniform over `[1, C]` ("UWD").
    Uniform,
    /// Poly-logarithmic `2^i`, `i ~ U[1, log2 C]` ("PWD").
    PolyLog,
}

impl WeightDist {
    /// The abbreviation used in data-set names.
    pub fn short_name(self) -> &'static str {
        match self {
            WeightDist::Uniform => "UWD",
            WeightDist::PolyLog => "PWD",
        }
    }
}

/// A sampler binding a distribution to a concrete maximum weight `C ≥ 1`.
#[derive(Debug, Clone, Copy)]
pub struct WeightSampler {
    dist: WeightDist,
    c: Weight,
    log_c: u32,
}

impl WeightSampler {
    /// Creates a sampler for weights in `[1, c]`.
    pub fn new(dist: WeightDist, c: Weight) -> Self {
        let c = c.max(1);
        Self {
            dist,
            c,
            // log2 C, at least 1 so PWD with C < 4 still has a valid range.
            log_c: (31 - c.leading_zeros()).max(1),
        }
    }

    /// Maximum weight `C`.
    pub fn max_weight(&self) -> Weight {
        self.c
    }

    /// Draws one weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Weight {
        match self.dist {
            WeightDist::Uniform => rng.gen_range(1..=self.c),
            WeightDist::PolyLog => {
                let i = rng.gen_range(1..=self.log_c);
                1u32 << i.min(31)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_range_and_covers() {
        let s = WeightSampler::new(WeightDist::Uniform, 8);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 9];
        for _ in 0..2000 {
            let w = s.sample(&mut rng);
            assert!((1..=8).contains(&w));
            seen[w as usize] = true;
        }
        assert!(seen[1..=8].iter().all(|&b| b), "all values of [1,8] drawn");
    }

    #[test]
    fn polylog_draws_powers_of_two() {
        let s = WeightSampler::new(WeightDist::PolyLog, 64);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let w = s.sample(&mut rng);
            assert!(w.is_power_of_two());
            assert!((2..=64).contains(&w));
        }
    }

    #[test]
    fn degenerate_c_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let u = WeightSampler::new(WeightDist::Uniform, 1);
        assert_eq!(u.sample(&mut rng), 1);
        // PWD needs log C >= 1; with C=1 it degrades to weight 2 (clamped
        // exponent range), still positive and deterministic.
        let p = WeightSampler::new(WeightDist::PolyLog, 1);
        assert_eq!(p.sample(&mut rng), 2);
    }

    #[test]
    fn c_is_clamped_to_at_least_one() {
        let s = WeightSampler::new(WeightDist::Uniform, 0);
        assert_eq!(s.max_weight(), 1);
    }
}
