//! Synthetic graph generators and the paper's workload naming scheme.
//!
//! The experiments use two graph classes from the 9th DIMACS Implementation
//! Challenge — `Random` and `R-MAT` — with `m = 4n` undirected edges, and
//! two integer weight distributions over `[1, C]`. Data sets are named
//! `<class>-<dist>-<n>-<C>` (e.g. `Rand-UWD-2^21-2^21`).

pub mod adversarial;
pub mod grid;
pub mod random;
pub mod rmat;
pub mod road;
pub mod shapes;
pub mod weights;

pub use weights::WeightDist;

use crate::types::EdgeList;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Graph family, as in the paper's Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// Cycle + `m - n` random edges (connected; may contain parallel edges
    /// and self loops).
    Random,
    /// R-MAT recursive-matrix scale-free graph (may be disconnected).
    Rmat,
    /// √n × √n grid with unit-ish structure — the "structured road-network"
    /// stand-in used by the future-work example.
    Grid,
    /// √n × √n street grid overlaid with long highway shortcuts (see
    /// [`road::road_graph`]) — the CI-sized road-network family the
    /// point-to-point query plane is benchmarked on.
    Road,
}

impl GraphClass {
    /// The abbreviation used in data-set names (`Rand`, `RMAT`, `Grid`,
    /// `Road`).
    pub fn short_name(self) -> &'static str {
        match self {
            GraphClass::Random => "Rand",
            GraphClass::Rmat => "RMAT",
            GraphClass::Grid => "Grid",
            GraphClass::Road => "Road",
        }
    }
}

/// A fully-specified synthetic workload: class, weight distribution, size
/// and maximum weight, plus the RNG seed (runs are reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Graph family.
    pub class: GraphClass,
    /// Weight distribution.
    pub dist: WeightDist,
    /// log2 of the vertex count.
    pub log_n: u32,
    /// log2 of the maximum edge weight `C`.
    pub log_c: u32,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's default edge factor (m = 4n) and seed 1.
    pub fn new(class: GraphClass, dist: WeightDist, log_n: u32, log_c: u32) -> Self {
        Self {
            class,
            dist,
            log_n,
            log_c,
            seed: 1,
        }
    }

    /// Vertex count `n = 2^log_n`.
    pub fn n(&self) -> usize {
        1usize << self.log_n
    }

    /// Undirected edge count `m = 4n` (the paper's fixed edge factor).
    pub fn m(&self) -> usize {
        4 * self.n()
    }

    /// Maximum edge weight `C = 2^log_c`.
    pub fn c(&self) -> u32 {
        1u32 << self.log_c
    }

    /// The paper's data-set name, e.g. `Rand-UWD-2^21-2^21`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}-2^{}-2^{}",
            self.class.short_name(),
            self.dist.short_name(),
            self.log_n,
            self.log_c
        )
    }

    /// Generates the edge list for this spec.
    pub fn generate(&self) -> EdgeList {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let dist = weights::WeightSampler::new(self.dist, self.c());
        match self.class {
            GraphClass::Random => random::random_graph(self.n(), self.m(), &dist, &mut rng),
            GraphClass::Rmat => rmat::rmat_graph(self.log_n, self.m(), &dist, &mut rng),
            GraphClass::Grid => {
                let side = (self.n() as f64).sqrt() as usize;
                grid::grid_graph(side.max(1), side.max(1), &dist, &mut rng)
            }
            GraphClass::Road => {
                let side = (self.n() as f64).sqrt() as usize;
                road::road_graph(side.max(1), side.max(1), &dist, &mut rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_convention() {
        let s = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 21, 21);
        assert_eq!(s.name(), "Rand-UWD-2^21-2^21");
        let s = WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 26, 2);
        assert_eq!(s.name(), "RMAT-PWD-2^26-2^2");
        let s = WorkloadSpec::new(GraphClass::Road, WeightDist::Uniform, 12, 6);
        assert_eq!(s.name(), "Road-UWD-2^12-2^6");
    }

    #[test]
    fn spec_sizes() {
        let s = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 10, 4);
        assert_eq!(s.n(), 1024);
        assert_eq!(s.m(), 4096);
        assert_eq!(s.c(), 16);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 8, 4);
        let a = s.generate();
        let b = s.generate();
        assert_eq!(a, b);
        let mut s2 = s;
        s2.seed = 99;
        assert_ne!(a, s2.generate());
    }

    #[test]
    fn all_classes_generate_in_range() {
        for class in [
            GraphClass::Random,
            GraphClass::Rmat,
            GraphClass::Grid,
            GraphClass::Road,
        ] {
            for dist in [WeightDist::Uniform, WeightDist::PolyLog] {
                let s = WorkloadSpec::new(class, dist, 8, 6);
                let el = s.generate();
                el.assert_valid();
                assert!(el.max_weight().unwrap_or(1) <= s.c());
                assert!(el.edges.iter().all(|e| e.w >= 1), "weights are positive");
            }
        }
    }
}
