//! R-MAT scale-free graph generator (Chakrabarti, Zhan, Faloutsos, SDM'04).
//!
//! Recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)` and drops one edge per descent. With the
//! standard skew (`a = 0.45, b = c = 0.15, d = 0.25` here, the values used
//! by the GTgraph generator behind the paper's experiments) the degree
//! distribution follows an inverse power law. R-MAT graphs may be
//! disconnected and may contain self loops and parallel edges.

use super::weights::WeightSampler;
use crate::types::{EdgeList, VertexId};
use rand::Rng;

/// Quadrant probabilities for the recursive descent.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Noise applied per level to avoid exact-degree artifacts.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.45,
            b: 0.15,
            c: 0.15,
            noise: 0.1,
        }
    }
}

/// Generates an R-MAT graph with `2^log_n` vertices and `m` undirected edges.
pub fn rmat_graph<R: Rng + ?Sized>(
    log_n: u32,
    m: usize,
    weights: &WeightSampler,
    rng: &mut R,
) -> EdgeList {
    rmat_graph_with(log_n, m, RmatParams::default(), weights, rng)
}

/// As [`rmat_graph`] with explicit quadrant parameters.
pub fn rmat_graph_with<R: Rng + ?Sized>(
    log_n: u32,
    m: usize,
    params: RmatParams,
    weights: &WeightSampler,
    rng: &mut R,
) -> EdgeList {
    assert!(log_n < 32, "vertex ids are u32");
    let n = 1usize << log_n;
    let mut el = EdgeList::new(n);
    el.edges.reserve(m);
    for _ in 0..m {
        let (u, v) = rmat_edge(log_n, params, rng);
        el.push(u, v, weights.sample(rng));
    }
    el
}

fn rmat_edge<R: Rng + ?Sized>(log_n: u32, p: RmatParams, rng: &mut R) -> (VertexId, VertexId) {
    let mut u = 0u32;
    let mut v = 0u32;
    for level in 0..log_n {
        // Jitter the quadrant probabilities a little each level, as GTgraph
        // does, then renormalise.
        let mut jitter = |x: f64| x * (1.0 - p.noise + 2.0 * p.noise * rng.gen::<f64>());
        let (a, b, c) = (jitter(p.a), jitter(p.b), jitter(p.c));
        let d = jitter(1.0 - p.a - p.b - p.c);
        let total = a + b + c + d;
        let r = rng.gen::<f64>() * total;
        let bit = 1u32 << (log_n - 1 - level);
        if r < a {
            // top-left: neither bit set
        } else if r < a + b {
            v |= bit;
        } else if r < a + b + c {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WeightDist;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sampler() -> WeightSampler {
        WeightSampler::new(WeightDist::Uniform, 16)
    }

    #[test]
    fn shape_and_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let el = rmat_graph(10, 4096, &sampler(), &mut rng);
        assert_eq!(el.n, 1024);
        assert_eq!(el.m(), 4096);
        el.assert_valid();
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(6);
        let el = rmat_graph(12, 4 * 4096, &sampler(), &mut rng);
        let mut deg = vec![0usize; el.n];
        for e in &el.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = deg.iter().sum::<usize>() as f64 / el.n as f64;
        // Power-law-ish: the hub is far above the mean, and many vertices
        // are isolated.
        assert!(max as f64 > 8.0 * avg, "max {max} vs avg {avg}");
        let isolated = deg.iter().filter(|&&d| d == 0).count();
        assert!(isolated > 0, "R-MAT at m=4n leaves some vertices isolated");
    }

    #[test]
    fn zero_log_n_is_single_vertex() {
        let mut rng = SmallRng::seed_from_u64(7);
        let el = rmat_graph(0, 3, &sampler(), &mut rng);
        assert_eq!(el.n, 1);
        assert!(el.edges.iter().all(|e| e.is_self_loop()));
    }
}
