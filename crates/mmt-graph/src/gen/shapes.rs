//! Small deterministic graph shapes used throughout the test suites.

use crate::types::{EdgeList, VertexId, Weight};

/// A path `0 - 1 - … - (n-1)` with the given per-hop weight.
pub fn path(n: usize, w: Weight) -> EdgeList {
    let mut el = EdgeList::new(n);
    for u in 1..n {
        el.push((u - 1) as VertexId, u as VertexId, w);
    }
    el
}

/// A star with `n - 1` rays from vertex 0.
pub fn star(n: usize, w: Weight) -> EdgeList {
    let mut el = EdgeList::new(n);
    for v in 1..n {
        el.push(0, v as VertexId, w);
    }
    el
}

/// The complete graph on `n` vertices with uniform weight `w`.
pub fn complete(n: usize, w: Weight) -> EdgeList {
    let mut el = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            el.push(u as VertexId, v as VertexId, w);
        }
    }
    el
}

/// The example of the paper's Figure 1: a hierarchy where
/// `Component(w, 3)` and `Component(v, 3)` are joined only at level 4.
///
/// Concretely: two triangles of weight-1 edges (`{0,1,2}` around `v = 0` and
/// `{3,4,5}` around `w = 3`) joined by a single weight-8 edge, so that with
/// threshold `2^3 = 8` the graph splits into exactly two components and with
/// `2^4 = 16` it is whole.
pub fn figure_one() -> EdgeList {
    EdgeList::from_triples(
        6,
        [
            (0, 1, 1),
            (1, 2, 1),
            (0, 2, 1),
            (3, 4, 1),
            (4, 5, 1),
            (3, 5, 1),
            (2, 3, 8),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_edges() {
        let el = path(4, 3);
        assert_eq!(el.m(), 3);
        assert!(el.edges.iter().all(|e| e.w == 3 && e.v == e.u + 1));
        assert_eq!(path(0, 1).m(), 0);
        assert_eq!(path(1, 1).m(), 0);
    }

    #[test]
    fn star_edges() {
        let el = star(5, 2);
        assert_eq!(el.m(), 4);
        assert!(el.edges.iter().all(|e| e.u == 0));
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(5, 1).m(), 10);
        assert_eq!(complete(1, 1).m(), 0);
    }

    #[test]
    fn figure_one_weights() {
        let el = figure_one();
        assert_eq!(el.n, 6);
        assert_eq!(el.m(), 7);
        assert_eq!(el.max_weight(), Some(8));
        assert_eq!(el.edges.iter().filter(|e| e.w == 8).count(), 1);
    }
}
