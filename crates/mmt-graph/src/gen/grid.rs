//! Grid graphs: the structured, large-diameter stand-in for road networks.
//!
//! The paper's conclusion points at road networks as the next target and
//! notes that the current implementation "exhibits trapping behavior" on
//! them; the `road_grid` example uses this generator to demonstrate exactly
//! that regime (high diameter, low degree).

use super::weights::WeightSampler;
use crate::types::{EdgeList, VertexId};
use rand::Rng;

/// Generates a `rows × cols` 4-neighbour grid with random weights.
pub fn grid_graph<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    weights: &WeightSampler,
    rng: &mut R,
) -> EdgeList {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    assert!(n <= u32::MAX as usize);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut el = EdgeList::new(n);
    el.edges.reserve(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                el.push(id(r, c), id(r, c + 1), weights.sample(rng));
            }
            if r + 1 < rows {
                el.push(id(r, c), id(r + 1, c), weights.sample(rng));
            }
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WeightDist;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sampler() -> WeightSampler {
        WeightSampler::new(WeightDist::Uniform, 8)
    }

    #[test]
    fn edge_count_formula() {
        let mut rng = SmallRng::seed_from_u64(1);
        let el = grid_graph(4, 5, &sampler(), &mut rng);
        assert_eq!(el.n, 20);
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        assert_eq!(el.m(), 4 * 4 + 3 * 5);
    }

    #[test]
    fn single_cell() {
        let mut rng = SmallRng::seed_from_u64(2);
        let el = grid_graph(1, 1, &sampler(), &mut rng);
        assert_eq!(el.n, 1);
        assert_eq!(el.m(), 0);
    }

    #[test]
    fn path_when_one_row() {
        let mut rng = SmallRng::seed_from_u64(3);
        let el = grid_graph(1, 6, &sampler(), &mut rng);
        assert_eq!(el.m(), 5);
        assert!(el.edges.iter().all(|e| e.v == e.u + 1));
    }
}
