//! Road-like graphs: a grid of local streets plus long highway shortcuts.
//!
//! The paper's conclusion names road networks as the workload the MTA
//! implementation "exhibits trapping behavior" on, and they are the
//! motivating input for the point-to-point query plane: high diameter, low
//! degree, and a weight hierarchy (fast long edges over slow local ones)
//! that makes Δ-stepping's Δ choice genuinely hard. Real DIMACS road
//! instances are far too large for CI, so this generator produces the same
//! *shape* at any size: a 4-neighbour grid of streets with sampled weights,
//! overlaid with `~n/16` highway edges whose per-unit cost is a fraction of
//! the expected street cost — long shortcuts a correct s–t search must
//! discover and a full SSSP pays for everywhere.

use super::weights::WeightSampler;
use crate::types::{EdgeList, VertexId, Weight};
use rand::Rng;

/// Generates a `rows × cols` street grid with `~n/16` highway shortcuts.
///
/// Streets are the plain 4-neighbour grid with weights drawn from
/// `weights`. Each highway connects two cells at Manhattan distance at
/// least `(rows + cols) / 4` with weight
/// `clamp(manhattan · max_weight/8, 1, max_weight)` — roughly four times
/// cheaper per unit of distance than the expected street, so shortest
/// paths between far-apart cells route onto the highway layer the way
/// road-network queries do.
pub fn road_graph<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    weights: &WeightSampler,
    rng: &mut R,
) -> EdgeList {
    let mut el = super::grid::grid_graph(rows, cols, weights, rng);
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let highways = (n / 16).max(1);
    let min_span = ((rows + cols) / 4).max(2);
    let per_unit = (weights.max_weight() as u64 / 8).max(1);
    el.edges.reserve(highways);
    for _ in 0..highways {
        // Rejection-sample a far-apart pair; on a grid too small to span
        // `min_span` the last attempt is kept anyway so the edge count
        // stays deterministic.
        let mut pair = None;
        for _ in 0..32 {
            let (r1, c1) = (rng.gen_range(0..rows), rng.gen_range(0..cols));
            let (r2, c2) = (rng.gen_range(0..rows), rng.gen_range(0..cols));
            let span = r1.abs_diff(r2) + c1.abs_diff(c2);
            pair = Some((r1, c1, r2, c2, span));
            if span >= min_span {
                break;
            }
        }
        let (r1, c1, r2, c2, span) = pair.expect("at least one attempt");
        let w = (span as u64 * per_unit).clamp(1, weights.max_weight() as u64) as Weight;
        el.push(id(r1, c1), id(r2, c2), w);
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WeightDist;
    use crate::CsrGraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sampler(c: Weight) -> WeightSampler {
        WeightSampler::new(WeightDist::Uniform, c)
    }

    #[test]
    fn edge_count_is_grid_plus_highways() {
        let mut rng = SmallRng::seed_from_u64(7);
        let el = road_graph(16, 16, &sampler(64), &mut rng);
        assert_eq!(el.n, 256);
        let grid_edges = 16 * 15 + 15 * 16;
        assert_eq!(el.m(), grid_edges + 256 / 16);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = road_graph(12, 9, &sampler(32), &mut SmallRng::seed_from_u64(3));
        let b = road_graph(12, 9, &sampler(32), &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
        let c = road_graph(12, 9, &sampler(32), &mut SmallRng::seed_from_u64(4));
        assert_ne!(a, c);
    }

    #[test]
    fn highways_span_far_apart_cells() {
        let (rows, cols) = (20usize, 20usize);
        let mut rng = SmallRng::seed_from_u64(11);
        let el = road_graph(rows, cols, &sampler(100), &mut rng);
        let grid_edges = rows * (cols - 1) + (rows - 1) * cols;
        let min_span = (rows + cols) / 4;
        for e in &el.edges[grid_edges..] {
            let (r1, c1) = (e.u as usize / cols, e.u as usize % cols);
            let (r2, c2) = (e.v as usize / cols, e.v as usize % cols);
            let span = r1.abs_diff(r2) + c1.abs_diff(c2);
            assert!(span >= min_span, "highway {e:?} spans only {span}");
        }
    }

    #[test]
    fn weights_stay_in_range_and_graph_is_connected() {
        let mut rng = SmallRng::seed_from_u64(23);
        let el = road_graph(10, 14, &sampler(40), &mut rng);
        el.assert_valid();
        assert!(el.edges.iter().all(|e| (1..=40).contains(&e.w)));
        // The street grid alone is connected, so the overlay is too.
        let g = CsrGraph::from_edge_list(&el);
        let mut seen = vec![false; g.n()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for (v, _) in g.edges_from(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Minimal binary-heap Dijkstra for this module's tests (the real
    /// solvers live downstream in mmt-baselines).
    fn dijkstra(g: &CsrGraph, s: u32) -> Vec<crate::types::Dist> {
        use crate::types::{Dist, INF};
        use std::cmp::Reverse;
        let mut dist = vec![INF; g.n()];
        dist[s as usize] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(Reverse((0 as Dist, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (v, w) in g.edges_from(u) {
                let nd = d + w as Dist;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn highways_actually_shorten_far_queries() {
        // On a long thin grid the two far corners must be cheaper to reach
        // than the pure-street grid allows, proving the highway layer
        // participates in shortest paths (the road-network regime).
        let (rows, cols) = (4usize, 64usize);
        let street = super::super::grid::grid_graph(
            rows,
            cols,
            &sampler(64),
            &mut SmallRng::seed_from_u64(5),
        );
        let road = road_graph(rows, cols, &sampler(64), &mut SmallRng::seed_from_u64(5));
        // Same seed ⇒ identical street layer; highways are appended after.
        assert_eq!(street.edges[..], road.edges[..street.edges.len()]);
        let far = rows * cols - 1;
        let d_street = dijkstra(&CsrGraph::from_edge_list(&street), 0);
        let d_road = dijkstra(&CsrGraph::from_edge_list(&road), 0);
        assert!(
            d_road[far] < d_street[far],
            "highways did not shorten the corner-to-corner path ({} vs {})",
            d_road[far],
            d_street[far]
        );
    }

    #[test]
    fn tiny_grids_still_generate() {
        let mut rng = SmallRng::seed_from_u64(1);
        let el = road_graph(1, 2, &sampler(4), &mut rng);
        el.assert_valid();
        assert_eq!(el.n, 2);
        assert_eq!(el.m(), 1 + 1); // one street + one (clamped-span) highway
    }
}
