//! Adversarial graph families for differential correctness testing.
//!
//! Every family here is built to break a specific solver assumption:
//! zero-weight chains and cycles exercise the `mmt-ch` contraction
//! preprocessing, parallel edges and self loops exercise relaxation
//! dedup, disconnected forests exercise `INF` handling, near-`u32::MAX`
//! weights smoke out 32-bit overflow in relaxation arithmetic, and the
//! degenerate shapes (singleton, isolated set, long path, wide star)
//! hit the boundary cases of bucket traversal. [`families`] bundles the
//! whole suite, deterministically per seed, as `(name, graph)` pairs —
//! the corpus the `mmt-verify` differential harness runs every engine
//! over.

use crate::gen::weights::{WeightDist, WeightSampler};
use crate::gen::{grid, shapes};
use crate::types::{EdgeList, VertexId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A path `0 - 1 - … - (n-1)` where only every `stride`-th edge has
/// positive weight; the rest are zero. Stresses the zero-weight
/// contraction with long chains of collapsible components.
pub fn zero_chain(n: usize, stride: usize) -> EdgeList {
    assert!(stride >= 1, "stride must be at least 1");
    let mut el = EdgeList::new(n);
    for u in 1..n {
        let w = if u % stride == 0 {
            (u % 7) as Weight + 1
        } else {
            0
        };
        el.push((u - 1) as VertexId, u as VertexId, w);
    }
    el
}

/// `cycles` cycles of `len` vertices each, every cycle edge weight zero,
/// consecutive cycles linked by one positive edge. Each cycle must
/// contract to a single super-vertex; the whole graph becomes a path.
pub fn zero_cycles(cycles: usize, len: usize, link_w: Weight) -> EdgeList {
    assert!(len >= 2, "a cycle needs at least 2 vertices");
    assert!(link_w >= 1, "links must be positive");
    let n = cycles * len;
    let mut el = EdgeList::new(n);
    for c in 0..cycles {
        let base = (c * len) as VertexId;
        for i in 0..len as VertexId {
            el.push(base + i, base + (i + 1) % len as VertexId, 0);
        }
        if c + 1 < cycles {
            el.push(base, base + len as VertexId, link_w);
        }
    }
    el
}

/// A path clumped with parallel edges of distinct weights and a self loop
/// on every vertex: relaxation must pick the cheapest parallel edge and
/// ignore loops. Also includes one heavy "shortcut" parallel to the whole
/// path that must never win.
pub fn multi_edge_clump(n: usize) -> EdgeList {
    assert!(n >= 2);
    let mut el = EdgeList::new(n);
    for u in 0..n as VertexId {
        el.push(u, u, 5); // self loop
        if (u as usize) + 1 < n {
            // three parallel edges; the middle one is cheapest
            el.push(u, u + 1, 7);
            el.push(u, u + 1, 3);
            el.push(u, u + 1, 9);
        }
    }
    // A direct heavy edge end-to-end: more than the 3-per-hop path.
    el.push(0, (n - 1) as VertexId, (3 * n) as Weight + 10);
    el
}

/// `trees` disjoint stars of `size` vertices each, plus `trees` fully
/// isolated vertices: most of the graph is unreachable from any single
/// source, so every engine's `INF` bookkeeping is on the line.
pub fn disconnected_forest(trees: usize, size: usize, w: Weight) -> EdgeList {
    assert!(size >= 1);
    let n = trees * size + trees;
    let mut el = EdgeList::new(n);
    for t in 0..trees {
        let base = (t * size) as VertexId;
        for i in 1..size as VertexId {
            el.push(base, base + i, w);
        }
    }
    el
}

/// A path of `u32::MAX`-weight edges with shortcut edges layered on top:
/// distances exceed `u32` after one hop, so any internal 32-bit
/// accumulation overflows and diverges from the oracle.
pub fn near_max_weights(n: usize) -> EdgeList {
    assert!(n >= 3);
    let mut el = EdgeList::new(n);
    for u in 1..n {
        el.push((u - 1) as VertexId, u as VertexId, Weight::MAX);
    }
    // A two-hop shortcut that saves exactly one unit over the direct pair.
    el.push(0, 2, Weight::MAX - 1);
    // A heavy shortcut end-to-end: one max-weight hop beats the path sum
    // whenever n > 2, which a 32-bit wraparound would misjudge.
    el.push(0, (n - 1) as VertexId, Weight::MAX);
    el
}

/// A random multigraph: endpoints drawn uniformly (self loops and
/// parallel edges very likely), `zero_pct` percent of weights zero and
/// the rest uniform in `[1, max_w]`. Deterministic per seed.
pub fn random_multigraph(n: usize, m: usize, max_w: Weight, zero_pct: u32, seed: u64) -> EdgeList {
    assert!(n >= 1 && max_w >= 1 && zero_pct <= 100);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    for _ in 0..m {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        let w = if rng.gen_range(0..100u32) < zero_pct {
            0
        } else {
            rng.gen_range(1..=max_w)
        };
        el.push(u, v, w);
    }
    el
}

/// The full adversarial suite as `(name, graph)` pairs, deterministic for
/// a given `seed` (only the random-multigraph members consume it).
pub fn families(seed: u64) -> Vec<(String, EdgeList)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let sampler = WeightSampler::new(WeightDist::Uniform, 16);
    let mut out: Vec<(String, EdgeList)> = vec![
        ("singleton".into(), EdgeList::new(1)),
        ("isolated-8".into(), EdgeList::new(8)),
        (
            "single-edge-in-4".into(),
            EdgeList::from_triples(4, [(0, 1, 2)]),
        ),
        ("figure-one".into(), shapes::figure_one()),
        ("path-64".into(), shapes::path(64, 3)),
        ("star-65".into(), shapes::star(65, 4)),
        ("complete-24".into(), shapes::complete(24, 5)),
        (
            "grid-8x8".into(),
            grid::grid_graph(8, 8, &sampler, &mut rng),
        ),
        ("zero-chain-64".into(), zero_chain(64, 4)),
        ("zero-cycles-6x5".into(), zero_cycles(6, 5, 3)),
        ("zero-clique-8".into(), shapes::complete(8, 0)),
        ("multi-edge-clump-16".into(), multi_edge_clump(16)),
        ("forest-5x6".into(), disconnected_forest(5, 6, 2)),
        ("near-max-path-8".into(), near_max_weights(8)),
    ];
    for (i, zero_pct) in [(0u64, 0u32), (1, 0), (2, 25)] {
        out.push((
            format!("rand-multigraph-{i}-z{zero_pct}"),
            random_multigraph(48, 160, 200, zero_pct, seed.wrapping_add(i)),
        ));
    }
    for (_, el) in &out {
        el.assert_valid();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_valid_named_and_deterministic() {
        let a = families(7);
        let b = families(7);
        assert_eq!(a.len(), b.len());
        for ((na, ea), (nb, eb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ea, eb);
            assert!(!na.is_empty());
        }
        let c = families(8);
        assert!(a.iter().zip(&c).any(|((_, ea), (_, ec))| ea != ec));
    }

    #[test]
    fn zero_chain_mixes_zero_and_positive() {
        let el = zero_chain(64, 4);
        assert!(el.edges.iter().any(|e| e.w == 0));
        assert!(el.edges.iter().any(|e| e.w > 0));
        assert_eq!(el.m(), 63);
    }

    #[test]
    fn zero_cycles_contract_to_a_path() {
        let el = zero_cycles(6, 5, 3);
        assert_eq!(el.n, 30);
        assert_eq!(el.edges.iter().filter(|e| e.w > 0).count(), 5);
        assert_eq!(el.edges.iter().filter(|e| e.w == 0).count(), 30);
    }

    #[test]
    fn multi_edge_clump_has_loops_and_parallels() {
        let el = multi_edge_clump(16);
        assert!(el.edges.iter().any(|e| e.is_self_loop()));
        let parallel = el
            .edges
            .iter()
            .filter(|e| e.u == 0 && e.v == 1 || e.u == 1 && e.v == 0)
            .count();
        assert_eq!(parallel, 3);
    }

    #[test]
    fn near_max_weights_exceed_u32_after_one_hop() {
        let el = near_max_weights(8);
        assert_eq!(el.max_weight(), Some(Weight::MAX));
        // Two max-weight hops overflow u32 but not u64.
        let two_hops = Weight::MAX as u64 * 2;
        assert!(two_hops > u32::MAX as u64);
    }

    #[test]
    fn forest_has_isolated_vertices() {
        let el = disconnected_forest(5, 6, 2);
        assert_eq!(el.n, 35);
        let mut touched = vec![false; el.n];
        for e in &el.edges {
            touched[e.u as usize] = true;
            touched[e.v as usize] = true;
        }
        assert_eq!(touched.iter().filter(|&&t| !t).count(), 5);
    }

    #[test]
    fn random_multigraph_honours_zero_fraction() {
        let el = random_multigraph(32, 500, 50, 0, 1);
        assert!(el.edges.iter().all(|e| e.w >= 1));
        let el = random_multigraph(32, 500, 50, 100, 1);
        assert!(el.edges.iter().all(|e| e.w == 0));
    }
}
