//! Graph substrate for the shortest-paths workspace.
//!
//! Re-implements, from scratch, the subset of the MultiThreaded Graph
//! Library (MTGL) that the paper's Thorup implementation relies on, plus the
//! 9th DIMACS Implementation Challenge machinery its experiments use:
//!
//! * [`types`] — vertex/weight/distance types and edge lists;
//! * [`csr`] — an undirected weighted graph in compressed-sparse-row form,
//!   built in parallel from an edge list;
//! * [`gen`] — synthetic generators: `Random` (cycle + random edges, exactly
//!   the DIMACS `Random4-n` recipe), `R-MAT` scale-free graphs, grids
//!   (road-network stand-ins for the paper's future-work discussion), and
//!   the two weight distributions (UWD uniform, PWD poly-logarithmic);
//! * [`dimacs`] — reader/writer for the challenge `.gr` format;
//! * [`subgraph`] — induced-subgraph extraction (an MTGL operation the
//!   paper names explicitly);
//! * [`split`] — a light/heavy pre-split CSR view (edges `≤ Δ` vs `> Δ`
//!   contiguous per vertex) that removes delta-stepping's per-relaxation
//!   weight filter;
//! * [`arena`] — an `Arc`-shared, weight-sorted CSR arena whose Δ-splits
//!   are `O(n)` offset views instead of `O(n + m)` duplicated copies — the
//!   representation the multi-graph registry serves tenants from;
//! * [`partition`] — owned arc partitions: contiguous per-worker vertex
//!   ranges balanced by arc count, the ownership map behind the
//!   topology-aware stepping kernels;
//! * [`stats`] — degree/weight summaries used by the bench harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod builder;
pub mod compact;
pub mod csr;
pub mod dimacs;
pub mod gen;
pub mod order;
pub mod partition;
pub mod paths;
pub mod split;
pub mod stats;
pub mod subgraph;
pub mod types;

pub use arena::{CompactCertified, CompactSplitView, CsrArena, SplitAdjacency, SplitView};
pub use compact::{CompactError, CompactSplitCsr, COMPACT_DIST_INF};
pub use csr::CsrGraph;
pub use gen::{GraphClass, WeightDist, WorkloadSpec};
pub use order::VertexPermutation;
pub use partition::{ArcPartition, PartitionedCsr};
pub use split::SplitCsr;
pub use types::{Dist, Edge, EdgeList, VertexId, Weight, INF};
