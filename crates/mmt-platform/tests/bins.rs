//! Property tests for the contention-free frontier bins: the merge phase
//! preserves the multiset of pending relaxations, the vote is the global
//! minimum non-empty bucket, and generation-stamped dedup suppresses
//! duplicates within a drain without leaking suppression across
//! generations — for arbitrary lane counts, ring lengths and push
//! sequences.

use mmt_platform::FrontierBins;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Arbitrary (lanes, ring, pushes) with every pushed bucket inside the
/// cyclic window `[0, ring)` — the invariant the kernels maintain.
fn scenario() -> impl Strategy<Value = (usize, usize, Vec<(u64, u32)>)> {
    (1usize..6, 2usize..12).prop_flat_map(|(lanes, ring)| {
        let push = (0..ring as u64, 0u32..64);
        (
            Just(lanes),
            Just(ring),
            proptest::collection::vec(push, 0..200),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every pushed relaxation comes back out exactly once as a raw merge
    /// entry, in the bucket it was pushed to, regardless of which lane it
    /// landed in — and the merged frontier is its per-bucket dedup.
    #[test]
    fn merge_preserves_the_multiset_of_pending_relaxations(
        (lanes, ring, pushes) in scenario()
    ) {
        let mut bins = FrontierBins::new(lanes, ring, 64);
        bins.scatter(&pushes, |&(b, v), lane| lane.push(b, v));
        prop_assert_eq!(bins.pending(), pushes.len());

        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for &(b, v) in &pushes {
            model.entry(b).or_default().push(v);
        }
        let mut raw_total = 0usize;
        for b in 0..ring as u64 {
            let mut out = Vec::new();
            let raw = bins.drain_bucket(b, &mut out);
            raw_total += raw;
            let want = model.remove(&b).unwrap_or_default();
            prop_assert_eq!(raw, want.len(), "raw merge count, bucket {}", b);
            let got: BTreeSet<u32> = out.iter().copied().collect();
            prop_assert_eq!(got.len(), out.len(), "duplicate in merged frontier");
            let want_set: BTreeSet<u32> = want.into_iter().collect();
            prop_assert_eq!(got, want_set, "merged set, bucket {}", b);
        }
        prop_assert_eq!(raw_total, pushes.len());
        prop_assert_eq!(bins.pending(), 0);
    }

    /// Draining buckets in vote order: each vote is exactly the model's
    /// minimum non-empty bucket, until both agree everything is empty.
    #[test]
    fn vote_returns_the_global_min_nonempty_bucket(
        (lanes, ring, pushes) in scenario()
    ) {
        let mut bins = FrontierBins::new(lanes, ring, 64);
        bins.scatter(&pushes, |&(b, v), lane| lane.push(b, v));
        let mut model: BTreeMap<u64, usize> = BTreeMap::new();
        for &(b, _) in &pushes {
            *model.entry(b).or_default() += 1;
        }
        let mut from = 0u64;
        loop {
            let want = model.keys().next().copied();
            prop_assert_eq!(bins.vote(from), want);
            let Some(b) = want else { break };
            let mut out = Vec::new();
            let raw = bins.drain_bucket(b, &mut out);
            prop_assert_eq!(raw, model.remove(&b).unwrap());
            from = b;
        }
    }

    /// Generation discipline: within one drain a vertex merges at most
    /// once (no duplicate settle per generation), and a vertex drained in
    /// an earlier generation is *not* suppressed when it legitimately
    /// re-enters a later one.
    #[test]
    fn dedup_is_per_generation_and_does_not_leak_across(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0u32..32, 1..40), 1..8)
    ) {
        let ring = 4usize;
        let mut bins = FrontierBins::new(3, ring, 32);
        for (r, vertices) in rounds.iter().enumerate() {
            let bucket = r as u64;
            let items: Vec<(u64, u32)> =
                vertices.iter().map(|&v| (bucket, v)).collect();
            bins.scatter(&items, |&(b, v), lane| lane.push(b, v));
            let mut out = Vec::new();
            bins.drain_bucket(bucket, &mut out);
            let got: BTreeSet<u32> = out.iter().copied().collect();
            prop_assert_eq!(got.len(), out.len(), "duplicate settle in round {}", r);
            let want: BTreeSet<u32> = vertices.iter().copied().collect();
            // Every distinct vertex pushed this round merges — including
            // any that already merged in a previous generation.
            prop_assert_eq!(got, want, "round {}", r);
        }
    }

    /// The merged frontier per bucket is independent of the lane count
    /// (the parallel layout is invisible to the serial merge) — the bins
    /// analogue of the kernels' cross-thread determinism.
    #[test]
    fn drained_sets_are_lane_count_invariant(
        (_, ring, pushes) in scenario(), lanes in 2usize..6
    ) {
        let mut one = FrontierBins::new(1, ring, 64);
        let mut many = FrontierBins::new(lanes, ring, 64);
        one.scatter(&pushes, |&(b, v), lane| lane.push(b, v));
        many.scatter(&pushes, |&(b, v), lane| lane.push(b, v));
        for b in 0..ring as u64 {
            let (mut a, mut c) = (Vec::new(), Vec::new());
            let raw_a = one.drain_bucket(b, &mut a);
            let raw_c = many.drain_bucket(b, &mut c);
            prop_assert_eq!(raw_a, raw_c, "raw count, bucket {}", b);
            a.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(a, c, "merged set, bucket {}", b);
        }
    }
}
