//! Reusable scratch memory for the SSSP hot paths.
//!
//! The MTA-2 paper's kernels touch every edge of the current bucket per
//! phase; on commodity hardware the dominant *avoidable* cost of a naive
//! translation is the per-phase `Vec` churn around those touches —
//! `collect()`ing relaxation requests, reallocating bucket vectors, and
//! sort+dedup passes over them. This module centralises the three reusable
//! structures that remove that churn:
//!
//! * [`ShardBuffers`] — per-worker append-only relax buffers. A parallel
//!   phase scatters into lane-local vectors (one uncontended lock per lane
//!   per phase), and the phase owner drains them serially into buckets.
//!   Capacity is retained across phases and across queries.
//! * [`BufferPool`] — a recycling pool of plain `Vec<T>` scratch vectors
//!   (toVisit lists, per-query distance copies). `acquire` reuses a warm
//!   buffer when one is idle; the `created` counter makes "zero steady-state
//!   allocations" testable.
//! * [`GenerationStamps`] — an `O(1)`-clear membership array keyed by a
//!   caller-supplied generation (bucket epoch, phase counter). Replaces both
//!   the sort+dedup over relax requests and per-round `bool` array clears.
//!
//! The vendored rayon shim spawns scoped threads per parallel call — there
//! is no persistent worker pool, so `thread_local!` storage would never be
//! reused. Lane-indexed shared buffers sidestep that: lanes live in the
//! solver's scratch state and contiguous chunks of the work list map onto
//! them deterministically.

use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::mem::MemFootprint;

/// Per-worker append-only buffers for parallel scatter phases.
///
/// A phase calls [`scatter`](Self::scatter) to run a closure over a work
/// list in parallel; each worker appends into its own lane. The phase owner
/// then calls [`drain`](Self::drain) to consume everything serially. Lane
/// vectors keep their capacity, so after warm-up a phase performs no heap
/// allocation beyond what the closure itself does.
#[derive(Debug)]
pub struct ShardBuffers<T: Send> {
    lanes: Vec<Mutex<Vec<T>>>,
}

impl<T: Send> ShardBuffers<T> {
    /// Creates `lanes` empty buffers. At least one lane is always created.
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        Self {
            lanes: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Runs `f(item, lane)` over `items` in parallel, handing each worker
    /// exclusive access to one lane buffer for its whole contiguous chunk.
    ///
    /// Each lane's mutex is taken once per scatter (uncontended: chunk →
    /// lane assignment is a bijection), not once per item.
    pub fn scatter<I, F>(&self, items: &[I], f: F)
    where
        I: Sync,
        F: Fn(&I, &mut Vec<T>) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let lanes = self.lanes.len();
        let chunk = items.len().div_ceil(lanes);
        let work: Vec<(usize, &[I])> = items.chunks(chunk).enumerate().collect();
        work.par_iter().for_each(|&(lane, part)| {
            let mut buf = self.lanes[lane].lock();
            for item in part {
                f(item, &mut buf);
            }
        });
    }

    /// Serially consumes every buffered item, preserving lane order.
    /// Lane capacity is retained for the next scatter.
    pub fn drain(&mut self, mut f: impl FnMut(T)) {
        for lane in &mut self.lanes {
            for item in lane.get_mut().drain(..) {
                f(item);
            }
        }
    }

    /// Total items currently buffered across all lanes (requires exclusive
    /// access, so it never races a scatter).
    pub fn buffered(&mut self) -> usize {
        self.lanes.iter_mut().map(|l| l.get_mut().len()).sum()
    }
}

impl<T: Copy + Send> MemFootprint for ShardBuffers<T> {
    fn heap_bytes(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.lock().capacity() * std::mem::size_of::<T>())
            .sum()
    }
}

/// A recycling pool of scratch vectors.
///
/// [`acquire`](Self::acquire) hands out a cleared buffer, reusing an idle
/// one when available; [`release`](Self::release) returns it. The
/// [`created`](Self::created) counter only moves when the pool has to
/// allocate a fresh vector, which is what the steady-state-allocation tests
/// assert on: after warm-up, `created()` must stop growing.
#[derive(Debug, Default)]
pub struct BufferPool<T: Send> {
    idle: Mutex<Vec<Vec<T>>>,
    created: AtomicUsize,
}

impl<T: Send> BufferPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            idle: Mutex::new(Vec::new()),
            created: AtomicUsize::new(0),
        }
    }

    /// Hands out an empty buffer, reusing a warm one when available.
    pub fn acquire(&self) -> Vec<T> {
        if let Some(buf) = self.idle.lock().pop() {
            return buf;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }

    /// Returns `buf` to the pool. Contents are cleared; capacity is kept.
    pub fn release(&self, mut buf: Vec<T>) {
        buf.clear();
        self.idle.lock().push(buf);
    }

    /// Number of buffers the pool has ever allocated (not handed out —
    /// allocated). Flat across a window ⇒ that window ran allocation-free.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.idle.lock().len()
    }
}

/// Generation-stamped membership array with `O(1)` clear.
///
/// Each slot remembers the last generation it was stamped with; membership
/// in the current generation is `stamp == gen`. Advancing the generation
/// invalidates every slot at once — no per-round `fill(false)` pass. The
/// caller picks what a generation means: the delta-stepping kernel uses the
/// absolute bucket index for "already queued in that bucket" dedup, and the
/// phase counter for "already relaxed this phase" re-scan suppression.
///
/// Generation `0` is reserved as "never stamped"; [`advance`](Self::advance)
/// therefore starts handing out `1`.
#[derive(Debug, Clone)]
pub struct GenerationStamps {
    stamps: Vec<u64>,
    gen: u64,
}

impl GenerationStamps {
    /// Creates `len` slots, none stamped, current generation `1`.
    pub fn new(len: usize) -> Self {
        Self {
            stamps: vec![0; len],
            gen: 1,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when the array has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// The current generation.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Moves to a fresh generation, logically clearing every slot.
    #[inline]
    pub fn advance(&mut self) {
        self.gen += 1;
    }

    /// Grows to `len` slots (new slots unstamped) and clears all slots.
    /// Capacity is retained when shrinking or re-running at the same size.
    pub fn reset(&mut self, len: usize) {
        if len > self.stamps.len() {
            self.stamps.resize(len, 0);
        }
        self.advance();
    }

    /// Stamps slot `i` with the current generation. Returns `true` if the
    /// slot was not already stamped this generation — i.e. the caller is
    /// the first to mark it since the last [`advance`](Self::advance).
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let fresh = self.stamps[i] != self.gen;
        self.stamps[i] = self.gen;
        fresh
    }

    /// True when slot `i` is stamped with the current generation.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamps[i] == self.gen
    }

    /// Stamps slot `i` with an arbitrary caller-chosen stamp (e.g. an
    /// absolute bucket index). Returns `true` when the stamp changed.
    /// Stamp `0` means "none" — use [`unmark`](Self::unmark) for that.
    #[inline]
    pub fn mark_with(&mut self, i: usize, stamp: u64) -> bool {
        debug_assert_ne!(stamp, 0, "stamp 0 is reserved for `unmarked`");
        let changed = self.stamps[i] != stamp;
        self.stamps[i] = stamp;
        changed
    }

    /// The raw stamp at slot `i` (`0` = never stamped / unmarked).
    #[inline]
    pub fn stamp_of(&self, i: usize) -> u64 {
        self.stamps[i]
    }

    /// Clears slot `i` regardless of generation.
    #[inline]
    pub fn unmark(&mut self, i: usize) {
        self.stamps[i] = 0;
    }
}

impl MemFootprint for GenerationStamps {
    fn heap_bytes(&self) -> usize {
        self.stamps.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_reaches_every_item_and_drain_empties() {
        let mut bufs: ShardBuffers<u64> = ShardBuffers::new(4);
        let items: Vec<u64> = (0..1000).collect();
        bufs.scatter(&items, |&x, lane| lane.push(x * 2));
        assert_eq!(bufs.buffered(), 1000);
        let mut sum = 0u64;
        bufs.drain(|x| sum += x);
        assert_eq!(sum, 2 * (0..1000u64).sum::<u64>());
        assert_eq!(bufs.buffered(), 0);
    }

    #[test]
    fn scatter_retains_capacity_across_rounds() {
        let mut bufs: ShardBuffers<u32> = ShardBuffers::new(2);
        let items: Vec<u32> = (0..512).collect();
        bufs.scatter(&items, |&x, lane| lane.push(x));
        bufs.drain(|_| {});
        let warm = bufs.heap_bytes();
        assert!(warm > 0);
        // Same-size round: no lane may grow.
        bufs.scatter(&items, |&x, lane| lane.push(x));
        bufs.drain(|_| {});
        assert_eq!(bufs.heap_bytes(), warm);
    }

    #[test]
    fn scatter_on_empty_input_is_a_noop() {
        let mut bufs: ShardBuffers<u8> = ShardBuffers::new(3);
        bufs.scatter(&[] as &[u8], |&x, lane| lane.push(x));
        assert_eq!(bufs.buffered(), 0);
    }

    #[test]
    fn single_lane_degenerates_to_serial() {
        let mut bufs: ShardBuffers<usize> = ShardBuffers::new(0);
        assert_eq!(bufs.lane_count(), 1);
        let items: Vec<usize> = (0..10).collect();
        bufs.scatter(&items, |&x, lane| lane.push(x));
        let mut out = Vec::new();
        bufs.drain(|x| out.push(x));
        // One lane ⇒ order preserved exactly.
        assert_eq!(out, items);
    }

    #[test]
    fn buffer_pool_reuses_and_counts() {
        let pool: BufferPool<u64> = BufferPool::new();
        assert_eq!(pool.created(), 0);
        let mut a = pool.acquire();
        assert_eq!(pool.created(), 1);
        a.extend(0..100);
        let cap = a.capacity();
        pool.release(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire();
        assert_eq!(pool.created(), 1, "warm buffer reused, none created");
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        pool.release(b);
    }

    #[test]
    fn buffer_pool_counts_each_cold_acquire() {
        let pool: BufferPool<u8> = BufferPool::new();
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.created(), 2);
        pool.release(a);
        pool.release(b);
        let _c = pool.acquire();
        let _d = pool.acquire();
        assert_eq!(pool.created(), 2, "steady state allocates nothing");
    }

    #[test]
    fn buffer_pool_is_shareable_across_threads() {
        let pool: BufferPool<usize> = BufferPool::new();
        let handed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let mut b = pool.acquire();
                        b.push(1);
                        handed.fetch_add(1, Ordering::Relaxed);
                        pool.release(b);
                    }
                });
            }
        });
        assert_eq!(handed.load(Ordering::Relaxed), 200);
        // Far fewer creations than acquisitions.
        assert!(pool.created() <= 4);
    }

    #[test]
    fn generation_stamps_mark_and_advance() {
        let mut g = GenerationStamps::new(8);
        assert!(!g.is_marked(3));
        assert!(g.mark(3));
        assert!(!g.mark(3), "second mark in same generation");
        assert!(g.is_marked(3));
        g.advance();
        assert!(!g.is_marked(3), "advance clears in O(1)");
        assert!(g.mark(3));
    }

    #[test]
    fn generation_stamps_custom_stamps() {
        let mut g = GenerationStamps::new(4);
        assert_eq!(g.stamp_of(2), 0);
        assert!(g.mark_with(2, 17));
        assert!(!g.mark_with(2, 17), "same stamp is a no-op");
        assert!(g.mark_with(2, 18));
        assert_eq!(g.stamp_of(2), 18);
        g.unmark(2);
        assert_eq!(g.stamp_of(2), 0);
    }

    #[test]
    fn generation_stamps_reset_grows_and_clears() {
        let mut g = GenerationStamps::new(2);
        g.mark(0);
        g.reset(5);
        assert_eq!(g.len(), 5);
        assert!(!g.is_marked(0));
        assert!(!g.is_marked(4));
        g.mark(4);
        assert!(g.is_marked(4));
        // Shrinking request keeps the larger backing store.
        g.reset(1);
        assert_eq!(g.len(), 5);
    }
}
