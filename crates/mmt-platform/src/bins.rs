//! Contention-free frontier bins for the parallel stepping kernels.
//!
//! The Δ-stepping hot path scatters relaxation *requests* into shared
//! lane buffers and re-buckets them serially — every improved vertex
//! crosses the merge phase as a `(vertex, dist)` pair and the bucket
//! structure itself stays serial. The stepping algorithms of Dong, Gu,
//! Sun and Zhang (ρ-stepping / Δ*-stepping, arXiv:2105.06145) and the
//! GARDENIA OpenMP Δ-stepping kernel go one step further: each worker
//! owns a full set of *bucket bins* and inserts improved vertices
//! directly into its own bins keyed by the new distance — no shared
//! bucket array, no atomic bucket pushes, no contention in the relax
//! phase at all. The next bucket to process is then found by a
//! reduce-style vote: each lane reports its smallest non-empty bin and
//! the minimum wins.
//!
//! [`FrontierBins`] is that substrate. The safety story is structural,
//! not asserted: the **only** insertion API is [`BinLane::push`], and a
//! worker can only reach a [`BinLane`] as the exclusive `&mut` argument
//! of its own lane inside [`FrontierBins::scatter`] — a cross-thread or
//! shared-bucket push is unrepresentable, not merely untested.
//!
//! Bins are ring-indexed by absolute bucket number (the same cyclic
//! window discipline as the Δ-stepping scratch): callers guarantee all
//! live entries sit within `ring_len` buckets of the current minimum.
//! Entries are never *removed* when a vertex migrates to a lower bucket;
//! stale copies are skipped at process time by the kernel's distance
//! check. [`FrontierBins::drain_bucket`] merges one bucket from every
//! lane into a caller buffer, deduplicating vertices with a
//! generation-stamped membership array (`O(1)` clear per drain, the
//! scratch discipline of [`GenerationStamps`]).

use crate::mem::MemFootprint;
use crate::scratch::GenerationStamps;
use parking_lot::Mutex;
use rayon::prelude::*;

/// One worker's private set of bucket bins.
///
/// Obtained only as the `&mut` lane argument of
/// [`FrontierBins::scatter`] (or serially via
/// [`FrontierBins::seed`]), so pushes are always exclusive to one
/// worker — the type system is the no-contention proof.
#[derive(Debug)]
pub struct BinLane {
    /// Ring of bins, indexed by `bucket % ring_len`.
    bins: Vec<Vec<u32>>,
    /// Items currently held across all bins (stale entries included).
    pending: usize,
}

impl BinLane {
    fn new(ring: usize) -> Self {
        Self {
            bins: (0..ring.max(1)).map(|_| Vec::new()).collect(),
            pending: 0,
        }
    }

    /// Inserts `item` into the bin for absolute bucket `bucket`.
    ///
    /// This is the *only* insertion point of the whole substrate, and it
    /// requires `&mut self` — two workers can never push into the same
    /// lane, and nothing outside a lane can be pushed into at all.
    #[inline]
    pub fn push(&mut self, bucket: u64, item: u32) {
        let slot = (bucket % self.bins.len() as u64) as usize;
        self.bins[slot].push(item);
        self.pending += 1;
    }

    /// Items currently held in this lane (live and stale).
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// This lane's vote: the smallest absolute bucket in
    /// `[from, from + ring_len)` holding at least one entry, under the
    /// cyclic-window invariant that no live entry sits below `from`.
    pub fn min_bucket(&self, from: u64) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let ring = self.bins.len() as u64;
        (0..ring)
            .map(|k| from + k)
            .find(|b| !self.bins[(b % ring) as usize].is_empty())
    }

    fn reset(&mut self, ring: usize) {
        let ring = ring.max(1);
        if self.bins.len() != ring {
            self.bins.resize_with(ring, Vec::new);
        }
        // All bins drain before a kernel returns; clear anyway so a
        // cancelled or panicked query can't poison the next one.
        for b in &mut self.bins {
            b.clear();
        }
        self.pending = 0;
    }
}

/// Per-thread growable bucket bins with a reduce-style next-bucket vote
/// and generation-stamped merge dedup. See the module docs for the
/// contention story.
#[derive(Debug)]
pub struct FrontierBins {
    lanes: Vec<Mutex<BinLane>>,
    stamps: GenerationStamps,
    ring: usize,
}

impl FrontierBins {
    /// Creates `lanes` lanes of `ring` bins each, with a dedup stamp
    /// array of `n` slots. At least one lane and one bin always exist.
    pub fn new(lanes: usize, ring: usize, n: usize) -> Self {
        let ring = ring.max(1);
        Self {
            lanes: (0..lanes.max(1))
                .map(|_| Mutex::new(BinLane::new(ring)))
                .collect(),
            stamps: GenerationStamps::new(n),
            ring,
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of bins per lane (the cyclic window length).
    #[inline]
    pub fn ring_len(&self) -> usize {
        self.ring
    }

    /// Re-dimensions for a new query: `ring` bins per lane (cleared),
    /// stamp array grown to `n` slots and logically cleared. Lane count
    /// is fixed at construction. Capacity is retained throughout.
    pub fn reset(&mut self, ring: usize, n: usize) {
        let ring = ring.max(1);
        for lane in &mut self.lanes {
            lane.get_mut().reset(ring);
        }
        self.ring = ring;
        self.stamps.reset(n);
    }

    /// Items currently held across every lane (live and stale).
    pub fn pending(&mut self) -> usize {
        self.lanes.iter_mut().map(|l| l.get_mut().pending()).sum()
    }

    /// Serial insertion for query setup (the source vertex). Uses lane 0;
    /// `&mut self` keeps this off any concurrent path.
    pub fn seed(&mut self, bucket: u64, item: u32) {
        self.lanes[0].get_mut().push(bucket, item);
    }

    /// Runs `f(item, lane)` over `items` in parallel, handing each worker
    /// exclusive `&mut` access to one [`BinLane`] for its whole
    /// contiguous chunk — the relax phase writes only thread-local bins.
    /// Each lane's mutex is taken once per scatter (uncontended: chunk →
    /// lane assignment is a bijection), not once per item.
    pub fn scatter<I, F>(&self, items: &[I], f: F)
    where
        I: Sync,
        F: Fn(&I, &mut BinLane) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let lanes = self.lanes.len();
        let chunk = items.len().div_ceil(lanes);
        let work: Vec<(usize, &[I])> = items.chunks(chunk).enumerate().collect();
        work.par_iter().for_each(|&(lane, part)| {
            let mut bin_lane = self.lanes[lane].lock();
            for item in part {
                f(item, &mut bin_lane);
            }
        });
    }

    /// As [`scatter`](Self::scatter), but with an *owner-stable* lane
    /// assignment: `owner(item)` decides the lane (mod the lane count),
    /// not the item's position in the frontier. A worker therefore
    /// processes the same slice of the vertex space on every call — the
    /// owned-arc-partition discipline, where each worker's relax loop
    /// walks only arc ranges it owns and its distance writes stay in the
    /// same cache neighbourhood across buckets. Every lane scans the
    /// whole (small) frontier and handles only its own items; the arc
    /// work — the expensive part — is disjoint by construction.
    pub fn scatter_owned<I, O, F>(&self, items: &[I], owner: O, f: F)
    where
        I: Sync,
        O: Fn(&I) -> usize + Sync,
        F: Fn(&I, &mut BinLane) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let lanes = self.lanes.len();
        (0..lanes).into_par_iter().for_each(|lane| {
            let mut bin_lane = self.lanes[lane].lock();
            for item in items {
                if owner(item) % lanes == lane {
                    f(item, &mut bin_lane);
                }
            }
        });
    }

    /// The reduce-style next-bucket vote: every lane reports its smallest
    /// non-empty bucket at or above `from` (see [`BinLane::min_bucket`])
    /// and the global minimum wins. `None` when every lane is empty.
    ///
    /// Correct only under the cyclic-window invariant: no live entry
    /// below `from`, none at or above `from + ring_len`.
    pub fn vote(&mut self, from: u64) -> Option<u64> {
        self.lanes
            .iter_mut()
            .filter_map(|l| l.get_mut().min_bucket(from))
            .min()
    }

    /// Merges bucket `bucket` out of every lane, appending each distinct
    /// vertex to `out` once. Dedup is per call: the stamp generation
    /// advances on entry, so duplicates *within* this drain (the same
    /// vertex improved by several lanes, or several times by one) are
    /// suppressed, while a legitimate re-entry of the vertex in a later
    /// drain passes. Returns the number of raw entries consumed
    /// (duplicates included), so callers can account for merge work.
    pub fn drain_bucket(&mut self, bucket: u64, out: &mut Vec<u32>) -> usize {
        self.stamps.advance();
        let slot = (bucket % self.ring as u64) as usize;
        let mut raw = 0usize;
        for lane in &mut self.lanes {
            let lane = lane.get_mut();
            let bin = &mut lane.bins[slot];
            raw += bin.len();
            lane.pending -= bin.len();
            for v in bin.drain(..) {
                if self.stamps.mark(v as usize) {
                    out.push(v);
                }
            }
        }
        raw
    }

    /// Drops every held entry (used when a query is cancelled mid-flight
    /// so the scratch is clean for the next one). Capacity is retained.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.get_mut().reset(self.ring);
        }
    }
}

impl MemFootprint for FrontierBins {
    fn heap_bytes(&self) -> usize {
        self.stamps.heap_bytes()
            + self
                .lanes
                .iter()
                .map(|l| {
                    l.lock()
                        .bins
                        .iter()
                        .map(|b| b.capacity() * std::mem::size_of::<u32>())
                        .sum::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_vote_drain_round_trip() {
        let mut bins = FrontierBins::new(4, 8, 16);
        assert_eq!(bins.vote(0), None);
        bins.seed(3, 7);
        assert_eq!(bins.pending(), 1);
        assert_eq!(bins.vote(0), Some(3));
        let mut out = Vec::new();
        assert_eq!(bins.drain_bucket(3, &mut out), 1);
        assert_eq!(out, vec![7]);
        assert_eq!(bins.pending(), 0);
        assert_eq!(bins.vote(3), None);
    }

    #[test]
    fn scatter_pushes_stay_lane_local_and_merge_back() {
        let mut bins = FrontierBins::new(4, 16, 256);
        let items: Vec<u32> = (0..200).collect();
        bins.scatter(&items, |&v, lane| lane.push((v % 10) as u64, v));
        assert_eq!(bins.pending(), 200);
        let mut seen = Vec::new();
        for b in 0..10u64 {
            let before = seen.len();
            bins.drain_bucket(b, &mut seen);
            assert_eq!(seen.len() - before, 20, "bucket {b}");
        }
        seen.sort_unstable();
        assert_eq!(seen, items);
    }

    #[test]
    fn scatter_owned_routes_by_owner_and_processes_each_item_once() {
        let mut bins = FrontierBins::new(4, 16, 256);
        let items: Vec<u32> = (0..200).collect();
        // Owner = vertex / 50: four contiguous vertex ranges, one per lane.
        bins.scatter_owned(
            &items,
            |&v| (v / 50) as usize,
            |&v, lane| lane.push((v % 10) as u64, v),
        );
        assert_eq!(bins.pending(), 200, "every item handled exactly once");
        let mut seen = Vec::new();
        for b in 0..10u64 {
            bins.drain_bucket(b, &mut seen);
        }
        seen.sort_unstable();
        assert_eq!(seen, items);
        // Owners past the lane count wrap instead of dropping items.
        bins.reset(16, 256);
        bins.scatter_owned(&items, |&v| v as usize * 31, |&v, lane| lane.push(0, v));
        assert_eq!(bins.pending(), 200);
    }

    #[test]
    fn vote_is_the_global_minimum_across_lanes() {
        let mut bins = FrontierBins::new(3, 8, 64);
        let items = [(0usize, 9u64, 1u32), (1, 5, 2), (2, 7, 3)];
        // Route each item to a specific lane by scattering one chunk per
        // lane (3 items, 3 lanes → chunk size 1).
        bins.scatter(&items, |&(_, b, v), lane| lane.push(b, v));
        assert_eq!(bins.vote(4), Some(5));
        let mut out = Vec::new();
        bins.drain_bucket(5, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(bins.vote(5), Some(7));
    }

    #[test]
    fn drain_dedups_within_a_call_but_not_across_calls() {
        let mut bins = FrontierBins::new(2, 4, 8);
        bins.seed(1, 6);
        bins.seed(1, 6);
        bins.seed(1, 5);
        let mut out = Vec::new();
        assert_eq!(bins.drain_bucket(1, &mut out), 3, "raw count keeps dups");
        out.sort_unstable();
        assert_eq!(out, vec![5, 6], "merged frontier does not");
        // The same vertex re-enters in a later generation.
        bins.seed(2, 6);
        out.clear();
        bins.drain_bucket(2, &mut out);
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn ring_wraps_cleanly_under_the_window_invariant() {
        let mut bins = FrontierBins::new(2, 4, 8);
        bins.seed(6, 1); // slot 2
        bins.seed(9, 2); // slot 1 (wrapped)
        assert_eq!(bins.vote(6), Some(6));
        let mut out = Vec::new();
        bins.drain_bucket(6, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(bins.vote(7), Some(9));
        out.clear();
        bins.drain_bucket(9, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn reset_clears_and_redimensions() {
        let mut bins = FrontierBins::new(2, 4, 4);
        bins.seed(0, 1);
        bins.reset(8, 16);
        assert_eq!(bins.ring_len(), 8);
        assert_eq!(bins.pending(), 0);
        assert_eq!(bins.vote(0), None);
        bins.seed(7, 15);
        let mut out = Vec::new();
        bins.drain_bucket(7, &mut out);
        assert_eq!(out, vec![15]);
    }

    #[test]
    fn clear_drops_pending_entries() {
        let mut bins = FrontierBins::new(2, 4, 8);
        bins.seed(1, 3);
        bins.seed(2, 4);
        bins.clear();
        assert_eq!(bins.pending(), 0);
        assert_eq!(bins.vote(0), None);
    }

    #[test]
    fn heap_bytes_grow_with_use() {
        let mut bins = FrontierBins::new(2, 4, 64);
        let cold = bins.heap_bytes();
        bins.seed(0, 1);
        assert!(bins.heap_bytes() >= cold);
    }
}
