//! Cache-padded event counters for algorithm instrumentation.
//!
//! The paper's analysis leans on *why* numbers come out the way they do:
//! how many loop setups the toVisit construction pays for, how far `mind`
//! updates propagate, how many relaxations each algorithm performs. These
//! counters make those quantities observable without distorting the hot
//! paths (relaxed atomics, one cache line each).

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// A single cache-padded relaxed counter.
#[derive(Debug, Default)]
pub struct Counter(CachePadded<AtomicU64>);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (relaxed; counters are statistics, not synchronisation).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Subtracts `n` (wrapping; used for gauge-style counters such as
    /// queue depth, where increments and decrements are paired).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// The standard set of events the solvers report.
///
/// Every SSSP engine in the workspace fills in the subset that makes sense
/// for it; the benchmark harness prints them alongside timings.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Edge relaxations attempted (one per directed edge scan).
    pub relaxations: Counter,
    /// Relaxations that strictly lowered a tentative distance.
    pub improvements: Counter,
    /// Vertices settled.
    pub settled: Counter,
    /// Parallel-loop setups performed (the cost Table 6 is about).
    pub parallel_loop_setups: Counter,
    /// Serial-loop fallbacks chosen by the selective toVisit strategy.
    pub serial_loops: Counter,
    /// Total hops `mind` updates travelled up the Component Hierarchy.
    pub mind_propagation_hops: Counter,
    /// Bucket expansions (Thorup visit-loop iterations / delta-stepping phases).
    pub bucket_expansions: Counter,
    /// Directed arcs read out of the CSR adjacency arrays. A relaxation
    /// implies an arc scan but not vice versa (a kernel may read an arc and
    /// decide not to relax), so this is the cache-traffic proxy the layout
    /// experiments report: permutations change *where* these reads land,
    /// not how many there are.
    pub arcs_scanned: Counter,
}

/// A plain-value copy of an [`EventCounters`] at one instant — what the
/// benchmark emitters serialise, so both bench binaries share one counters
/// story instead of each reading atomics ad hoc.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// See [`EventCounters::relaxations`].
    pub relaxations: u64,
    /// See [`EventCounters::improvements`].
    pub improvements: u64,
    /// See [`EventCounters::settled`].
    pub settled: u64,
    /// See [`EventCounters::parallel_loop_setups`].
    pub parallel_loop_setups: u64,
    /// See [`EventCounters::serial_loops`].
    pub serial_loops: u64,
    /// See [`EventCounters::mind_propagation_hops`].
    pub mind_propagation_hops: u64,
    /// See [`EventCounters::bucket_expansions`].
    pub bucket_expansions: u64,
    /// See [`EventCounters::arcs_scanned`].
    pub arcs_scanned: u64,
}

impl EventCounters {
    /// A zeroed set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets every counter.
    pub fn reset(&self) {
        self.relaxations.reset();
        self.improvements.reset();
        self.settled.reset();
        self.parallel_loop_setups.reset();
        self.serial_loops.reset();
        self.mind_propagation_hops.reset();
        self.bucket_expansions.reset();
        self.arcs_scanned.reset();
    }

    /// Captures every counter as plain values (relaxed loads).
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            relaxations: self.relaxations.get(),
            improvements: self.improvements.get(),
            settled: self.settled.get(),
            parallel_loop_setups: self.parallel_loop_setups.get(),
            serial_loops: self.serial_loops.get(),
            mind_propagation_hops: self.mind_propagation_hops.get(),
            bucket_expansions: self.bucket_expansions.get(),
            arcs_scanned: self.arcs_scanned.get(),
        }
    }

    /// Renders the non-zero counters as a compact `key=value` line.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for (name, c) in [
            ("relax", &self.relaxations),
            ("improve", &self.improvements),
            ("settled", &self.settled),
            ("par_loops", &self.parallel_loop_setups),
            ("ser_loops", &self.serial_loops),
            ("mind_hops", &self.mind_propagation_hops),
            ("buckets", &self.bucket_expansions),
            ("arcs", &self.arcs_scanned),
        ] {
            let v = c.get();
            if v != 0 {
                parts.push(format!("{name}={v}"));
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let c = Counter::new();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_counts_sum() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn snapshot_matches_counters_and_reset_zeroes_everything() {
        let ev = EventCounters::new();
        ev.relaxations.add(7);
        ev.arcs_scanned.add(9);
        ev.bucket_expansions.bump();
        let snap = ev.snapshot();
        assert_eq!(snap.relaxations, 7);
        assert_eq!(snap.arcs_scanned, 9);
        assert_eq!(snap.bucket_expansions, 1);
        assert_eq!(snap.settled, 0);
        ev.reset();
        assert_eq!(ev.snapshot(), CountersSnapshot::default());
    }

    #[test]
    fn summary_skips_zeroes() {
        let ev = EventCounters::new();
        ev.relaxations.add(3);
        ev.settled.add(2);
        let s = ev.summary();
        assert!(s.contains("relax=3"));
        assert!(s.contains("settled=2"));
        assert!(!s.contains("buckets"));
        ev.reset();
        assert!(ev.summary().is_empty());
    }
}
