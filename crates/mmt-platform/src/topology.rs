//! CPU topology discovery and worker pinning: the commodity answer to
//! the MTA-2's flat memory.
//!
//! The paper's machine hides memory placement entirely — every word is
//! equally far from every processor, so the algorithms never think about
//! locality. Commodity hardware is the opposite: cores share caches in
//! packages, packages own NUMA memory, and a worker that migrates between
//! cores drags its working set across that hierarchy. This module
//! discovers the hierarchy (by parsing `/sys/devices/system/cpu` and
//! `/sys/devices/system/node` — no hwloc, no libc) and turns a
//! [`PinPolicy`] into a worker→CPU plan that the pool layer applies via
//! `sched_setaffinity`.
//!
//! Degradation contract: on platforms without sysfs the topology falls
//! back to "N anonymous cores, one package, one node", and
//! [`pin_current_thread`] is a warning-free no-op unless the crate is
//! built with the non-default `pin` feature on x86_64 Linux (the raw
//! syscall needs `unsafe`, which default builds forbid). Every caller
//! treats pinning as advisory: distances never depend on it, only
//! locality does.

use std::collections::BTreeSet;
use std::path::Path;

/// Where a logical CPU sits: its id, physical package (socket), and NUMA
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuSlot {
    /// Logical CPU id (the `N` of `/sys/devices/system/cpu/cpuN`).
    pub cpu: usize,
    /// Physical package id; 0 when unknown.
    pub package: usize,
    /// NUMA node id; 0 when unknown.
    pub node: usize,
}

/// The host's CPU topology: every online logical CPU with its package and
/// NUMA-node grouping, sorted so that adjacent slots share caches.
#[derive(Debug, Clone)]
pub struct CpuTopology {
    /// Sorted by `(package, node, cpu)`: walking this in order is the
    /// "compact" placement.
    slots: Vec<CpuSlot>,
    packages: usize,
    numa_nodes: usize,
}

impl CpuTopology {
    /// Discovers the host topology from sysfs, falling back to a flat
    /// single-package topology of [`crate::available_threads`] anonymous
    /// cores when sysfs is absent (non-Linux, sandboxes). Never warns,
    /// never fails.
    pub fn discover() -> Self {
        Self::from_sysfs(Path::new("/sys/devices/system"))
            .unwrap_or_else(|| Self::flat(crate::pool::available_threads()))
    }

    /// A synthetic flat topology: `cores` CPUs in one package on one node
    /// (the no-information fallback, also handy in tests).
    pub fn flat(cores: usize) -> Self {
        Self::from_slots(
            (0..cores.max(1))
                .map(|cpu| CpuSlot {
                    cpu,
                    package: 0,
                    node: 0,
                })
                .collect(),
        )
    }

    /// Builds a topology from explicit slots (tests, synthetic hosts).
    /// Slots are re-sorted into compact order; at least one slot always
    /// exists.
    pub fn from_slots(mut slots: Vec<CpuSlot>) -> Self {
        if slots.is_empty() {
            slots.push(CpuSlot {
                cpu: 0,
                package: 0,
                node: 0,
            });
        }
        slots.sort_by_key(|s| (s.package, s.node, s.cpu));
        slots.dedup_by_key(|s| s.cpu);
        let packages = slots
            .iter()
            .map(|s| s.package)
            .collect::<BTreeSet<_>>()
            .len();
        let numa_nodes = slots.iter().map(|s| s.node).collect::<BTreeSet<_>>().len();
        Self {
            slots,
            packages,
            numa_nodes,
        }
    }

    fn from_sysfs(root: &Path) -> Option<Self> {
        let online = std::fs::read_to_string(root.join("cpu/online")).ok()?;
        let cpus = parse_cpu_list(online.trim());
        if cpus.is_empty() {
            return None;
        }
        // NUMA membership comes from the node side: each
        // `node<N>/cpulist` names the CPUs it owns.
        let mut node_of = std::collections::HashMap::new();
        if let Ok(entries) = std::fs::read_dir(root.join("node")) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(id) = name
                    .strip_prefix("node")
                    .and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                if let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) {
                    for cpu in parse_cpu_list(list.trim()) {
                        node_of.insert(cpu, id);
                    }
                }
            }
        }
        let slots = cpus
            .into_iter()
            .map(|cpu| {
                let package = std::fs::read_to_string(
                    root.join(format!("cpu/cpu{cpu}/topology/physical_package_id")),
                )
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0);
                CpuSlot {
                    cpu,
                    package,
                    node: node_of.get(&cpu).copied().unwrap_or(0),
                }
            })
            .collect();
        Some(Self::from_slots(slots))
    }

    /// Online logical CPUs.
    pub fn logical_cores(&self) -> usize {
        self.slots.len()
    }

    /// Distinct physical packages.
    pub fn packages(&self) -> usize {
        self.packages
    }

    /// Distinct NUMA nodes (1 on flat hosts).
    pub fn numa_nodes(&self) -> usize {
        self.numa_nodes
    }

    /// The slots in compact (cache-adjacent) order.
    pub fn slots(&self) -> &[CpuSlot] {
        &self.slots
    }

    /// The worker→CPU plan for `workers` workers under `policy`:
    ///
    /// * [`PinPolicy::None`] — every entry is `None` (no pinning);
    /// * [`PinPolicy::Compact`] — workers pack cache-adjacent CPUs in
    ///   compact order, maximising shared-cache reuse between workers
    ///   that exchange frontier vertices;
    /// * [`PinPolicy::Spread`] — workers round-robin across packages,
    ///   maximising the aggregate cache and memory bandwidth each worker
    ///   sees.
    ///
    /// More workers than CPUs wrap around (oversubscription pins two
    /// workers to one CPU rather than leaving the surplus floating).
    pub fn pin_plan(&self, policy: PinPolicy, workers: usize) -> Vec<Option<usize>> {
        match policy {
            PinPolicy::None => vec![None; workers],
            PinPolicy::Compact => (0..workers)
                .map(|i| Some(self.slots[i % self.slots.len()].cpu))
                .collect(),
            PinPolicy::Spread => {
                let order = self.spread_order();
                (0..workers).map(|i| Some(order[i % order.len()])).collect()
            }
        }
    }

    /// CPU ids interleaved across packages: first CPU of each package in
    /// package order, then the second of each, and so on.
    fn spread_order(&self) -> Vec<usize> {
        let mut per_package: Vec<Vec<usize>> = Vec::new();
        let mut ids: Vec<usize> = Vec::new();
        for s in &self.slots {
            let slot = match ids.iter().position(|&p| p == s.package) {
                Some(i) => i,
                None => {
                    ids.push(s.package);
                    per_package.push(Vec::new());
                    per_package.len() - 1
                }
            };
            per_package[slot].push(s.cpu);
        }
        let mut order = Vec::with_capacity(self.slots.len());
        let deepest = per_package.iter().map(Vec::len).max().unwrap_or(0);
        for depth in 0..deepest {
            for pkg in &per_package {
                if let Some(&cpu) = pkg.get(depth) {
                    order.push(cpu);
                }
            }
        }
        order
    }
}

/// How (whether) worker threads are pinned to CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// No affinity: the OS scheduler places workers freely.
    #[default]
    None,
    /// Pack workers onto cache-adjacent CPUs (see
    /// [`CpuTopology::pin_plan`]).
    Compact,
    /// Interleave workers across packages.
    Spread,
}

impl PinPolicy {
    /// The policy selected by the `MMT_PIN` environment variable:
    /// `1`/`compact` → [`Compact`](Self::Compact), `2`/`spread` →
    /// [`Spread`](Self::Spread), anything else (including unset, `0` and
    /// `none`) → [`None`](Self::None). Unrecognised values fall back
    /// silently — the pinning layer never warns.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("MMT_PIN").ok().as_deref())
    }

    /// Pure form of [`from_env`](Self::from_env), for tests.
    pub fn parse(value: Option<&str>) -> Self {
        match value.map(str::trim).map(str::to_ascii_lowercase).as_deref() {
            Some("1") | Some("compact") | Some("on") => Self::Compact,
            Some("2") | Some("spread") => Self::Spread,
            _ => Self::None,
        }
    }

    /// Stable label for artifact headers (`none` / `compact` / `spread`).
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Compact => "compact",
            Self::Spread => "spread",
        }
    }
}

/// Parses a sysfs CPU list (`"0-3,8,10-11"`) into sorted, deduplicated
/// CPU ids. Malformed pieces are skipped; ranges are capped at 4096 CPUs
/// as a corrupt-input guard.
pub fn parse_cpu_list(s: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi && hi - lo < 4096 {
                    out.extend(lo..=hi);
                }
            }
        } else if let Ok(v) = part.parse::<usize>() {
            out.push(v);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Pins the calling thread to `cpu`.
///
/// Returns `true` only when an affinity mask was actually installed: the
/// crate was built with the non-default `pin` feature on x86_64 Linux and
/// the kernel accepted the mask. Everywhere else this is a warning-free
/// no-op returning `false` — callers treat the result as advisory.
#[cfg(all(feature = "pin", target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= 1024 {
        return false;
    }
    // Raw `sched_setaffinity(0, sizeof mask, &mask)` (x86_64 syscall 203)
    // so the workspace needs no libc binding; pid 0 targets the calling
    // thread. The mask is 1024 bits, glibc's traditional cpu_set_t size.
    let mut mask = [0u64; 16];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Pins the calling thread to `cpu` (no-op build: always `false`).
#[cfg(not(all(feature = "pin", target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list("0"), vec![0]);
        assert_eq!(parse_cpu_list("0-3"), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpu_list("0-2,8,10-11"), vec![0, 1, 2, 8, 10, 11]);
        assert_eq!(parse_cpu_list(" 1 , 3 - 4 "), vec![1, 3, 4]);
        assert_eq!(parse_cpu_list("3,1,3"), vec![1, 3], "sorted + deduped");
        assert_eq!(parse_cpu_list(""), Vec::<usize>::new());
        assert_eq!(parse_cpu_list("junk,4-2,-,7"), vec![7], "bad pieces skip");
        assert!(
            parse_cpu_list("0-100000").is_empty(),
            "corrupt range capped"
        );
    }

    #[test]
    fn discovery_never_fails() {
        let t = CpuTopology::discover();
        assert!(t.logical_cores() >= 1);
        assert!(t.packages() >= 1);
        assert!(t.numa_nodes() >= 1);
        assert_eq!(t.slots().len(), t.logical_cores());
    }

    fn two_socket() -> CpuTopology {
        // Sockets 0 and 1, two CPUs each, one NUMA node per socket,
        // deliberately fed out of order.
        CpuTopology::from_slots(vec![
            CpuSlot {
                cpu: 3,
                package: 1,
                node: 1,
            },
            CpuSlot {
                cpu: 0,
                package: 0,
                node: 0,
            },
            CpuSlot {
                cpu: 2,
                package: 1,
                node: 1,
            },
            CpuSlot {
                cpu: 1,
                package: 0,
                node: 0,
            },
        ])
    }

    #[test]
    fn compact_packs_and_spread_interleaves() {
        let t = two_socket();
        assert_eq!(t.packages(), 2);
        assert_eq!(t.numa_nodes(), 2);
        assert_eq!(
            t.pin_plan(PinPolicy::Compact, 4),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
        assert_eq!(
            t.pin_plan(PinPolicy::Spread, 4),
            vec![Some(0), Some(2), Some(1), Some(3)]
        );
        assert_eq!(t.pin_plan(PinPolicy::None, 3), vec![None, None, None]);
        // Oversubscription wraps deterministically.
        assert_eq!(
            t.pin_plan(PinPolicy::Compact, 6),
            vec![Some(0), Some(1), Some(2), Some(3), Some(0), Some(1)]
        );
    }

    #[test]
    fn flat_topology_plans_cover_every_worker() {
        let t = CpuTopology::flat(3);
        for policy in [PinPolicy::None, PinPolicy::Compact, PinPolicy::Spread] {
            let plan = t.pin_plan(policy, 5);
            assert_eq!(plan.len(), 5, "{policy:?}");
            if policy != PinPolicy::None {
                assert!(plan.iter().all(|c| matches!(c, Some(cpu) if *cpu < 3)));
            }
        }
        assert_eq!(CpuTopology::flat(0).logical_cores(), 1, "clamped");
    }

    #[test]
    fn policy_parsing_table() {
        assert_eq!(PinPolicy::parse(None), PinPolicy::None);
        assert_eq!(PinPolicy::parse(Some("")), PinPolicy::None);
        assert_eq!(PinPolicy::parse(Some("0")), PinPolicy::None);
        assert_eq!(PinPolicy::parse(Some("none")), PinPolicy::None);
        assert_eq!(PinPolicy::parse(Some("1")), PinPolicy::Compact);
        assert_eq!(PinPolicy::parse(Some("compact")), PinPolicy::Compact);
        assert_eq!(PinPolicy::parse(Some("COMPACT")), PinPolicy::Compact);
        assert_eq!(PinPolicy::parse(Some("2")), PinPolicy::Spread);
        assert_eq!(PinPolicy::parse(Some(" spread ")), PinPolicy::Spread);
        assert_eq!(PinPolicy::parse(Some("bogus")), PinPolicy::None);
        assert_eq!(PinPolicy::Compact.label(), "compact");
        assert_eq!(PinPolicy::default().label(), "none");
    }

    #[test]
    fn pinning_is_advisory() {
        let t = CpuTopology::discover();
        let ok = pin_current_thread(t.slots()[0].cpu);
        if cfg!(all(
            feature = "pin",
            target_os = "linux",
            target_arch = "x86_64"
        )) {
            assert!(ok, "affinity syscall failed on a supported platform");
        } else {
            assert!(!ok, "default build must be a warning-free no-op");
        }
        assert!(!pin_current_thread(usize::MAX), "out-of-mask CPU declines");
    }
}
