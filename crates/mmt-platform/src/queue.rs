//! A bounded MPMC work queue with typed admission control and load
//! shedding — the serving layer's replacement for a raw channel.
//!
//! A channel can only say "full"; an overloaded service needs more
//! vocabulary. [`ShedQueue`] keeps the bounded-FIFO semantics workers
//! rely on and adds:
//!
//! * **typed rejection** — a non-blocking push on a full queue hands the
//!   item back ([`PushRejected::Full`]) instead of silently dropping it;
//! * **shedding** — a push may carry an *evictable* predicate; when the
//!   queue is full, queued items matching it (oldest first) are removed
//!   and returned to the caller, who resolves them with a typed error.
//!   Queue depth therefore never exceeds capacity, and shed requests
//!   fail loudly rather than timing out in silence;
//! * **close-then-drain** — [`close`](ShedQueue::close) stops admission
//!   immediately while [`pop`](ShedQueue::pop) keeps returning the items
//!   already admitted, which is exactly drain-mode shutdown.
//!
//! Built on `std::sync::{Mutex, Condvar}` only; a panicking holder never
//! poisons the queue for its peers (poison is recovered into the inner
//! value, matching the workspace's parking_lot semantics).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Why a push did not enqueue; the item is handed back in both cases.
#[derive(Debug)]
pub enum PushRejected<T> {
    /// The queue is at capacity and nothing was evictable.
    Full(T),
    /// The queue was closed.
    Closed(T),
}

/// Outcome of [`ShedQueue::pop_match_until`], the coalescing dequeue.
#[derive(Debug, PartialEq, Eq)]
pub enum CoalescePop<T> {
    /// The front item matched the predicate and was dequeued.
    Item(T),
    /// The front item did *not* match; it was left at the front, so FIFO
    /// order is preserved for whoever pops next.
    Mismatch,
    /// The deadline passed while the queue was empty.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC FIFO with shedding and close-then-drain semantics. See
/// the [module docs](self).
pub struct ShedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> std::fmt::Debug for ShedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("closed", &self.is_closed())
            .finish()
    }
}

impl<T> ShedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Stops admission. Items already queued remain poppable; blocked
    /// pushers and poppers wake up. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Enqueues `item`, shedding evictable queued items to make room.
    ///
    /// When the queue is full and `evictable` is provided, every queued
    /// item matching the predicate is removed (oldest first) and returned
    /// in FIFO order; the caller must resolve each one. If the queue is
    /// still full afterwards, `block` decides between waiting for a
    /// popper and returning [`PushRejected::Full`].
    pub fn push(
        &self,
        item: T,
        block: bool,
        evictable: Option<&dyn Fn(&T) -> bool>,
    ) -> Result<Vec<T>, PushRejected<T>> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushRejected::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(Vec::new());
            }
            if let Some(pred) = evictable {
                let mut shed = Vec::new();
                let mut kept = VecDeque::with_capacity(inner.items.len());
                for queued in inner.items.drain(..) {
                    if pred(&queued) {
                        shed.push(queued);
                    } else {
                        kept.push_back(queued);
                    }
                }
                inner.items = kept;
                if !shed.is_empty() {
                    inner.items.push_back(item);
                    self.not_empty.notify_one();
                    return Ok(shed);
                }
            }
            if !block {
                return Err(PushRejected::Full(item));
            }
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The coalescing dequeue: pops the front item *iff* it matches
    /// `matches`, waiting until `deadline` for one to arrive while the
    /// queue is open and empty.
    ///
    /// Unlike [`pop`](Self::pop) this never reorders: a non-matching
    /// front item is left in place ([`CoalescePop::Mismatch`]) so a
    /// coalescing worker stops gathering rather than skipping over a
    /// request destined for a different batch. Returns
    /// [`CoalescePop::TimedOut`] once `deadline` passes with nothing
    /// queued, and [`CoalescePop::Closed`] when the queue is closed and
    /// drained.
    pub fn pop_match_until(
        &self,
        matches: &dyn Fn(&T) -> bool,
        deadline: Instant,
    ) -> CoalescePop<T> {
        let mut inner = self.lock();
        loop {
            if let Some(front) = inner.items.front() {
                if !matches(front) {
                    return CoalescePop::Mismatch;
                }
                let item = inner.items.pop_front().expect("front exists");
                self.not_full.notify_one();
                return CoalescePop::Item(item);
            }
            if inner.closed {
                return CoalescePop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return CoalescePop::TimedOut;
            }
            inner = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Removes and returns everything queued without waiting.
    pub fn drain_now(&self) -> Vec<T> {
        let drained: Vec<T> = self.lock().items.drain(..).collect();
        if !drained.is_empty() {
            self.not_full.notify_all();
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_and_typed_full() {
        let q = ShedQueue::new(2);
        q.push(1, false, None).unwrap();
        q.push(2, false, None).unwrap();
        assert!(matches!(q.push(3, false, None), Err(PushRejected::Full(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_then_drain() {
        let q = ShedQueue::new(4);
        q.push('a', false, None).unwrap();
        q.push('b', false, None).unwrap();
        q.close();
        assert!(matches!(
            q.push('c', false, None),
            Err(PushRejected::Closed('c'))
        ));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
        // Idempotent.
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shed_evicts_oldest_matching_items_first() {
        let q = ShedQueue::new(3);
        q.push(10, false, None).unwrap(); // evictable
        q.push(21, false, None).unwrap(); // kept (odd)
        q.push(30, false, None).unwrap(); // evictable
        let shed = q
            .push(41, false, Some(&|x: &i32| x % 2 == 0))
            .expect("eviction makes room");
        assert_eq!(shed, vec![10, 30], "shed in FIFO order");
        // Survivors keep their order, new item at the back.
        assert_eq!(q.pop(), Some(21));
        assert_eq!(q.pop(), Some(41));
    }

    #[test]
    fn shed_with_nothing_evictable_is_full() {
        let q = ShedQueue::new(1);
        q.push(1, false, None).unwrap();
        let res = q.push(3, false, Some(&|x: &i32| *x % 2 == 0));
        assert!(matches!(res, Err(PushRejected::Full(3))));
        assert_eq!(q.len(), 1, "depth never exceeds capacity");
    }

    #[test]
    fn blocking_push_unblocks_on_pop() {
        let q = Arc::new(ShedQueue::new(1));
        q.push(1, true, None).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2, true, None).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn blocking_push_wakes_on_close() {
        let q = Arc::new(ShedQueue::new(1));
        q.push(1, true, None).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2, true, None));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(
            pusher.join().unwrap(),
            Err(PushRejected::Closed(2))
        ));
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(ShedQueue::new(2));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.push(7, false, None).unwrap();
        assert_eq!(popper.join().unwrap(), Some(7));
    }

    #[test]
    fn pop_match_takes_matching_front_and_leaves_mismatches() {
        let q = ShedQueue::new(4);
        q.push(2, false, None).unwrap();
        q.push(4, false, None).unwrap();
        q.push(5, false, None).unwrap();
        let even = |x: &i32| x % 2 == 0;
        let deadline = Instant::now(); // already expired: no waiting
        assert_eq!(q.pop_match_until(&even, deadline), CoalescePop::Item(2));
        assert_eq!(q.pop_match_until(&even, deadline), CoalescePop::Item(4));
        // The odd front is not popped and not skipped over.
        assert_eq!(q.pop_match_until(&even, deadline), CoalescePop::Mismatch);
        assert_eq!(q.pop(), Some(5), "mismatch left FIFO order intact");
    }

    #[test]
    fn pop_match_times_out_on_empty_and_sees_late_arrivals() {
        let q: Arc<ShedQueue<i32>> = Arc::new(ShedQueue::new(4));
        let start = Instant::now();
        let res = q.pop_match_until(&|_| true, start + Duration::from_millis(10));
        assert_eq!(res, CoalescePop::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(10));
        // An arrival during the wait is returned before the deadline.
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            q2.pop_match_until(&|_| true, Instant::now() + Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(9, false, None).unwrap();
        assert_eq!(waiter.join().unwrap(), CoalescePop::Item(9));
    }

    #[test]
    fn pop_match_reports_closed_when_drained() {
        let q = ShedQueue::new(2);
        q.push(1, false, None).unwrap();
        q.close();
        let far = Instant::now() + Duration::from_secs(5);
        assert_eq!(q.pop_match_until(&|_| true, far), CoalescePop::Item(1));
        assert_eq!(q.pop_match_until(&|_| true, far), CoalescePop::Closed);
        // And a blocked waiter wakes when close arrives mid-wait.
        let q = Arc::new(ShedQueue::<i32>::new(2));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || {
            q2.pop_match_until(&|_| true, Instant::now() + Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), CoalescePop::Closed);
    }

    #[test]
    fn drain_now_empties_the_queue() {
        let q = ShedQueue::new(4);
        for i in 0..3 {
            q.push(i, false, None).unwrap();
        }
        assert_eq!(q.drain_now(), vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let q = ShedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push((), false, None).unwrap();
        assert!(matches!(
            q.push((), false, None),
            Err(PushRejected::Full(()))
        ));
    }
}
