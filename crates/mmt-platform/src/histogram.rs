//! Log2-bucketed histograms, for the irregular-size distributions this
//! workspace keeps reasoning about: children per CH node, vertex degrees,
//! toVisit set sizes. The paper's whole Table 6 exists because these
//! distributions are heavy-tailed ("between two and several hundred
//! thousand children"); the histogram makes that visible in bench logs.
//!
//! Two flavours live here: the plain [`Log2Histogram`] for single-threaded
//! accumulation, and [`AtomicLog2Histogram`] for concurrent recording from
//! many service workers (relaxed atomics; `snapshot()` materialises a
//! plain histogram for reading).

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over `u64` samples with power-of-two buckets:
/// bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket 0 holds zeros and
/// ones... precisely, sample `s` lands in bucket `bit_length(s)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; 65],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Builds from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut h = Self::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        let bucket = (64 - sample.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in the bucket for samples with the given bit length.
    pub fn count_at_bits(&self, bits: usize) -> u64 {
        self.counts.get(bits).copied().unwrap_or(0)
    }

    /// Approximate p-th percentile (0.0–1.0) using bucket upper bounds.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return if bucket == 0 { 0 } else { (1u64 << bucket) - 1 };
            }
        }
        self.max
    }

    /// Renders the histogram as a JSON object:
    /// `{"total":..,"mean":..,"max":..,"buckets":[[bits,count],..]}` with
    /// only non-empty buckets listed.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| format!("[{b},{c}]"))
            .collect();
        format!(
            "{{\"total\":{},\"mean\":{:.3},\"max\":{},\"buckets\":[{}]}}",
            self.total,
            self.mean(),
            self.max,
            buckets.join(",")
        )
    }

    /// Summarises the histogram into fixed p50/p95/p99 quantiles.
    ///
    /// Each quantile is reported as the bucket upper bound (`2^b - 1` for
    /// bucket `b`), so against the exact sorted-sample quantile `q` at the
    /// same rank (`ceil(p * total)`, 1-indexed) the reported value `r`
    /// satisfies `q <= r <= 2q - 1` when `q > 0`, and `r == 0` exactly
    /// when `q == 0`: never an under-estimate, never more than one power
    /// of two high. Empty histograms summarise to all zeros.
    pub fn quantiles(&self) -> QuantileSummary {
        QuantileSummary {
            total: self.total,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            mean: self.mean(),
            max: self.max,
        }
    }

    /// A compact one-line rendering: `bits:count` for non-empty buckets.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                format!("[{lo}+]:{c}")
            })
            .collect();
        format!(
            "n={} mean={:.2} max={} {}",
            self.total,
            self.mean(),
            self.max,
            parts.join(" ")
        )
    }
}

/// Fixed p50/p95/p99 quantiles of a [`Log2Histogram`], produced by
/// [`Log2Histogram::quantiles`].
///
/// The percentile values inherit the histogram's bucket-bound error: each
/// is the power-of-two upper bound of the bucket holding the exact
/// quantile, so `exact <= reported <= 2 * exact - 1` for non-zero exact
/// quantiles (see [`Log2Histogram::quantiles`] for the derivation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantileSummary {
    /// Number of samples summarised.
    pub total: u64,
    /// 50th-percentile bucket upper bound.
    pub p50: u64,
    /// 95th-percentile bucket upper bound.
    pub p95: u64,
    /// 99th-percentile bucket upper bound.
    pub p99: u64,
    /// Exact mean (no bucket error; 0.0 when empty).
    pub mean: f64,
    /// Exact largest sample.
    pub max: u64,
}

impl QuantileSummary {
    /// Renders the summary as a JSON object:
    /// `{"total":..,"p50":..,"p95":..,"p99":..,"mean":..,"max":..}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"total\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{:.3},\"max\":{}}}",
            self.total, self.p50, self.p95, self.p99, self.mean, self.max
        )
    }
}

/// A [`Log2Histogram`] recordable from many threads at once.
///
/// All updates are relaxed — the histogram is statistics, not
/// synchronisation — and [`snapshot`](AtomicLog2Histogram::snapshot)
/// produces a plain [`Log2Histogram`] for percentile/mean/JSON reading.
/// A snapshot taken concurrently with recording is a consistent-enough
/// view for monitoring: each sample is either fully present or absent
/// from the bucket counts, though `total`/`sum`/`max` may momentarily
/// disagree by in-flight samples.
#[derive(Debug)]
pub struct AtomicLog2Histogram {
    counts: [AtomicU64; 65],
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLog2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicLog2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, sample: u64) {
        let bucket = (64 - sample.leading_zeros()) as usize;
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(sample, Ordering::Relaxed);
        self.max.fetch_max(sample, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Materialises the current contents as a plain [`Log2Histogram`].
    pub fn snapshot(&self) -> Log2Histogram {
        Log2Histogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed) as u128,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_bit_length() {
        let h = Log2Histogram::from_samples([0, 1, 2, 3, 4, 7, 8, 1024]);
        assert_eq!(h.count_at_bits(0), 1); // 0
        assert_eq!(h.count_at_bits(1), 1); // 1
        assert_eq!(h.count_at_bits(2), 2); // 2, 3
        assert_eq!(h.count_at_bits(3), 2); // 4, 7
        assert_eq!(h.count_at_bits(4), 1); // 8
        assert_eq!(h.count_at_bits(11), 1); // 1024
        assert_eq!(h.total(), 8);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn mean_and_percentiles() {
        let h = Log2Histogram::from_samples([1, 1, 1, 1000]);
        assert!((h.mean() - 250.75).abs() < 1e-9);
        assert_eq!(h.percentile(0.5), 1);
        assert!(h.percentile(1.0) >= 1000);
        assert_eq!(Log2Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn summary_lists_nonempty_buckets() {
        let h = Log2Histogram::from_samples([2, 2, 9]);
        let s = h.summary();
        assert!(s.contains("n=3"));
        assert!(s.contains("[2+]:2"));
        assert!(s.contains("[8+]:1"));
    }

    #[test]
    fn empty_histogram() {
        let h = Log2Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn json_rendering() {
        let h = Log2Histogram::from_samples([2, 2, 9]);
        let j = h.to_json();
        assert!(j.contains("\"total\":3"));
        assert!(j.contains("[2,2]"));
        assert!(j.contains("[4,1]"));
        assert!(j.contains("\"max\":9"));
        assert_eq!(
            Log2Histogram::new().to_json(),
            "{\"total\":0,\"mean\":0.000,\"max\":0,\"buckets\":[]}"
        );
    }

    /// The exact quantile `percentile(p)` approximates: the
    /// `ceil(p * n)`-th smallest sample (1-indexed).
    fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_are_monotone_and_within_one_bucket_of_exact() {
        // SplitMix64 over several seeds and sample shapes: uniform,
        // heavy-tailed (squared), and constant runs.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for round in 0..50 {
            let n = 1 + (next() % 400) as usize;
            let samples: Vec<u64> = (0..n)
                .map(|_| match round % 3 {
                    0 => next() % 10_000,
                    1 => (next() % 1_000).pow(2),
                    _ => round as u64,
                })
                .collect();
            let h = Log2Histogram::from_samples(samples.iter().copied());
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let q = h.quantiles();
            assert!(q.p50 <= q.p95, "round {round}: p50 <= p95");
            assert!(q.p95 <= q.p99, "round {round}: p95 <= p99");
            assert_eq!(q.total, n as u64);
            assert_eq!(q.max, *sorted.last().unwrap());
            for (p, reported) in [(0.50, q.p50), (0.95, q.p95), (0.99, q.p99)] {
                let exact = exact_quantile(&sorted, p);
                if exact == 0 {
                    assert_eq!(reported, 0, "round {round} p{p}: zero stays zero");
                } else {
                    assert!(
                        exact <= reported && reported < 2 * exact,
                        "round {round} p{p}: exact {exact} vs reported {reported} \
                         outside the documented bucket bound"
                    );
                }
            }
        }
    }

    #[test]
    fn quantiles_edge_cases() {
        // Empty: all zeros, mean 0.0.
        let empty = Log2Histogram::new().quantiles();
        assert_eq!((empty.total, empty.p50, empty.p95, empty.p99), (0, 0, 0, 0));
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.max, 0);
        // One sample: every percentile is that sample's bucket bound.
        let one = Log2Histogram::from_samples([100]).quantiles();
        assert_eq!(one.total, 1);
        assert_eq!(one.p50, 127);
        assert_eq!(one.p95, 127);
        assert_eq!(one.p99, 127);
        assert_eq!(one.max, 100);
        // All zeros: percentiles stay zero, not a bucket bound.
        let zeros = Log2Histogram::from_samples([0, 0, 0]).quantiles();
        assert_eq!((zeros.p50, zeros.p95, zeros.p99), (0, 0, 0));
    }

    #[test]
    fn quantile_summary_json_shape() {
        let j = Log2Histogram::from_samples([1, 2, 3, 1000])
            .quantiles()
            .to_json();
        assert!(j.starts_with("{\"total\":4,"));
        assert!(j.contains("\"p50\":"));
        assert!(j.contains("\"p95\":"));
        assert!(j.contains("\"p99\":"));
        assert!(j.contains("\"mean\":"));
        assert!(j.ends_with("\"max\":1000}"));
    }

    #[test]
    fn atomic_histogram_concurrent_records_snapshot() {
        let h = AtomicLog2Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.total(), 32);
        assert_eq!(snap.max(), 1024);
        assert_eq!(snap.count_at_bits(2), 8); // 2, 3 × 4 threads
        assert_eq!(h.total(), 32);
        // The atomic and plain flavours agree on a serial reference.
        let reference = Log2Histogram::from_samples(
            std::iter::repeat_n([0u64, 1, 2, 3, 4, 7, 8, 1024], 4).flatten(),
        );
        assert_eq!(snap, reference);
    }
}
