//! Atomic primitives used by the parallel shortest-path algorithms.
//!
//! The MTA-2 exposes fine-grained synchronising memory operations
//! (`int_fetch_add`, full/empty bits). On commodity hardware the equivalent
//! tool is a compare-and-swap loop. Everything in this workspace that is
//! mutated concurrently — tentative distances, per-component `mind` values,
//! settled bits — goes through the primitives in this module.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A `u64` cell supporting an atomic *lower-or-leave* update.
///
/// `fetch_min` is the single most important operation in this workspace: edge
/// relaxation is `dist[v].fetch_min(dist[u] + w)`, and propagating a new
/// minimum up the Component Hierarchy is a chain of `fetch_min`s that stops at
/// the first ancestor that already knows a smaller value (this early stop is
/// what the paper means by "mind values are not propagated very far up the CH
/// in practice").
#[derive(Debug)]
pub struct AtomicMinU64 {
    cell: AtomicU64,
}

impl AtomicMinU64 {
    /// Creates a cell holding `value`.
    #[inline]
    pub fn new(value: u64) -> Self {
        Self {
            cell: AtomicU64::new(value),
        }
    }

    /// Reads the current value.
    #[inline]
    pub fn load(&self) -> u64 {
        self.cell.load(Ordering::Acquire)
    }

    /// Unconditionally stores `value`.
    ///
    /// Only safe to use from phases where the cell is not concurrently
    /// lowered (e.g. instance reset, or the pull-refresh step of the Thorup
    /// visit loop which runs after all child visits joined).
    #[inline]
    pub fn store(&self, value: u64) {
        self.cell.store(value, Ordering::Release)
    }

    /// Single CAS attempt: replaces `current` with `new` if the cell still
    /// holds `current`. Unlike [`fetch_min`](Self::fetch_min) this can
    /// *raise* the value — used by the Thorup solver's pull-refresh, which
    /// must be able to advance a component's `mind` past an emptied bucket
    /// without stomping on a concurrent lowering (a failed CAS tells the
    /// caller to recompute).
    #[inline]
    pub fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.cell
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomically lowers the cell to `min(current, value)`.
    ///
    /// Returns `true` if this call strictly lowered the stored value, which
    /// callers use to decide whether an update still needs to be propagated
    /// further (relaxation queues, `mind` propagation).
    ///
    /// Ordering contract: a `true` return is a release operation (the CAS is
    /// `AcqRel`), so writes made before a winning `fetch_min` are visible to
    /// any thread that subsequently observes the lowered value via
    /// [`load`](Self::load). A `false` return performs no RMW at all when the
    /// relaxed peek already sees a value ≤ `value` — the overwhelmingly
    /// common case once distances converge, and the reason relaxation storms
    /// don't serialise on cache-line ownership.
    #[inline]
    pub fn fetch_min(&self, value: u64) -> bool {
        // `AtomicU64::fetch_min` exists, but we need to know whether *we*
        // lowered it, so run the CAS loop explicitly.
        //
        // Fast path: a relaxed load costs a shared cache-line read; the RMW
        // costs exclusive ownership. Skip the RMW when we cannot win.
        let mut current = self.cell.load(Ordering::Relaxed);
        if current <= value {
            return false;
        }
        loop {
            match self.cell.compare_exchange_weak(
                current,
                value,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => {
                    if observed <= value {
                        return false;
                    }
                    current = observed;
                }
            }
        }
    }
}

impl Default for AtomicMinU64 {
    fn default() -> Self {
        Self::new(u64::MAX)
    }
}

impl Clone for AtomicMinU64 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

/// A `u32` cell supporting an atomic *lower-or-leave* update.
///
/// The 32-bit sibling of [`AtomicMinU64`], used by the compact delta-stepping
/// layout where the graph's weight sum is known to fit in `u32`. Halving the
/// tentative-distance width halves the bytes touched per relaxation, which is
/// the whole point of the compact layout; the semantics (strict-lowering
/// return, relaxed fast path, `AcqRel` success ordering) are identical to the
/// 64-bit cell.
#[derive(Debug)]
pub struct AtomicMinU32 {
    cell: AtomicU32,
}

impl AtomicMinU32 {
    /// Creates a cell holding `value`.
    #[inline]
    pub fn new(value: u32) -> Self {
        Self {
            cell: AtomicU32::new(value),
        }
    }

    /// Reads the current value.
    #[inline]
    pub fn load(&self) -> u32 {
        self.cell.load(Ordering::Acquire)
    }

    /// Unconditionally stores `value` (only safe from non-racing phases, e.g.
    /// scratch reset between queries).
    #[inline]
    pub fn store(&self, value: u32) {
        self.cell.store(value, Ordering::Release)
    }

    /// Single CAS attempt: replaces `current` with `new` if the cell still
    /// holds `current`. The 32-bit sibling of
    /// [`AtomicMinU64::compare_exchange`], with the same pull-refresh use
    /// case (it may *raise* the value; a failed CAS means recompute).
    #[inline]
    pub fn compare_exchange(&self, current: u32, new: u32) -> Result<u32, u32> {
        self.cell
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomically lowers the cell to `min(current, value)`, returning `true`
    /// iff this call strictly lowered the stored value. Same ordering contract
    /// as [`AtomicMinU64::fetch_min`].
    #[inline]
    pub fn fetch_min(&self, value: u32) -> bool {
        let mut current = self.cell.load(Ordering::Relaxed);
        if current <= value {
            return false;
        }
        loop {
            match self.cell.compare_exchange_weak(
                current,
                value,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => {
                    if observed <= value {
                        return false;
                    }
                    current = observed;
                }
            }
        }
    }
}

impl Default for AtomicMinU32 {
    fn default() -> Self {
        Self::new(u32::MAX)
    }
}

impl Clone for AtomicMinU32 {
    fn clone(&self) -> Self {
        Self::new(self.load())
    }
}

/// A lower-or-leave cell with `u64` semantics, abstracting over storage
/// width.
///
/// Algorithms generic over `MinCell` (the Thorup solver's distance and
/// `mind` arrays, the shared relax core) run identically on the wide
/// [`AtomicMinU64`] and the compact [`AtomicMinU32`]; only the bytes per
/// cell change. The compact impl maps `u32::MAX ↔ u64::MAX` (the
/// workspace's two infinity sentinels) and saturates finite values into
/// the sentinel on the way down.
///
/// Exactness contract: callers must certify (as
/// `mmt_graph::CompactSplitCsr` does) that every *finite* value the
/// algorithm can produce is `< u32::MAX` before choosing the compact
/// cell. Under that bound the narrow/widen mapping is a bijection on the
/// reachable domain, so `fetch_min` / `compare_exchange` decisions are
/// bit-identical across widths; without it saturation could conflate two
/// distinct over-estimates (never a correct value — shortest paths are
/// simple, so true distances respect the weight-sum bound).
pub trait MinCell: Send + Sync + Sized + 'static {
    /// A cell holding `value` (narrowed per the width's sentinel map).
    fn new_cell(value: u64) -> Self;
    /// Reads the current value, widened (sentinel ↦ `u64::MAX`).
    fn load(&self) -> u64;
    /// Unconditional store (non-racing phases only).
    fn store(&self, value: u64);
    /// Atomic lower-or-leave; `true` iff this call strictly lowered the
    /// stored value.
    fn fetch_min(&self, value: u64) -> bool;
    /// Single CAS attempt in widened space.
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64>;
}

impl MinCell for AtomicMinU64 {
    #[inline]
    fn new_cell(value: u64) -> Self {
        Self::new(value)
    }

    #[inline]
    fn load(&self) -> u64 {
        AtomicMinU64::load(self)
    }

    #[inline]
    fn store(&self, value: u64) {
        AtomicMinU64::store(self, value)
    }

    #[inline]
    fn fetch_min(&self, value: u64) -> bool {
        AtomicMinU64::fetch_min(self, value)
    }

    #[inline]
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        AtomicMinU64::compare_exchange(self, current, new)
    }
}

/// Saturating narrow: `u64::MAX` (and anything ≥ `u32::MAX`) becomes the
/// `u32` sentinel.
#[inline]
fn narrow_min(value: u64) -> u32 {
    if value >= u32::MAX as u64 {
        u32::MAX
    } else {
        value as u32
    }
}

/// Sentinel-mapped widen: `u32::MAX` becomes `u64::MAX`.
#[inline]
fn widen_min(value: u32) -> u64 {
    if value == u32::MAX {
        u64::MAX
    } else {
        value as u64
    }
}

impl MinCell for AtomicMinU32 {
    #[inline]
    fn new_cell(value: u64) -> Self {
        Self::new(narrow_min(value))
    }

    #[inline]
    fn load(&self) -> u64 {
        widen_min(AtomicMinU32::load(self))
    }

    #[inline]
    fn store(&self, value: u64) {
        AtomicMinU32::store(self, narrow_min(value))
    }

    #[inline]
    fn fetch_min(&self, value: u64) -> bool {
        AtomicMinU32::fetch_min(self, narrow_min(value))
    }

    #[inline]
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
        AtomicMinU32::compare_exchange(self, narrow_min(current), narrow_min(new))
            .map(widen_min)
            .map_err(widen_min)
    }
}

/// A fixed-size bitset with atomic set/test, used to track settled vertices.
///
/// Word-packed so that a per-query SSSP instance costs `n/8` bytes instead of
/// `n` bytes — the "memory required for a single instance" economics of the
/// paper's Table 2 depend on instances being much smaller than the graph.
#[derive(Debug)]
pub struct AtomicBitSet {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitSet {
    /// Creates a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64);
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically sets bit `i`, returning `true` if it was previously clear.
    ///
    /// The "previously clear" result makes settling idempotent under races:
    /// exactly one thread wins the right to relax a vertex's edges.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::AcqRel);
        prev & mask == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        self.words[i / 64].load(Ordering::Acquire) & mask != 0
    }

    /// Clears every bit (not thread-safe with concurrent setters; used to
    /// reset a query instance between runs).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }
}

/// Shifts `value` right by `shift`, saturating to 0 for shifts ≥ 64.
///
/// Bucket indices in the Component Hierarchy are `mind >> alpha`; the
/// synthetic root of a disconnected graph uses an `alpha` large enough that
/// every finite distance lands in bucket 0, which this helper makes safe.
#[inline]
pub fn saturating_shr(value: u64, shift: u32) -> u64 {
    if shift >= 64 {
        0
    } else {
        value >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fetch_min_lowers_and_reports() {
        let a = AtomicMinU64::new(10);
        assert!(a.fetch_min(5));
        assert_eq!(a.load(), 5);
        assert!(!a.fetch_min(7));
        assert_eq!(a.load(), 5);
        assert!(!a.fetch_min(5));
    }

    #[test]
    fn fetch_min_concurrent_settles_on_global_min() {
        let a = Arc::new(AtomicMinU64::new(u64::MAX));
        std::thread::scope(|s| {
            for t in 0..8 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        a.fetch_min(1 + ((i * 7919 + t * 104729) % 5000));
                    }
                });
            }
        });
        assert!(a.load() >= 1 && a.load() < 5001);
        // The global minimum over the deterministic streams must have won.
        let mut expected = u64::MAX;
        for t in 0..8u64 {
            for i in 0..1000u64 {
                expected = expected.min(1 + ((i * 7919 + t * 104729) % 5000));
            }
        }
        assert_eq!(a.load(), expected);
    }

    #[test]
    fn fetch_min_equal_value_is_not_a_lowering() {
        // The fast path must treat `current == value` as "no win": callers
        // use the return to decide whether to re-enqueue a vertex, and an
        // equal-distance relaxation must not requeue (that is exactly the
        // duplicate-work bug the generation stamps guard against).
        let a = AtomicMinU64::new(42);
        assert!(!a.fetch_min(42));
        assert!(!a.fetch_min(43));
        assert_eq!(a.load(), 42);
    }

    #[test]
    fn fetch_min_success_publishes_prior_writes() {
        // Message-passing check of the AcqRel success ordering: the writer
        // stores payload (Relaxed) and then lowers the flag; once a reader's
        // Acquire load observes the lowered flag, the payload store must be
        // visible. With a Relaxed success ordering this could read 0.
        use std::sync::atomic::AtomicU64 as Plain;
        for _ in 0..200 {
            let payload = Plain::new(0);
            let flag = AtomicMinU64::new(u64::MAX);
            std::thread::scope(|s| {
                s.spawn(|| {
                    payload.store(7, Ordering::Relaxed);
                    assert!(flag.fetch_min(1));
                });
                s.spawn(|| {
                    while flag.load() != 1 {
                        std::hint::spin_loop();
                    }
                    assert_eq!(payload.load(Ordering::Relaxed), 7);
                });
            });
        }
    }

    #[test]
    fn fetch_min_losing_race_reports_false() {
        // Two threads racing distinct values: exactly one may claim the
        // strict lowering to the smaller value, and the cell converges on
        // the global minimum even when the fast path declines the RMW.
        use std::sync::atomic::AtomicUsize;
        for _ in 0..200 {
            let a = Arc::new(AtomicMinU64::new(u64::MAX));
            let wins = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let a = Arc::clone(&a);
                    let wins = Arc::clone(&wins);
                    s.spawn(move || {
                        if a.fetch_min(3) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1, "one strict lowering");
            assert_eq!(a.load(), 3);
        }
    }

    #[test]
    fn fetch_min_u32_lowers_and_reports() {
        let a = AtomicMinU32::new(10);
        assert!(a.fetch_min(5));
        assert_eq!(a.load(), 5);
        assert!(!a.fetch_min(7));
        assert!(!a.fetch_min(5));
        assert_eq!(a.load(), 5);
        a.store(u32::MAX);
        assert_eq!(a.load(), u32::MAX);
        assert_eq!(AtomicMinU32::default().load(), u32::MAX);
    }

    #[test]
    fn fetch_min_u32_concurrent_settles_on_global_min() {
        let a = Arc::new(AtomicMinU32::new(u32::MAX));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..1000u32 {
                        a.fetch_min(1 + ((i * 7919 + t * 104729) % 5000));
                    }
                });
            }
        });
        let mut expected = u32::MAX;
        for t in 0..8u32 {
            for i in 0..1000u32 {
                expected = expected.min(1 + ((i * 7919 + t * 104729) % 5000));
            }
        }
        assert_eq!(a.load(), expected);
    }

    /// Drives the same script through both [`MinCell`] widths and checks
    /// every intermediate observation matches — the bijection argument
    /// in the trait docs, executed.
    fn min_cell_script<C: MinCell>() -> Vec<u64> {
        let c = C::new_cell(u64::MAX);
        let mut log = vec![c.load()];
        log.push(c.fetch_min(100) as u64);
        log.push(c.fetch_min(100) as u64);
        log.push(c.fetch_min(40) as u64);
        log.push(c.load());
        log.push(match c.compare_exchange(40, 70) {
            Ok(v) => v,
            Err(v) => v + 1000,
        });
        log.push(match c.compare_exchange(40, 90) {
            Ok(v) => v,
            Err(v) => v + 1000,
        });
        c.store(u64::MAX);
        log.push(c.load());
        log.push(c.fetch_min(u64::MAX) as u64);
        log
    }

    #[test]
    fn min_cell_widths_agree_on_certified_values() {
        let wide = min_cell_script::<AtomicMinU64>();
        let compact = min_cell_script::<AtomicMinU32>();
        assert_eq!(wide, compact);
        assert_eq!(wide[0], u64::MAX, "sentinel round-trips");
    }

    #[test]
    fn compact_cell_saturates_into_the_sentinel() {
        let c = <AtomicMinU32 as MinCell>::new_cell(u64::MAX);
        // A value past the certified domain saturates to the sentinel and
        // therefore never counts as a lowering — exactly the compact
        // Δ-stepping kernel's "fetch_min never accepts the sentinel".
        assert!(!MinCell::fetch_min(&c, u32::MAX as u64 + 5));
        assert_eq!(MinCell::load(&c), u64::MAX);
        assert!(MinCell::fetch_min(&c, u32::MAX as u64 - 1));
        assert_eq!(MinCell::load(&c), u32::MAX as u64 - 1);
    }

    #[test]
    fn compare_exchange_u32_matches_u64_contract() {
        let a = AtomicMinU32::new(10);
        assert_eq!(a.compare_exchange(10, 25), Ok(10), "can raise");
        assert_eq!(a.compare_exchange(10, 5), Err(25), "stale current fails");
        assert_eq!(a.load(), 25);
    }

    #[test]
    fn bitset_set_get() {
        let b = AtomicBitSet::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0));
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.get(0));
        assert!(b.set(129));
        assert!(b.get(129));
        assert!(!b.get(128));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn bitset_clear_all() {
        let b = AtomicBitSet::new(70);
        b.set(3);
        b.set(69);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(3));
    }

    #[test]
    fn bitset_concurrent_unique_winners() {
        let b = Arc::new(AtomicBitSet::new(1024));
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || (0..1024).filter(|&i| b.set(i)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Every bit has exactly one winner across all threads.
        assert_eq!(wins, 1024);
        assert_eq!(b.count_ones(), 1024);
    }

    #[test]
    fn saturating_shift() {
        assert_eq!(saturating_shr(u64::MAX - 1, 64), 0);
        assert_eq!(saturating_shr(u64::MAX - 1, 100), 0);
        assert_eq!(saturating_shr(8, 3), 1);
        assert_eq!(saturating_shr(8, 0), 8);
    }

    #[test]
    fn empty_bitset() {
        let b = AtomicBitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
    }
}
