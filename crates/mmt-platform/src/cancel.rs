//! Cooperative cancellation for long-running solves.
//!
//! The MTA-2 programs the paper benchmarks run to completion; a serving
//! deployment cannot afford that luxury. A [`CancelToken`] is the
//! cheap, shareable signal a query holder (or the service shutting down)
//! uses to tell an in-flight solver "stop at the next safe point". The
//! Thorup solver polls it at bucket-expansion boundaries, which bounds
//! the overhead to one relaxed load per expansion.
//!
//! A token aggregates three sources of interruption:
//!
//! * an explicit [`cancel`](CancelToken::cancel) call (e.g. the query
//!   handle was dropped);
//! * an optional deadline, after which the token reads as cancelled;
//! * an optional *linked* flag shared by many tokens (e.g. a service's
//!   abort-mode shutdown flips one flag and every queued and in-flight
//!   query observes it).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation signal. Cloning is cheap; every clone
/// observes the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    linked: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A fresh, uncancelled token with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that reads as cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// A token cancelled `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Returns a copy of this token that additionally observes `flag`:
    /// when `flag` is true the token reads as cancelled.
    pub fn linked_to(mut self, flag: Arc<AtomicBool>) -> Self {
        self.linked = Some(flag);
        self
    }

    /// Signals cancellation. Idempotent; observed by all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once the token is cancelled, its deadline has passed, or its
    /// linked flag is set.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self.deadline_expired()
            || self
                .linked
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// True when the token was explicitly cancelled (deadline and linked
    /// flag not considered).
    pub fn explicitly_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// True when the linked flag (if any) is set.
    pub fn linked_flag_set(&self) -> bool {
        self.linked
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// The deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when a deadline was set and has passed.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.explicitly_cancelled());
    }

    #[test]
    fn past_deadline_reads_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.deadline_expired());
        assert!(t.is_cancelled());
        assert!(!t.explicitly_cancelled());
        let future = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn linked_flag_cancels_many_tokens() {
        let abort = Arc::new(AtomicBool::new(false));
        let a = CancelToken::new().linked_to(Arc::clone(&abort));
        let b = CancelToken::new().linked_to(Arc::clone(&abort));
        assert!(!a.is_cancelled() && !b.is_cancelled());
        abort.store(true, Ordering::Release);
        assert!(a.is_cancelled() && b.is_cancelled());
        assert!(a.linked_flag_set());
        assert!(!a.explicitly_cancelled());
    }
}
