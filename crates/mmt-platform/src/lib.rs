//! Platform layer for the massively-multithreaded shortest-paths workspace.
//!
//! The paper this workspace reproduces (Crobak, Berry, Madduri, Bader,
//! *Advanced Shortest Paths Algorithms on a Massively-Multithreaded
//! Architecture*, IPDPS 2007) targets the Cray MTA-2: a flat shared-memory
//! machine with hardware support for fine-grained atomics and automatically
//! parallelised loops. This crate provides the commodity-hardware stand-ins
//! for the MTA-2 facilities that the algorithm crates rely on:
//!
//! * [`pool`] — construction of rayon thread pools that emulate "running on
//!   `p` processors", plus sweep helpers used by the scaling benchmarks;
//! * [`atomic`] — CAS-min primitives (`fetch_min` on shared distance and
//!   `mind` arrays is the workhorse of every parallel algorithm here) and an
//!   atomic bitset for settled-vertex tracking;
//! * [`bins`] — contention-free per-thread bucket bins (thread-local
//!   growable bins, reduce-style next-bucket vote, generation-stamped
//!   merge dedup) backing the ρ-stepping and Δ*-stepping kernels;
//! * [`counters`] — cache-padded event counters used for instrumentation
//!   (relaxation counts, loop-setup counts for the toVisit study);
//! * [`cancel`] — cooperative cancellation tokens (deadlines, dropped
//!   query handles, service shutdown) polled by long-running solves;
//! * [`timing`] — measurement helpers (`Stopwatch`, repeated-run statistics);
//! * [`table`] — plain-text table rendering for the benchmark harness, which
//!   reprints the paper's tables next to measured values;
//! * [`mem`] — byte-accounting helpers used to reproduce the "memory per
//!   instance" column of the paper's Table 2, plus peak-RSS readout for the
//!   hot-path benchmark;
//! * [`scratch`] — reusable scratch memory (per-worker relax buffers,
//!   recycled vector pools, generation-stamped membership arrays) that keeps
//!   the SSSP inner loops allocation-free after warm-up;
//! * [`fault`] — seeded, deterministic fault injection (worker panics,
//!   stalls, allocation pressure) used by the chaos suite to prove the
//!   serving layer degrades gracefully;
//! * [`queue`] — the bounded MPMC request queue with typed admission
//!   control, load shedding, and close-then-drain shutdown;
//! * [`topology`] — CPU topology discovery (sysfs, no hwloc) and worker
//!   pinning plans, the commodity stand-in for the MTA-2's flat memory
//!   being *uniformly* close to every processor.

// The raw `sched_setaffinity` syscall behind the non-default `pin`
// feature is the single `unsafe` block in the workspace's default
// dependency graph; every other build keeps the blanket forbid.
#![cfg_attr(not(feature = "pin"), forbid(unsafe_code))]
#![warn(missing_docs)]

pub mod atomic;
pub mod bins;
pub mod cancel;
pub mod counters;
pub mod fault;
pub mod histogram;
pub mod mem;
pub mod pool;
pub mod queue;
pub mod scratch;
pub mod table;
pub mod timing;
pub mod topology;

pub use atomic::{AtomicBitSet, AtomicMinU32, AtomicMinU64, MinCell};
pub use bins::{BinLane, FrontierBins};
pub use cancel::CancelToken;
pub use counters::{Counter, CountersSnapshot, EventCounters};
pub use fault::{FaultEffect, FaultKind, FaultPlan, FaultSite, InjectedPanic, SeededFaults};
pub use histogram::{AtomicLog2Histogram, Log2Histogram, QuantileSummary};
pub use mem::{MemFootprint, MemoryGauge};
pub use pool::{available_threads, with_pinned_pool, with_pool, PoolSpec};
pub use queue::{CoalescePop, PushRejected, ShedQueue};
pub use scratch::{BufferPool, GenerationStamps, ShardBuffers};
pub use table::Table;
pub use timing::{RunStats, Stopwatch};
pub use topology::{CpuSlot, CpuTopology, PinPolicy};
