//! Plain-text table rendering for the benchmark harness.
//!
//! The `reproduce` binary reprints each of the paper's tables with an extra
//! "paper" column next to our measured values; this module does the column
//! alignment.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for rows of `&str`.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "| {cell:<w$} ");
            }
            line.push('|');
            line
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let mut sep = String::new();
            for w in &widths {
                let _ = write!(sep, "|{}", "-".repeat(w + 2));
            }
            sep.push('|');
            let _ = writeln!(out, "{sep}");
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["family", "time"]);
        t.row_str(&["Rand-UWD", "7.53s"]);
        t.row_str(&["R", "15.86s"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        // all data lines the same width
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(lines[3].contains("Rand-UWD"));
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_str(&["1"]);
        t.row_str(&["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn empty_table_is_header_only() {
        let t = Table::new("T", &["x"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 3);
    }
}
