//! Thread-pool control: the commodity stand-in for "running on p MTA-2
//! processors".
//!
//! The paper's scaling studies (Tables 3–4, Figure 4) vary the number of
//! MTA-2 processors from 1 to 40. We emulate that with dedicated rayon pools
//! of `p` threads. On hosts with fewer physical cores than `p` the extra
//! threads are oversubscribed — the sweep still exercises all the
//! concurrency structure, it just stops measuring genuine speedup past the
//! physical core count (EXPERIMENTS.md records the host configuration).

use crate::topology::{CpuTopology, PinPolicy};
use rayon::ThreadPool;
use std::sync::Arc;

/// Specification of an emulated processor count, plus how (whether) its
/// workers are pinned to CPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Number of worker threads ("processors").
    pub threads: usize,
    /// Worker pinning policy (default [`PinPolicy::None`]).
    pub pin: PinPolicy,
}

impl PoolSpec {
    /// A pool spec with `threads` workers; `threads` is clamped to ≥ 1.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            pin: PinPolicy::None,
        }
    }

    /// Sets the worker pinning policy.
    pub fn pinned(mut self, pin: PinPolicy) -> Self {
        self.pin = pin;
        self
    }

    /// Builds the rayon pool. Under a non-`None` policy every worker runs
    /// [`crate::topology::pin_current_thread`] against the discovered
    /// topology's plan at start — advisory only, so an unpinnable
    /// platform builds the exact same pool.
    pub fn build(self) -> ThreadPool {
        let mut builder = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .thread_name(|i| format!("mmt-worker-{i}"));
        if self.pin != PinPolicy::None {
            let plan = Arc::new(CpuTopology::discover().pin_plan(self.pin, self.threads));
            builder = builder.start_handler(move |worker| {
                if let Some(cpu) = plan.get(worker).copied().flatten() {
                    let _ = crate::topology::pin_current_thread(cpu);
                }
            });
        }
        builder.build().expect("failed to build rayon pool")
    }
}

/// Number of hardware threads available on this host.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` inside a dedicated pool of `threads` workers and returns its
/// result. All rayon parallel iterators inside `f` execute on that pool.
pub fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    PoolSpec::new(threads).build().install(f)
}

/// As [`with_pool`], with the workers pinned under `pin` (advisory; see
/// [`PoolSpec::build`]).
pub fn with_pinned_pool<R: Send>(
    threads: usize,
    pin: PinPolicy,
    f: impl FnOnce() -> R + Send,
) -> R {
    PoolSpec::new(threads).pinned(pin).build().install(f)
}

/// The processor counts a scaling sweep should visit: powers of two from 1 up
/// to `max`, always including `max` itself (mirrors the paper's 1..40 x-axis).
pub fn sweep_points(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut pts = Vec::new();
    let mut p = 1;
    while p < max {
        pts.push(p);
        p *= 2;
    }
    pts.push(max);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn with_pool_uses_requested_threads() {
        let seen = with_pool(3, rayon::current_num_threads);
        assert_eq!(seen, 3);
    }

    #[test]
    fn with_pool_runs_parallel_work() {
        let total: u64 = with_pool(4, || (0..1000u64).into_par_iter().sum());
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(PoolSpec::new(0).threads, 1);
        assert_eq!(PoolSpec::new(0).pin, PinPolicy::None);
    }

    #[test]
    fn pinned_pools_run_work_under_every_policy() {
        // Distances must never depend on pinning; neither may plain
        // parallel sums. On unpinnable platforms the handler no-ops.
        for pin in [PinPolicy::None, PinPolicy::Compact, PinPolicy::Spread] {
            let total: u64 = with_pinned_pool(3, pin, || (0..1000u64).into_par_iter().sum());
            assert_eq!(total, 999 * 1000 / 2, "{pin:?}");
        }
    }

    #[test]
    fn sweep_points_cover_max() {
        assert_eq!(sweep_points(1), vec![1]);
        assert_eq!(sweep_points(4), vec![1, 2, 4]);
        assert_eq!(sweep_points(40), vec![1, 2, 4, 8, 16, 32, 40]);
        assert_eq!(sweep_points(0), vec![1]);
    }

    #[test]
    fn available_threads_positive() {
        assert!(available_threads() >= 1);
    }
}
