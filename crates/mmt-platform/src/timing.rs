//! Measurement helpers: a stopwatch and repeated-run statistics.
//!
//! The paper averages 10 SSSP runs per timing but measures Component
//! Hierarchy construction once; [`RunStats`] supports both styles.

use std::time::{Duration, Instant};

/// A simple monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Statistics over a set of timed runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    samples: Vec<f64>,
}

impl RunStats {
    /// Measures `f` once, returning both its result and the elapsed seconds.
    pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
        let sw = Stopwatch::start();
        let r = f();
        (r, sw.seconds())
    }

    /// Runs `f` `runs` times and collects per-run wall times.
    pub fn measure(runs: usize, mut f: impl FnMut()) -> Self {
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let sw = Stopwatch::start();
            f();
            samples.push(sw.seconds());
        }
        Self { samples }
    }

    /// Builds stats from existing samples (seconds).
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Self { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0.0 for an empty set).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Minimum sample (0.0 for an empty set).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample (0.0 for an empty set).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(0.0, f64::max)
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Formats seconds the way the paper's tables do (`7.53s`, `0.0042s`).
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 0.001 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.seconds() > 0.0);
    }

    #[test]
    fn stats_basic() {
        let s = RunStats::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.stddev() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_and_single() {
        let e = RunStats::from_samples(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.min(), 0.0);
        assert_eq!(e.max(), 0.0);
        assert_eq!(e.stddev(), 0.0);
        let one = RunStats::from_samples(vec![5.0]);
        assert_eq!(one.mean(), 5.0);
        assert_eq!(one.stddev(), 0.0);
    }

    #[test]
    fn measure_collects_runs() {
        let mut calls = 0;
        let s = RunStats::measure(4, || calls += 1);
        assert_eq!(calls, 4);
        assert_eq!(s.len(), 4);
        assert!(s.samples().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn time_once_returns_value() {
        let (v, secs) = RunStats::time_once(|| 42);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(123.4), "123s");
        assert_eq!(fmt_seconds(7.531), "7.53s");
        assert_eq!(fmt_seconds(0.00423), "4.23ms");
        assert_eq!(fmt_seconds(0.0000005), "0.50us");
    }
}
