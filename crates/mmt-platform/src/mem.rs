//! Byte accounting, reproducing the "memory required for a single instance"
//! column of the paper's Table 2.
//!
//! Types report their heap payload through [`MemFootprint`]; the Table 2
//! bench sums a graph, a Component Hierarchy, and a per-query instance to
//! show the paper's point: sharing one CH across queries is much cheaper
//! than giving every delta-stepping query its own copy of the graph.

/// Heap-payload accounting for benchmark reporting.
pub trait MemFootprint {
    /// Approximate number of heap bytes owned by `self` (payload only,
    /// excluding allocator slack and `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;
}

impl<T: Copy> MemFootprint for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// A shared resident-bytes tally: registries add what they cache (arenas,
/// hierarchies, layout marginals), evictions subtract it, and admission
/// checks read the current total to shed work under memory pressure.
///
/// Purely advisory accounting — it tracks what callers report, not what
/// the allocator does — which is exactly what a *deterministic* admission
/// check needs: the same registrations always produce the same resident
/// figure, independent of allocator slack or timing.
#[derive(Debug, Default)]
pub struct MemoryGauge {
    resident: std::sync::atomic::AtomicUsize,
}

impl MemoryGauge {
    /// An empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` becoming resident; returns the new total.
    pub fn add(&self, bytes: usize) -> usize {
        self.resident
            .fetch_add(bytes, std::sync::atomic::Ordering::AcqRel)
            + bytes
    }

    /// Records `bytes` being released (saturating at zero, so a
    /// double-subtract cannot wrap); returns the new total.
    pub fn sub(&self, bytes: usize) -> usize {
        let mut cur = self.resident.load(std::sync::atomic::Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(bytes);
            match self.resident.compare_exchange_weak(
                cur,
                next,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            ) {
                Ok(_) => return next,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bytes currently recorded as resident.
    pub fn resident(&self) -> usize {
        self.resident.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// Peak resident set size of this process in bytes, read from the `VmHWM`
/// line of `/proc/self/status`. Returns `None` where procfs is unavailable
/// (non-Linux hosts) so the bench harness can record `null` rather than lie.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts `VmHWM` (kB) from `/proc/self/status` content, in bytes.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

/// Formats a byte count with a binary-unit suffix (`5.76GB` style — the
/// paper reports GB, we usually land in MB at bench scale).
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.2}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_footprint_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(10);
        v.push(1);
        assert_eq!(v.heap_bytes(), 80);
    }

    #[test]
    fn vm_hwm_parses_procfs_format() {
        let status = "Name:\tmmt\nVmPeak:\t  999 kB\nVmHWM:\t   5764 kB\nVmRSS:\t 100 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(5764 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tmmt\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("procfs available");
        assert!(rss > 0);
    }

    #[test]
    fn gauge_adds_subtracts_and_saturates() {
        let g = MemoryGauge::new();
        assert_eq!(g.resident(), 0);
        assert_eq!(g.add(1000), 1000);
        assert_eq!(g.add(24), 1024);
        assert_eq!(g.sub(24), 1000);
        // Over-subtract saturates instead of wrapping.
        assert_eq!(g.sub(5000), 0);
        assert_eq!(g.resident(), 0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00MB");
        assert_eq!(fmt_bytes(6_184_752_906), "5.76GB");
    }
}
