//! Byte accounting, reproducing the "memory required for a single instance"
//! column of the paper's Table 2.
//!
//! Types report their heap payload through [`MemFootprint`]; the Table 2
//! bench sums a graph, a Component Hierarchy, and a per-query instance to
//! show the paper's point: sharing one CH across queries is much cheaper
//! than giving every delta-stepping query its own copy of the graph.

/// Heap-payload accounting for benchmark reporting.
pub trait MemFootprint {
    /// Approximate number of heap bytes owned by `self` (payload only,
    /// excluding allocator slack and `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;
}

impl<T: Copy> MemFootprint for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

/// Formats a byte count with a binary-unit suffix (`5.76GB` style — the
/// paper reports GB, we usually land in MB at bench scale).
pub fn fmt_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.2}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_footprint_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(10);
        v.push(1);
        assert_eq!(v.heap_bytes(), 80);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024), "5.00MB");
        assert_eq!(fmt_bytes(6_184_752_906), "5.76GB");
    }
}
