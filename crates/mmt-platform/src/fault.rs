//! Seeded, deterministic fault injection for the serving layer.
//!
//! The paper's serving story — many simultaneous queries over one shared
//! Component Hierarchy — fails in timing-dependent ways when a worker
//! dies or the admission queue backs up, so robustness has to be tested
//! with *reproducible* faults rather than ad-hoc stress. A [`FaultPlan`]
//! is a schedule of faults keyed by **operation ordinal**: every time a
//! worker crosses an injection site it calls [`FaultPlan::fire`], which
//! increments that site's crossing counter and executes a fault if (and
//! only if) the schedule names that exact crossing. The k-th dequeue
//! panics on every run with the same plan, whatever the thread timing.
//!
//! Four fault kinds cover the failure modes the chaos suite needs:
//!
//! * [`FaultKind::Panic`] — the worker unwinds via
//!   [`std::panic::panic_any`] with an [`InjectedPanic`] payload (so test
//!   panic hooks can tell injected faults from genuine bugs);
//! * [`FaultKind::Stall`] — the worker sleeps, simulating a stuck
//!   dequeue, a pathologically slow solve, or (at
//!   [`FaultSite::ClientWait`]) a slow client draining its reply;
//! * [`FaultKind::AllocPressure`] — the worker allocates, touches and
//!   drops a large buffer, simulating transient memory pressure;
//! * [`FaultKind::DropReply`] — [`fire`](FaultPlan::fire) returns
//!   [`FaultEffect::DropReply`], instructing the crossing code to lose
//!   the reply channel (worker side: drop the sender unsent; client
//!   side: abandon the wait), simulating reply-channel loss.
//!
//! The default is no plan at all: callers thread an
//! `Option<Arc<FaultPlan>>` and pay one branch per site crossing when it
//! is `None`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Places in a request's lifecycle where a fault can be injected. The
/// worker-side sites leave the dequeued request in flight, so recovery
/// code must resolve it explicitly; [`FaultSite::ClientWait`] fires on
/// the *client* thread instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Right after a request is dequeued, before any validity checks.
    Dequeue,
    /// After the per-request state reset, as solving begins.
    Solve,
    /// After the solve produced an answer, before it is delivered.
    Reply,
    /// On the client thread, as a handle starts waiting for its reply —
    /// a [`FaultKind::Stall`] here is a slow client, a
    /// [`FaultKind::DropReply`] an abandoned one.
    ClientWait,
    /// Once per coalesced-batch formation, after the opener request was
    /// dequeued and before further members are gathered. A
    /// [`FaultKind::Stall`] here holds the worker mid-formation (so
    /// evictions and deadlines can race the gather deterministically); a
    /// [`FaultKind::Panic`] kills the whole nascent batch.
    Coalesce,
}

impl FaultSite {
    /// The worker-side sites of the singleton serve path, in lifecycle
    /// order. [`FaultSite::ClientWait`] is deliberately excluded: it is
    /// crossed on client threads and scheduled explicitly, never swept
    /// with the worker sites. [`FaultSite::Coalesce`] is excluded too —
    /// it is crossed once per *batch*, not per request, so sweeping it
    /// with the per-request sites would skew seeded-plan accounting.
    pub const ALL: [FaultSite; 3] = [FaultSite::Dequeue, FaultSite::Solve, FaultSite::Reply];

    fn index(self) -> usize {
        match self {
            FaultSite::Dequeue => 0,
            FaultSite::Solve => 1,
            FaultSite::Reply => 2,
            FaultSite::ClientWait => 3,
            FaultSite::Coalesce => 4,
        }
    }

    /// Short name used in test labels and failure messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Dequeue => "dequeue",
            FaultSite::Solve => "solve",
            FaultSite::Reply => "reply",
            FaultSite::ClientWait => "client-wait",
            FaultSite::Coalesce => "coalesce",
        }
    }
}

/// What happens when a scheduled fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind the worker via [`std::panic::panic_any`] with an
    /// [`InjectedPanic`] payload.
    Panic,
    /// Sleep for the given duration before continuing normally.
    Stall(Duration),
    /// Allocate, touch and drop a buffer of the given size before
    /// continuing normally.
    AllocPressure(usize),
    /// Ask the crossing code to lose the reply channel: [`FaultPlan::fire`]
    /// returns [`FaultEffect::DropReply`] and the caller severs the
    /// channel on its side.
    DropReply,
}

/// What [`FaultPlan::fire`] asks the crossing code to do after any
/// in-place side effects (sleeps, allocations, panics) have happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a DropReply effect the caller ignores silently injects nothing"]
pub enum FaultEffect {
    /// Continue normally.
    None,
    /// Sever the reply channel at this crossing (see
    /// [`FaultKind::DropReply`]).
    DropReply,
}

impl FaultEffect {
    /// True when the crossing should sever its reply channel.
    pub fn drops_reply(self) -> bool {
        self == FaultEffect::DropReply
    }
}

/// The payload carried by injected panics, so panic hooks (and humans
/// reading a backtrace) can tell a scheduled fault from a real bug.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic {
    /// The site that panicked.
    pub site: FaultSite,
    /// The site crossing (0-based ordinal) that triggered it.
    pub ordinal: u64,
}

/// One scheduled fault: fire `kind` at the `ordinal`-th crossing of
/// `site` (0-based, counted across all workers sharing the plan).
#[derive(Debug, Clone, Copy)]
pub struct ScheduledFault {
    /// Where to fire.
    pub site: FaultSite,
    /// Which crossing of that site fires (0-based).
    pub ordinal: u64,
    /// What to do.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults shared by every worker of a
/// service. See the [module docs](self) for the execution model.
#[derive(Debug, Default)]
pub struct FaultPlan {
    schedule: Vec<ScheduledFault>,
    crossings: [AtomicU64; 5],
    panics: AtomicU64,
    stalls: AtomicU64,
    allocs: AtomicU64,
    drops: AtomicU64,
}

/// Builder for [`FaultPlan`]; obtained from [`FaultPlan::builder`].
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    schedule: Vec<ScheduledFault>,
}

impl FaultPlanBuilder {
    /// Schedules `kind` at the `ordinal`-th crossing of `site`.
    pub fn fault_at(mut self, site: FaultSite, ordinal: u64, kind: FaultKind) -> Self {
        self.schedule.push(ScheduledFault {
            site,
            ordinal,
            kind,
        });
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            schedule: self.schedule,
            ..FaultPlan::default()
        }
    }
}

/// Shape of a seeded plan: how many faults of each kind to scatter over
/// the first `horizon` crossings of each site.
#[derive(Debug, Clone, Copy)]
pub struct SeededFaults {
    /// Ordinals are drawn from `0..horizon`.
    pub horizon: u64,
    /// Number of [`FaultKind::Panic`] faults.
    pub panics: usize,
    /// Number of [`FaultKind::Stall`] faults.
    pub stalls: usize,
    /// Duration of each stall.
    pub stall: Duration,
    /// Number of [`FaultKind::AllocPressure`] faults.
    pub allocs: usize,
    /// Size of each pressure allocation, in bytes.
    pub alloc_bytes: usize,
}

impl Default for SeededFaults {
    fn default() -> Self {
        Self {
            horizon: 32,
            panics: 2,
            stalls: 1,
            stall: Duration::from_millis(20),
            allocs: 1,
            alloc_bytes: 8 << 20,
        }
    }
}

impl FaultPlan {
    /// Starts an explicit schedule.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::default()
    }

    /// Derives a schedule deterministically from `seed`: the same seed
    /// always yields the same (site, ordinal, kind) set. Collisions on
    /// (site, ordinal) are resolved by advancing the ordinal, so every
    /// requested fault fires at a distinct crossing.
    pub fn seeded(seed: u64, spec: SeededFaults) -> FaultPlan {
        let mut rng = SplitMix64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut builder = FaultPlan::builder();
        let horizon = spec.horizon.max(1);
        let kinds = [
            (spec.panics, FaultKind::Panic),
            (spec.stalls, FaultKind::Stall(spec.stall)),
            (spec.allocs, FaultKind::AllocPressure(spec.alloc_bytes)),
        ];
        let mut taken: Vec<(FaultSite, u64)> = Vec::new();
        for (count, kind) in kinds {
            for _ in 0..count {
                let site = FaultSite::ALL[(rng.next() % 3) as usize];
                let mut ordinal = rng.next() % horizon;
                while taken.contains(&(site, ordinal)) {
                    ordinal = (ordinal + 1) % horizon.max(taken.len() as u64 + 1);
                }
                taken.push((site, ordinal));
                builder = builder.fault_at(site, ordinal, kind);
            }
        }
        builder.build()
    }

    /// The scheduled faults, in insertion order.
    pub fn schedule(&self) -> &[ScheduledFault] {
        &self.schedule
    }

    /// Records a crossing of `site` and executes the scheduled fault for
    /// that exact crossing, if any. A [`FaultKind::Panic`] fault unwinds
    /// out of this call; the other kinds return normally after their
    /// side effect, with the returned [`FaultEffect`] telling the caller
    /// what (if anything) it must do itself.
    pub fn fire(&self, site: FaultSite) -> FaultEffect {
        let ordinal = self.crossings[site.index()].fetch_add(1, Ordering::AcqRel);
        let hit = self
            .schedule
            .iter()
            .find(|f| f.site == site && f.ordinal == ordinal);
        let Some(fault) = hit else {
            return FaultEffect::None;
        };
        match fault.kind {
            FaultKind::Panic => {
                self.panics.fetch_add(1, Ordering::AcqRel);
                std::panic::panic_any(InjectedPanic { site, ordinal });
            }
            FaultKind::Stall(d) => {
                self.stalls.fetch_add(1, Ordering::AcqRel);
                std::thread::sleep(d);
                FaultEffect::None
            }
            FaultKind::AllocPressure(bytes) => {
                self.allocs.fetch_add(1, Ordering::AcqRel);
                // Touch one byte per page so the allocation is resident,
                // not just reserved.
                let mut buf = vec![0u8; bytes];
                let mut i = 0;
                while i < buf.len() {
                    buf[i] = 1;
                    i += 4096;
                }
                std::hint::black_box(&buf);
                FaultEffect::None
            }
            FaultKind::DropReply => {
                self.drops.fetch_add(1, Ordering::AcqRel);
                FaultEffect::DropReply
            }
        }
    }

    /// Crossings of `site` recorded so far.
    pub fn crossings(&self, site: FaultSite) -> u64 {
        self.crossings[site.index()].load(Ordering::Acquire)
    }

    /// Panics fired so far.
    pub fn panics_fired(&self) -> u64 {
        self.panics.load(Ordering::Acquire)
    }

    /// Stalls fired so far.
    pub fn stalls_fired(&self) -> u64 {
        self.stalls.load(Ordering::Acquire)
    }

    /// Pressure allocations fired so far.
    pub fn allocs_fired(&self) -> u64 {
        self.allocs.load(Ordering::Acquire)
    }

    /// Reply drops fired so far.
    pub fn drops_fired(&self) -> u64 {
        self.drops.load(Ordering::Acquire)
    }

    /// Faults of any kind fired so far.
    pub fn fired(&self) -> u64 {
        self.panics_fired() + self.stalls_fired() + self.allocs_fired() + self.drops_fired()
    }

    /// Panics the plan will fire if every scheduled crossing is reached.
    pub fn scheduled_panics(&self) -> u64 {
        self.schedule
            .iter()
            .filter(|f| f.kind == FaultKind::Panic)
            .count() as u64
    }
}

/// SplitMix64: the tiny seed-expansion PRNG (Steele et al.), enough to
/// scatter fault ordinals without pulling in a rand dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn fires_exactly_at_the_scheduled_ordinal() {
        let plan = FaultPlan::builder()
            .fault_at(FaultSite::Dequeue, 2, FaultKind::Panic)
            .build();
        let _ = plan.fire(FaultSite::Dequeue); // ordinal 0
        let _ = plan.fire(FaultSite::Dequeue); // ordinal 1
        let err = catch_unwind(AssertUnwindSafe(|| plan.fire(FaultSite::Dequeue)));
        let payload = err.expect_err("ordinal 2 must panic");
        let injected = payload
            .downcast_ref::<InjectedPanic>()
            .expect("payload is InjectedPanic");
        assert_eq!(injected.site, FaultSite::Dequeue);
        assert_eq!(injected.ordinal, 2);
        assert_eq!(plan.panics_fired(), 1);
        // Later crossings are quiet again.
        let _ = plan.fire(FaultSite::Dequeue);
        assert_eq!(plan.crossings(FaultSite::Dequeue), 4);
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::builder()
            .fault_at(FaultSite::Reply, 0, FaultKind::Panic)
            .build();
        // Solve crossings never trip a Reply fault.
        for _ in 0..5 {
            let _ = plan.fire(FaultSite::Solve);
        }
        assert_eq!(plan.panics_fired(), 0);
        assert!(catch_unwind(AssertUnwindSafe(|| plan.fire(FaultSite::Reply))).is_err());
    }

    #[test]
    fn stall_and_alloc_return_normally() {
        let plan = FaultPlan::builder()
            .fault_at(
                FaultSite::Solve,
                0,
                FaultKind::Stall(Duration::from_millis(1)),
            )
            .fault_at(FaultSite::Solve, 1, FaultKind::AllocPressure(64 * 1024))
            .build();
        assert_eq!(plan.fire(FaultSite::Solve), FaultEffect::None);
        assert_eq!(plan.fire(FaultSite::Solve), FaultEffect::None);
        assert_eq!(plan.stalls_fired(), 1);
        assert_eq!(plan.allocs_fired(), 1);
        assert_eq!(plan.fired(), 2);
        assert_eq!(plan.panics_fired(), 0);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let spec = SeededFaults::default();
        let a = FaultPlan::seeded(7, spec);
        let b = FaultPlan::seeded(7, spec);
        let c = FaultPlan::seeded(8, spec);
        let key = |p: &FaultPlan| {
            p.schedule()
                .iter()
                .map(|f| (f.site, f.ordinal, f.kind))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "same seed, same schedule");
        assert_ne!(key(&a), key(&c), "different seed, different schedule");
        assert_eq!(a.scheduled_panics(), spec.panics as u64);
        // No two faults share a (site, ordinal) crossing.
        let mut crossings: Vec<_> = a.schedule().iter().map(|f| (f.site, f.ordinal)).collect();
        crossings.sort_by_key(|&(s, o)| (s.index(), o));
        crossings.dedup();
        assert_eq!(crossings.len(), a.schedule().len());
    }

    #[test]
    fn drop_reply_returns_the_effect_and_counts() {
        let plan = FaultPlan::builder()
            .fault_at(FaultSite::Reply, 1, FaultKind::DropReply)
            .fault_at(FaultSite::ClientWait, 0, FaultKind::DropReply)
            .build();
        assert_eq!(plan.fire(FaultSite::Reply), FaultEffect::None);
        assert!(plan.fire(FaultSite::Reply).drops_reply());
        assert!(plan.fire(FaultSite::ClientWait).drops_reply());
        assert_eq!(plan.drops_fired(), 2);
        assert_eq!(plan.fired(), 2);
        assert_eq!(plan.crossings(FaultSite::ClientWait), 1);
    }

    #[test]
    fn client_wait_counts_independently_of_worker_sites() {
        let plan = FaultPlan::builder()
            .fault_at(
                FaultSite::ClientWait,
                2,
                FaultKind::Stall(Duration::from_millis(1)),
            )
            .build();
        // Worker-side crossings never consume client-wait ordinals.
        for site in FaultSite::ALL {
            for _ in 0..4 {
                assert_eq!(plan.fire(site), FaultEffect::None);
            }
        }
        assert_eq!(plan.fire(FaultSite::ClientWait), FaultEffect::None);
        assert_eq!(plan.fire(FaultSite::ClientWait), FaultEffect::None);
        assert_eq!(plan.fire(FaultSite::ClientWait), FaultEffect::None); // ordinal 2 stalls
        assert_eq!(plan.stalls_fired(), 1);
    }

    #[test]
    fn coalesce_counts_independently_and_is_not_swept() {
        assert!(
            !FaultSite::ALL.contains(&FaultSite::Coalesce),
            "Coalesce is per-batch, never swept with per-request sites"
        );
        let plan = FaultPlan::builder()
            .fault_at(FaultSite::Coalesce, 1, FaultKind::DropReply)
            .build();
        // Per-request crossings never consume coalesce ordinals.
        for site in FaultSite::ALL {
            for _ in 0..3 {
                assert_eq!(plan.fire(site), FaultEffect::None);
            }
        }
        assert_eq!(plan.fire(FaultSite::Coalesce), FaultEffect::None);
        assert!(plan.fire(FaultSite::Coalesce).drops_reply());
        assert_eq!(plan.crossings(FaultSite::Coalesce), 2);
        assert_eq!(plan.crossings(FaultSite::Dequeue), 3);
    }

    #[test]
    fn empty_plan_is_quiet() {
        let plan = FaultPlan::builder().build();
        for site in FaultSite::ALL {
            for _ in 0..10 {
                assert_eq!(plan.fire(site), FaultEffect::None);
            }
        }
        assert_eq!(plan.fired(), 0);
    }
}
