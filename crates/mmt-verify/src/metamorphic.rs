//! Metamorphic checks: transformations of a case with a known effect on
//! shortest-path distances. Unlike the differential layer these need no
//! oracle — an engine is checked against *itself* across the
//! transformation, so a bug shared with the oracle can still be caught.

use crate::case::GraphCase;
use crate::engine::SsspEngine;
use mmt_baselines::{Divergence, DivergenceKind};
use mmt_graph::types::{Edge, EdgeList, VertexId, Weight, INF};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn violation(
    engine: &dyn SsspEngine,
    case: &GraphCase,
    source: VertexId,
    detail: impl Into<String>,
) -> Divergence {
    Divergence::new(DivergenceKind::MetamorphicViolation, source, detail)
        .for_engine(engine.name())
        .for_case(&case.name)
}

/// Uniform weight scaling: multiplying every weight by `factor` must
/// multiply every finite distance by `factor` and keep `INF` at `INF`.
/// Skipped (Ok) when scaling would overflow a `Weight`.
pub fn check_weight_scaling(
    engine: &dyn SsspEngine,
    case: &GraphCase,
    source: VertexId,
    factor: Weight,
) -> Result<(), Divergence> {
    assert!(factor >= 1);
    if case
        .el
        .edges
        .iter()
        .any(|e| e.w.checked_mul(factor).is_none())
    {
        return Ok(());
    }
    let scaled_el = EdgeList {
        n: case.el.n,
        edges: case
            .el
            .edges
            .iter()
            .map(|e| Edge::new(e.u, e.v, e.w * factor))
            .collect(),
    };
    let scaled = GraphCase::new(format!("{}*{}", case.name, factor), scaled_el);
    if !engine.supports(case) || !engine.supports(&scaled) {
        return Ok(());
    }
    let base = engine.solve(case, source);
    let got = engine.solve(&scaled, source);
    for v in 0..base.len() {
        let want = if base[v] == INF {
            INF
        } else {
            base[v] * factor as u64
        };
        if got[v] != want {
            return Err(violation(
                engine,
                case,
                source,
                format!("distances did not scale with weights (factor {factor})"),
            )
            .at(v as VertexId, got[v], want));
        }
    }
    Ok(())
}

/// Vertex relabeling: solving on an isomorphic copy under a seeded random
/// permutation `p` must satisfy `got[p(v)] == base[v]` for every vertex.
pub fn check_relabeling(
    engine: &dyn SsspEngine,
    case: &GraphCase,
    source: VertexId,
    seed: u64,
) -> Result<(), Divergence> {
    let n = case.n();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let relabeled_el = EdgeList {
        n,
        edges: case
            .el
            .edges
            .iter()
            .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize], e.w))
            .collect(),
    };
    let relabeled = GraphCase::new(format!("{}~perm", case.name), relabeled_el);
    if !engine.supports(case) || !engine.supports(&relabeled) {
        return Ok(());
    }
    let base = engine.solve(case, source);
    let got = engine.solve(&relabeled, perm[source as usize]);
    for v in 0..n {
        let (got_v, want) = (got[perm[v] as usize], base[v]);
        if got_v != want {
            return Err(violation(
                engine,
                case,
                source,
                "distances are not invariant under vertex relabeling",
            )
            .at(v as VertexId, got_v, want));
        }
    }
    Ok(())
}

/// Adding an edge no lighter than the distance it could shortcut must not
/// change any distance: an undirected edge `(source, v)` of weight
/// `dist(source, v)` is redundant by the triangle inequality. Skipped (Ok)
/// when no reachable vertex has a distance that fits in a `Weight`.
pub fn check_heavy_edge_is_noop(
    engine: &dyn SsspEngine,
    case: &GraphCase,
    source: VertexId,
) -> Result<(), Divergence> {
    if !engine.supports(case) {
        return Ok(());
    }
    let base = engine.solve(case, source);
    let Some(target) = (0..base.len())
        .filter(|&v| v as VertexId != source)
        .find(|&v| base[v] > 0 && base[v] <= Weight::MAX as u64)
    else {
        return Ok(());
    };
    let mut heavy_el = case.el.clone();
    heavy_el.edges.push(Edge::new(
        source,
        target as VertexId,
        base[target] as Weight,
    ));
    let heavy = GraphCase::new(format!("{}+heavy", case.name), heavy_el);
    if !engine.supports(&heavy) {
        return Ok(());
    }
    let got = engine.solve(&heavy, source);
    if let Some(v) = (0..base.len()).find(|&v| got[v] != base[v]) {
        return Err(violation(
            engine,
            case,
            source,
            format!(
                "adding a redundant edge (weight {}) to vertex {target} changed distances",
                base[target]
            ),
        )
        .at(v as VertexId, got[v], base[v]));
    }
    Ok(())
}

/// Source/target symmetry on an undirected graph: the point-to-point
/// distance `s -> t` must equal `t -> s`, and both must equal the
/// full-query distance.
pub fn check_st_symmetry(case: &GraphCase, s: VertexId, t: VertexId) -> Result<(), Divergence> {
    use mmt_baselines::bidirectional_dijkstra;
    let forward = bidirectional_dijkstra(&case.graph, s, t);
    let backward = bidirectional_dijkstra(&case.graph, t, s);
    if forward != backward {
        return Err(Divergence::new(
            DivergenceKind::MetamorphicViolation,
            s,
            "undirected s-t distance is not symmetric",
        )
        .for_engine("bidirectional")
        .for_case(&case.name)
        .at(t, forward, backward));
    }
    let full = mmt_baselines::dijkstra(&case.graph, s);
    if forward != full[t as usize] {
        return Err(Divergence::new(
            DivergenceKind::MetamorphicViolation,
            s,
            "s-t query disagrees with full single-source query",
        )
        .for_engine("bidirectional")
        .for_case(&case.name)
        .at(t, forward, full[t as usize]));
    }
    Ok(())
}

/// Triangle spot-check through the point-to-point solvers: for any
/// midpoint `m`, `dist(s,t) ≤ dist(s,m) + dist(m,t)` (saturating, so an
/// unreachable leg never vetoes the check). Both served P2P solvers must
/// satisfy it on their *own* answers — no oracle involved, so a
/// systematic early-exit bug shared with Dijkstra would still surface.
pub fn check_p2p_triangle(
    case: &GraphCase,
    s: VertexId,
    m: VertexId,
    t: VertexId,
) -> Result<(), Divergence> {
    use mmt_baselines::{
        bidirectional_st, delta_stepping_st, BidiScratch, DeltaConfig, DeltaScratch,
    };
    use mmt_graph::SplitCsr;
    let mut bidi = BidiScratch::new();
    let delta = DeltaConfig::adaptive(&case.graph)
        .delta()
        .min(u32::MAX as u64) as Weight;
    let split = SplitCsr::new(&case.graph, delta.max(1));
    let mut dscratch = DeltaScratch::new(&split);
    for name in ["p2p-bidi", "p2p-delta-early"] {
        let mut leg = |a: VertexId, b: VertexId| -> u64 {
            if name == "p2p-bidi" {
                bidirectional_st(&case.graph, a, b, &mut bidi, None)
                    .expect("uncancellable query cannot be interrupted")
                    .0
            } else {
                delta_stepping_st(&split, a, b, &mut dscratch, None, None)
                    .expect("uncancellable query cannot be interrupted")
            }
        };
        let (st, sm, mt) = (leg(s, t), leg(s, m), leg(m, t));
        if st > sm.saturating_add(mt) {
            return Err(Divergence::new(
                DivergenceKind::MetamorphicViolation,
                s,
                format!("triangle inequality violated via midpoint {m} ({sm} + {mt})"),
            )
            .for_engine(name)
            .for_case(&case.name)
            .at(t, st, sm.saturating_add(mt)));
        }
    }
    Ok(())
}

/// P2P answer == full-SSSP answer at the target: whatever full engine
/// produced `full`, both served point-to-point solvers must agree with its
/// entry at `t` — every (P2P solver, full engine) pair is pinned together.
pub fn check_p2p_matches_full(
    engine: &dyn SsspEngine,
    case: &GraphCase,
    source: VertexId,
    t: VertexId,
) -> Result<(), Divergence> {
    use mmt_baselines::{
        bidirectional_st, delta_stepping_st, BidiScratch, DeltaConfig, DeltaScratch,
    };
    use mmt_graph::SplitCsr;
    if !engine.supports(case) {
        return Ok(());
    }
    let full = engine.solve(case, source);
    let want = full[t as usize];
    let pair_violation = |p2p: &str, got: u64| {
        Divergence::new(
            DivergenceKind::MetamorphicViolation,
            source,
            format!(
                "{p2p} disagrees with full engine {} at the target",
                engine.name()
            ),
        )
        .for_engine(p2p)
        .for_case(&case.name)
        .at(t, got, want)
    };
    let (bidi, _) = bidirectional_st(&case.graph, source, t, &mut BidiScratch::new(), None)
        .expect("uncancellable query cannot be interrupted");
    if bidi != want {
        return Err(pair_violation("p2p-bidi", bidi));
    }
    let delta = DeltaConfig::adaptive(&case.graph)
        .delta()
        .min(u32::MAX as u64) as Weight;
    let split = SplitCsr::new(&case.graph, delta.max(1));
    let early = delta_stepping_st(
        &split,
        source,
        t,
        &mut DeltaScratch::new(&split),
        None,
        None,
    )
    .expect("uncancellable query cannot be interrupted");
    if early != want {
        return Err(pair_violation("p2p-delta-early", early));
    }
    Ok(())
}

/// Runs every metamorphic check for one engine on one case at one source.
pub fn check_all(
    engine: &dyn SsspEngine,
    case: &GraphCase,
    source: VertexId,
    seed: u64,
) -> Result<(), Divergence> {
    check_weight_scaling(engine, case, source, 3)?;
    check_relabeling(engine, case, source, seed)?;
    check_heavy_edge_is_noop(engine, case, source)?;
    if case.n() <= 128 {
        let t = (case.n() - 1) as VertexId;
        if t != source {
            check_st_symmetry(case, source, t)?;
        }
        let m = (case.n() / 2) as VertexId;
        check_p2p_triangle(case, source, m, t)?;
        check_p2p_matches_full(engine, case, source, t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{all_engines, DijkstraOracle};
    use mmt_graph::gen::{adversarial, shapes};
    use mmt_graph::types::Dist;

    #[test]
    fn all_engines_pass_all_checks_on_figure_one() {
        let case = GraphCase::new("fig1", shapes::figure_one());
        for engine in all_engines() {
            check_all(engine.as_ref(), &case, 0, 11).unwrap();
        }
    }

    #[test]
    fn zero_weight_case_passes_scaling_and_relabeling() {
        let case = GraphCase::new("zc", adversarial::zero_chain(24, 5));
        for engine in all_engines() {
            check_all(engine.as_ref(), &case, 0, 11).unwrap();
        }
    }

    #[test]
    fn scaling_catches_an_engine_with_an_additive_bias() {
        struct Biased;
        impl SsspEngine for Biased {
            fn name(&self) -> &'static str {
                "biased"
            }
            fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
                let mut d = DijkstraOracle.solve(case, source);
                for x in d.iter_mut().filter(|x| **x != 0 && **x < INF) {
                    *x += 1; // constant bias survives differential-free checks
                }
                d
            }
        }
        let case = GraphCase::new("path", shapes::path(8, 2));
        let err = check_weight_scaling(&Biased, &case, 0, 3).unwrap_err();
        assert_eq!(err.kind, DivergenceKind::MetamorphicViolation);
        assert_eq!(err.engine, "biased");
    }

    #[test]
    fn heavy_edge_check_skips_when_nothing_is_reachable() {
        let case = GraphCase::new("lonely", shapes::path(1, 1));
        check_heavy_edge_is_noop(&DijkstraOracle, &case, 0).unwrap();
    }
}
