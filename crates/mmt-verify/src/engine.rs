//! The [`SsspEngine`] trait and an adapter per solver in the workspace.
//!
//! Every engine answers a single-source query on a [`GraphCase`] in the
//! *original* vertex space, whatever preprocessing it needs internally.
//! That uniform shape is what lets the differential runner compare all
//! engines entry for entry against the Dijkstra oracle.

use crate::case::GraphCase;
use mmt_baselines::{
    bellman_ford_frontier, bidirectional_dijkstra, bidirectional_st, default_rho,
    delta_star_presplit, delta_stepping, delta_stepping_compact, delta_stepping_presplit,
    delta_stepping_reference, delta_stepping_st, dijkstra, goldberg_sssp, rho_stepping_partitioned,
    rho_stepping_presplit, BidiScratch, DeltaConfig, DeltaScratch, StepScratch,
};
use mmt_graph::types::{Dist, VertexId};
use mmt_graph::{CsrArena, PartitionedCsr, SplitCsr, VertexPermutation};
use mmt_thorup::{
    BatchSolver, GraphLayout, GraphRegistry, LayoutKind, LayoutSolver, QueryRequest, QueryService,
    SerialThorup, ThorupSolver,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A solver under differential test: answers full single-source queries on
/// a prepared case, in the case's original vertex space.
pub trait SsspEngine: Sync {
    /// Stable engine name, used in divergence reports (`thorup`,
    /// `delta-stepping`, ...).
    fn name(&self) -> &'static str;

    /// True if this engine can run this case at an acceptable cost.
    /// Engines that answer point-to-point queries (and therefore solve
    /// n single-pair problems per source) bow out of large cases here.
    fn supports(&self, _case: &GraphCase) -> bool {
        true
    }

    /// Distances from `source` to every vertex (`INF` for unreachable).
    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist>;
}

/// Serial Dijkstra — the oracle every other engine is compared against.
pub struct DijkstraOracle;

impl SsspEngine for DijkstraOracle {
    fn name(&self) -> &'static str {
        "dijkstra"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        dijkstra(&case.graph, source)
    }
}

/// Serial Thorup over the shared Component Hierarchy.
pub struct SerialThorupEngine;

impl SsspEngine for SerialThorupEngine {
    fn name(&self) -> &'static str {
        "serial-thorup"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| SerialThorup::new(g, ch).solve(s))
    }
}

/// The parallel (atomic) Thorup solver.
pub struct AtomicThorupEngine;

impl SsspEngine for AtomicThorupEngine {
    fn name(&self) -> &'static str {
        "thorup"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| ThorupSolver::new(g, ch).solve(s))
    }
}

/// Δ-stepping with the auto-tuned bucket width.
pub struct DeltaSteppingEngine;

impl SsspEngine for DeltaSteppingEngine {
    fn name(&self) -> &'static str {
        "delta-stepping"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        delta_stepping(&case.graph, source, DeltaConfig::auto(&case.graph))
    }
}

/// The allocation-free Δ-stepping hot path: light/heavy pre-split CSR,
/// reusable scratch, generation-stamped duplicate suppression, adaptive Δ.
pub struct PresplitDeltaEngine;

impl SsspEngine for PresplitDeltaEngine {
    fn name(&self) -> &'static str {
        "delta-presplit"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::adaptive(&case.graph);
        let delta = cfg.delta().min(u32::MAX as u64) as mmt_graph::types::Weight;
        let split = SplitCsr::new(&case.graph, delta);
        let mut scratch = DeltaScratch::new(&split);
        // Two queries over one scratch: the second is the reported answer,
        // so reuse bugs (stale stamps, unreset distances) surface as
        // divergences rather than hiding behind fresh state.
        delta_stepping_presplit(&split, source, &mut scratch, None);
        delta_stepping_presplit(&split, source, &mut scratch, None);
        scratch.to_distances()
    }
}

/// The seed's collect()-based Δ-stepping kernel, kept as the allocation
/// baseline; differentially tested so the comparison stays meaningful.
pub struct ReferenceDeltaEngine;

impl SsspEngine for ReferenceDeltaEngine {
    fn name(&self) -> &'static str {
        "delta-reference"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        delta_stepping_reference(&case.graph, source, DeltaConfig::auto(&case.graph))
    }
}

/// Batched Thorup with pooled instances and result buffers. Each query is
/// answered from inside a real batch (two decoy sources ride along) so the
/// pool-sharing path itself is under differential test.
pub struct BatchThorupEngine;

impl SsspEngine for BatchThorupEngine {
    fn name(&self) -> &'static str {
        "thorup-batch"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| {
            let n = g.n() as VertexId;
            let solver = ThorupSolver::new(g, ch);
            let batch = BatchSolver::new(&solver);
            let sources = [s, (s + 1) % n, n / 2];
            let mut rows = batch.solve_batch(&sources);
            rows.swap_remove(0).detach()
        })
    }
}

/// Frontier-based parallel Bellman-Ford.
pub struct BellmanFordEngine;

impl SsspEngine for BellmanFordEngine {
    fn name(&self) -> &'static str {
        "bellman-ford"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        bellman_ford_frontier(&case.graph, source)
    }
}

/// Goldberg's multi-level-bucket (radix-heap) solver.
pub struct MlbEngine;

impl SsspEngine for MlbEngine {
    fn name(&self) -> &'static str {
        "mlb"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        goldberg_sssp(&case.graph, source)
    }
}

/// Bidirectional Dijkstra, adapted by solving every pair `(source, t)`.
/// Quadratic per source, so [`SsspEngine::supports`] caps the case size.
pub struct BidirectionalEngine;

impl SsspEngine for BidirectionalEngine {
    fn name(&self) -> &'static str {
        "bidirectional"
    }

    fn supports(&self, case: &GraphCase) -> bool {
        case.n() <= 128
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        (0..case.n() as VertexId)
            .map(|t| {
                if t == source {
                    0
                } else {
                    bidirectional_dijkstra(&case.graph, source, t)
                }
            })
            .collect()
    }
}

/// The served `p2p-bidi` solver ([`bidirectional_st`]): scratch-based
/// bidirectional Dijkstra with the `top(fwd) + top(bwd) ≥ best` stopping
/// rule. Adapted by answering every pair `(source, t)` on ONE reused
/// [`BidiScratch`], so the sparse touched-list reset is itself under
/// differential test across the corpus — including `t == source` (the
/// zero short-circuit) and unreachable targets (the exhaustion proof).
pub struct P2pBidiEngine;

impl SsspEngine for P2pBidiEngine {
    fn name(&self) -> &'static str {
        "p2p-bidi"
    }

    fn supports(&self, case: &GraphCase) -> bool {
        case.n() <= 128
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let mut scratch = BidiScratch::new();
        (0..case.n() as VertexId)
            .map(|t| {
                bidirectional_st(&case.graph, source, t, &mut scratch, None)
                    .expect("uncancellable query cannot be interrupted")
                    .0
            })
            .collect()
    }
}

/// The served `p2p-delta-early` solver ([`delta_stepping_st`]): Δ-stepping
/// that stops once the target's bucket settles. One pre-split CSR and ONE
/// reused [`DeltaScratch`] answer every pair, so the early-exit paths'
/// stamp-epoch bookkeeping is held to the oracle across back-to-back
/// queries, unreachable targets and `t == source` alike.
pub struct P2pDeltaEarlyEngine;

impl SsspEngine for P2pDeltaEarlyEngine {
    fn name(&self) -> &'static str {
        "p2p-delta-early"
    }

    fn supports(&self, case: &GraphCase) -> bool {
        case.n() <= 128
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::adaptive(&case.graph);
        let delta = cfg.delta().min(u32::MAX as u64) as mmt_graph::types::Weight;
        let split = SplitCsr::new(&case.graph, delta.max(1));
        let mut scratch = DeltaScratch::new(&split);
        (0..case.n() as VertexId)
            .map(|t| {
                delta_stepping_st(&split, source, t, &mut scratch, None, None)
                    .expect("uncancellable query cannot be interrupted")
            })
            .collect()
    }
}

/// Δ-stepping on a BFS-relabeled copy of the graph: permute, solve in the
/// new index space, scatter distances back. Puts the whole layout facade
/// (source mapping in, O(n) scatter out) under differential test.
pub struct BfsLayoutDeltaEngine;

impl SsspEngine for BfsLayoutDeltaEngine {
    fn name(&self) -> &'static str {
        "delta-bfs-layout"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let perm = VertexPermutation::bfs(&case.graph);
        let pg = case.graph.permuted(&perm);
        let d = delta_stepping(&pg, perm.to_new(source), DeltaConfig::auto(&pg));
        perm.scatter_to_original_vec(&d)
    }
}

/// Thorup on the CH-DFS layout: graph *and* hierarchy leaf-permuted so
/// every Thorup component is index-contiguous, answered through the
/// [`LayoutSolver`] facade in original vertex ids.
pub struct ChDfsLayoutThorupEngine;

impl SsspEngine for ChDfsLayoutThorupEngine {
    fn name(&self) -> &'static str {
        "thorup-chdfs-layout"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| {
            let layout =
                GraphLayout::build(LayoutKind::ChDfs, Arc::new(g.clone()), Arc::new(ch.clone()))
                    .expect("case graph and hierarchy sizes agree by construction");
            LayoutSolver::new(&layout).solve(s)
        })
    }
}

/// Δ-stepping over the shared-arena offset view: the adjacency lives
/// once in a weight-sorted [`CsrArena`] and the Δ-split is an `O(n)`
/// `light_len` table instead of a duplicated light/heavy CSR. Held to the
/// oracle so the offset-view path proves equivalent to the duplicating
/// [`SplitCsr`] across the whole corpus.
pub struct ArenaDeltaEngine;

impl SsspEngine for ArenaDeltaEngine {
    fn name(&self) -> &'static str {
        "delta-arena"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::adaptive(&case.graph);
        let delta = cfg.delta().min(u32::MAX as u64) as mmt_graph::types::Weight;
        let arena = Arc::new(CsrArena::new(&case.graph));
        let split = arena.split(delta);
        let mut scratch = DeltaScratch::new(&split);
        delta_stepping_presplit(&split, source, &mut scratch, None);
        scratch.to_distances()
    }
}

/// The full multi-tenant serving path: register the case in a
/// [`GraphRegistry`], stand up a one-worker [`QueryService`] shard, and
/// answer through `submit`/`wait`. Every layer the registry redesign
/// added — arena canonicalisation, typed routing, admission, the worker
/// loop — sits between the query and the answer, and the answer must
/// still match Dijkstra bit for bit.
pub struct RegistryServiceEngine;

impl SsspEngine for RegistryServiceEngine {
    fn name(&self) -> &'static str {
        "registry-service"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| {
            let mut registry = GraphRegistry::new();
            let id = registry
                .register("case", g, Arc::new(ch.clone()))
                .expect("case graph and hierarchy sizes agree by construction");
            let service = QueryService::builder()
                .workers(1)
                .build_registry(registry)
                .expect("a registered case is servable");
            service
                .submit(QueryRequest::on(id, s))
                .expect("in-range source")
                .wait()
                .expect("no deadline, no faults")
        })
    }
}

/// The serving path with the coalescing scheduler forced on: a one-worker
/// shard with a small gather window and a batch cap of four, asked the
/// same query four times at once. The scheduler folds the backlog into
/// one [`BatchSolver`] run behind the scenes (the engine records how many
/// multi-member batches actually formed), all four answers must agree
/// with each other, and the differential runner holds the one returned to
/// the Dijkstra oracle — proving a coalesced answer is byte-identical to
/// a solo one on every corpus member.
#[derive(Default)]
pub struct CoalescedServiceEngine {
    batches: Arc<AtomicU64>,
}

impl CoalescedServiceEngine {
    /// Multi-member batches formed across every `solve` so far. The
    /// corpus sweep asserts this is non-zero — the coalescing path must
    /// actually run, not just exist.
    pub fn batches_formed(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }
}

impl SsspEngine for CoalescedServiceEngine {
    fn name(&self) -> &'static str {
        "coalesced-service"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| {
            let mut registry = GraphRegistry::new();
            let id = registry
                .register("case", g, Arc::new(ch.clone()))
                .expect("case graph and hierarchy sizes agree by construction");
            let service = QueryService::builder()
                .workers(1)
                .coalesce_budget(Duration::from_millis(50))
                .coalesce_batch_cap(4)
                .build_registry(registry)
                .expect("a registered case is servable");
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    service
                        .submit(QueryRequest::on(id, s))
                        .expect("in-range source")
                })
                .collect();
            let mut answers = handles
                .into_iter()
                .map(|h| h.wait().expect("no deadline, no faults"));
            let first = answers.next().expect("four submissions");
            for (i, other) in answers.enumerate() {
                assert_eq!(
                    first,
                    other,
                    "coalesced copy {} diverged from the first answer",
                    i + 1
                );
            }
            self.batches
                .fetch_add(service.metrics().coalesced_batches(), Ordering::Relaxed);
            first
        })
    }
}

/// The compact all-`u32` Δ-stepping kernel with checked narrowing. When the
/// graph refuses to narrow (arc count or weight sum too large) it falls back
/// to the wide kernel — the narrowing path must never be silently lossy, and
/// the differential runner holds the result to the oracle either way.
pub struct CompactDeltaEngine;

impl SsspEngine for CompactDeltaEngine {
    fn name(&self) -> &'static str {
        "delta-compact"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::auto(&case.graph);
        match delta_stepping_compact(&case.graph, source, cfg, None) {
            Ok(d) => d,
            Err(_) => delta_stepping(&case.graph, source, cfg),
        }
    }
}

/// ρ-stepping on the contention-free frontier bins: each step extracts
/// the ~ρ closest frontier vertices and relaxes all of their edges, with
/// relax-phase pushes going only into thread-local bins. Solves twice on
/// one scratch so reuse bugs surface, like [`PresplitDeltaEngine`].
pub struct RhoSteppingEngine;

impl SsspEngine for RhoSteppingEngine {
    fn name(&self) -> &'static str {
        "rho-stepping"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::adaptive(&case.graph);
        let delta = cfg.delta().min(u32::MAX as u64) as mmt_graph::types::Weight;
        let split = SplitCsr::new(&case.graph, delta.max(1));
        let mut scratch = StepScratch::new(&split);
        let rho = default_rho(case.n());
        rho_stepping_presplit(&split, source, rho, &mut scratch, None);
        rho_stepping_presplit(&split, source, rho, &mut scratch, None);
        scratch.to_distances()
    }
}

/// Δ*-stepping on the same bins, over the shared-arena offset view (so
/// the corpus also holds the bins kernels' `SplitView` path to the
/// oracle, mirroring [`ArenaDeltaEngine`]).
pub struct DeltaStarEngine;

impl SsspEngine for DeltaStarEngine {
    fn name(&self) -> &'static str {
        "delta-star"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::adaptive(&case.graph);
        let delta = cfg.delta().min(u32::MAX as u64) as mmt_graph::types::Weight;
        let arena = Arc::new(CsrArena::new(&case.graph));
        let split = arena.split(delta.max(1));
        let mut scratch = StepScratch::new(&split);
        delta_star_presplit(&split, source, &mut scratch, None);
        delta_star_presplit(&split, source, &mut scratch, None);
        scratch.to_distances()
    }
}

/// The compact all-`u32` Thorup instance: `dist`/`mind` cells narrowed with
/// the same weight-sum certification as the compact Δ kernel, falling back
/// to the wide instance when the graph refuses to narrow. Either way the
/// answer is held to the oracle — narrowing must be exact, never saturating.
pub struct CompactThorupEngine;

impl SsspEngine for CompactThorupEngine {
    fn name(&self) -> &'static str {
        "thorup-compact"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        case.solve_positive(source, |g, ch, s| {
            let solver = ThorupSolver::new(g, ch);
            solver.solve_compact(s).unwrap_or_else(|_| solver.solve(s))
        })
    }
}

/// ρ-stepping over owned arc partitions: relax work for each frontier
/// vertex is claimed by the one bin lane whose contiguous vertex range
/// owns it, instead of being struck off a shared frontier. A lane count
/// that never divides the host's worker count evenly keeps the
/// owner-routing path honest, and the fetch-min fixpoint must land on the
/// same distances as the unpartitioned kernel — and the oracle.
pub struct PartitionedRhoEngine;

impl SsspEngine for PartitionedRhoEngine {
    fn name(&self) -> &'static str {
        "rho-partitioned"
    }

    fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
        let cfg = DeltaConfig::adaptive(&case.graph);
        let delta = cfg.delta().min(u32::MAX as u64) as mmt_graph::types::Weight;
        let split = SplitCsr::new(&case.graph, delta.max(1));
        let part = PartitionedCsr::new(&split, 3);
        let mut scratch = StepScratch::new(&split);
        let rho = default_rho(case.n());
        rho_stepping_partitioned(&part, source, rho, &mut scratch, None);
        rho_stepping_partitioned(&part, source, rho, &mut scratch, None);
        scratch.to_distances()
    }
}

/// Every engine in the workspace, oracle excluded. The order is stable so
/// divergence reports are reproducible run to run.
pub fn all_engines() -> Vec<Box<dyn SsspEngine>> {
    vec![
        Box::new(SerialThorupEngine),
        Box::new(AtomicThorupEngine),
        Box::new(BatchThorupEngine),
        Box::new(DeltaSteppingEngine),
        Box::new(PresplitDeltaEngine),
        Box::new(ReferenceDeltaEngine),
        Box::new(BellmanFordEngine),
        Box::new(MlbEngine),
        Box::new(BidirectionalEngine),
        Box::new(P2pBidiEngine),
        Box::new(P2pDeltaEarlyEngine),
        Box::new(BfsLayoutDeltaEngine),
        Box::new(ChDfsLayoutThorupEngine),
        Box::new(CompactDeltaEngine),
        Box::new(ArenaDeltaEngine),
        Box::new(RhoSteppingEngine),
        Box::new(PartitionedRhoEngine),
        Box::new(DeltaStarEngine),
        Box::new(CompactThorupEngine),
        Box::new(RegistryServiceEngine),
        Box::new(CoalescedServiceEngine::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::shapes;
    use mmt_graph::types::INF;

    #[test]
    fn every_engine_matches_the_oracle_on_figure_one() {
        let case = GraphCase::new("fig1", shapes::figure_one());
        let want = DijkstraOracle.solve(&case, 0);
        for engine in all_engines() {
            assert!(engine.supports(&case));
            assert_eq!(engine.solve(&case, 0), want, "engine {}", engine.name());
        }
    }

    #[test]
    fn bidirectional_bows_out_of_large_cases() {
        let case = GraphCase::new("path", shapes::path(200, 1));
        assert!(!BidirectionalEngine.supports(&case));
        assert!(!P2pBidiEngine.supports(&case));
        assert!(!P2pDeltaEarlyEngine.supports(&case));
        assert!(MlbEngine.supports(&case));
    }

    #[test]
    fn engine_table_has_twenty_one_engines_with_unique_names() {
        let engines = all_engines();
        assert_eq!(engines.len(), 21, "engine table size");
        let names: std::collections::BTreeSet<_> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), engines.len(), "duplicate engine name");
        assert!(names.contains("p2p-bidi"));
        assert!(names.contains("p2p-delta-early"));
    }

    #[test]
    fn compact_engine_falls_back_when_narrowing_refuses() {
        // A path whose weight sum blows the u32 budget: the compact engine
        // must refuse to narrow and answer through the wide kernel instead
        // of saturating — distances here genuinely exceed u32::MAX.
        let mut el = shapes::path(4, 1);
        for e in el.edges.iter_mut() {
            e.w = u32::MAX;
        }
        let case = GraphCase::new("wide-path", el);
        let want = DijkstraOracle.solve(&case, 0);
        assert!(want[3] > u32::MAX as Dist);
        assert_eq!(CompactDeltaEngine.solve(&case, 0), want);
    }

    #[test]
    fn layout_engines_answer_in_original_ids_on_a_hub_graph() {
        // A star forces BFS and CH-DFS orders far from the natural one, so
        // any missed scatter or source mapping shows up immediately.
        let case = GraphCase::new("star", shapes::star(17, 3));
        for s in [0u32, 1, 16] {
            let want = DijkstraOracle.solve(&case, s);
            assert_eq!(BfsLayoutDeltaEngine.solve(&case, s), want, "bfs s={s}");
            assert_eq!(ChDfsLayoutThorupEngine.solve(&case, s), want, "chdfs s={s}");
        }
    }

    #[test]
    fn unreachable_vertices_are_inf_everywhere() {
        let mut el = shapes::path(4, 3);
        el.n = 6; // two isolated vertices appended
        let case = GraphCase::new("path+isolated", el);
        for engine in all_engines() {
            let d = engine.solve(&case, 0);
            assert_eq!(d[4], INF, "engine {}", engine.name());
            assert_eq!(d[5], INF, "engine {}", engine.name());
        }
    }
}
