//! Differential + metamorphic correctness harness across every SSSP
//! engine in the workspace.
//!
//! The paper's experiments stand on the claim that all the solvers under
//! comparison compute *the same* distances; this crate is that claim made
//! executable. Four layers:
//!
//! * [`engine`] — one [`SsspEngine`](engine::SsspEngine) adapter per
//!   solver (serial/atomic Thorup, Δ-stepping, Bellman-Ford, multi-level
//!   buckets, bidirectional) plus the serial Dijkstra oracle, all
//!   answering in the original vertex space of a prepared
//!   [`GraphCase`](case::GraphCase);
//! * [`runner`] — the [`DifferentialRunner`](runner::DifferentialRunner):
//!   certificate-checks the oracle, cross-checks reachability against
//!   connected components, then compares every engine entry for entry,
//!   reporting the first divergent `(engine, case, source, vertex, got,
//!   want)`;
//! * [`metamorphic`] — oracle-free invariants (weight scaling, vertex
//!   relabeling, redundant-edge no-op, s/t symmetry, P2P triangle
//!   inequality, P2P == full-SSSP at the target) that catch bugs an
//!   engine might share with the oracle;
//! * [`p2p`] — the point-to-point layer: a truncated-Dijkstra s–t oracle
//!   and a pair sweep (`s == t`, endpoints, unreachable targets) holding
//!   the served `p2p-bidi` / `p2p-delta-early` solvers to it;
//! * [`stress`] — seeded random schedules against the concurrent
//!   [`QueryService`](mmt_thorup::QueryService), asserting every answer
//!   the service completes matches the oracle no matter how submissions,
//!   cancellations and deadlines interleave.
//!
//! The corpus ([`corpus`]) mixes adversarial families (zero-weight chains
//! and cycles, parallel edges, self loops, disconnected forests, near-max
//! weights) with small instances of the paper's `Rand`/`RMAT` × UWD/PWD
//! workloads. Seeds come from `MMT_VERIFY_SEED` so CI runs are
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod engine;
pub mod metamorphic;
pub mod p2p;
pub mod runner;
pub mod stress;

pub use case::GraphCase;
pub use corpus::{adversarial_corpus, full_corpus, paper_corpus, seed_from_env, SEED_ENV};
pub use engine::{
    all_engines, CoalescedServiceEngine, CompactThorupEngine, DeltaStarEngine, DijkstraOracle,
    P2pBidiEngine, P2pDeltaEarlyEngine, PartitionedRhoEngine, RhoSteppingEngine, SsspEngine,
};
pub use p2p::{check_p2p_case, truncated_dijkstra};
pub use runner::{DifferentialRunner, RunReport};
pub use stress::{run_service_schedule, ScheduleOutcome, ScheduleSpec};

// Re-exported so harness callers name divergences without a direct
// mmt-baselines dependency.
pub use mmt_baselines::{Divergence, DivergenceKind};
