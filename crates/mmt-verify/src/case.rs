//! A prepared graph case: the original graph plus the positive-weight
//! view the Thorup engines run on.
//!
//! Thorup's algorithm requires positive integer weights; the paper's
//! prescribed preprocessing for zero-weight edges is the contraction in
//! [`mmt_ch::zero_weight`]. A [`GraphCase`] performs that preparation
//! once — original CSR graph, zero-contraction when needed, and the
//! Component Hierarchy over the positive-weight graph — so every engine
//! adapter can answer queries in the *original* vertex space and the
//! differential runner can compare them entry for entry.

use mmt_ch::{build_parallel, ComponentHierarchy, ZeroContraction};
use mmt_graph::types::{Dist, EdgeList, VertexId};
use mmt_graph::CsrGraph;

/// A named graph prepared for differential verification.
#[derive(Debug)]
pub struct GraphCase {
    /// Family label (e.g. `zero-chain-64`, `Rand-UWD-2^7-2^10`).
    pub name: String,
    /// The graph as generated — may contain zero weights, self loops,
    /// parallel edges, and unreachable vertices.
    pub el: EdgeList,
    /// CSR form of `el` (what the oracle and zero-tolerant engines run on).
    pub graph: CsrGraph,
    positive: PositiveView,
}

/// The positive-weight view Thorup-family engines solve on.
#[derive(Debug)]
enum PositiveView {
    /// No zero weights: the original graph, with its hierarchy.
    Direct { ch: ComponentHierarchy },
    /// Zero-weight components contracted away.
    Contracted {
        z: ZeroContraction,
        graph: CsrGraph,
        ch: ComponentHierarchy,
    },
}

impl GraphCase {
    /// Prepares a case: builds the CSR graph, contracts zero-weight
    /// components if any, and builds the Component Hierarchy over the
    /// positive-weight graph.
    pub fn new(name: impl Into<String>, el: EdgeList) -> Self {
        assert!(el.n >= 1, "a case needs at least one vertex");
        let graph = CsrGraph::from_edge_list(&el);
        let positive = if el.edges.iter().any(|e| e.w == 0) {
            let z = ZeroContraction::contract(&el);
            let reduced_graph = CsrGraph::from_edge_list(&z.reduced);
            let ch = build_parallel(&z.reduced);
            PositiveView::Contracted {
                z,
                graph: reduced_graph,
                ch,
            }
        } else {
            PositiveView::Direct {
                ch: build_parallel(&el),
            }
        };
        Self {
            name: name.into(),
            el,
            graph,
            positive,
        }
    }

    /// Vertex count of the original graph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// True when the case needed the zero-weight contraction.
    pub fn has_zero_weights(&self) -> bool {
        matches!(self.positive, PositiveView::Contracted { .. })
    }

    /// Runs `solve` against the positive-weight view (the original graph,
    /// or the zero-contracted reduction) and maps the distances back to
    /// the original vertex space. This is how the Thorup engines — which
    /// require positive weights — answer queries on any corpus member.
    pub fn solve_positive(
        &self,
        source: VertexId,
        solve: impl FnOnce(&CsrGraph, &ComponentHierarchy, VertexId) -> Vec<Dist>,
    ) -> Vec<Dist> {
        match &self.positive {
            PositiveView::Direct { ch } => solve(&self.graph, ch, source),
            PositiveView::Contracted { z, graph, ch } => {
                let reduced = solve(graph, ch, z.map_source(source));
                z.expand_dist(&reduced)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::{adversarial, shapes};
    use mmt_thorup::ThorupSolver;

    #[test]
    fn positive_graph_uses_direct_view() {
        let case = GraphCase::new("fig1", shapes::figure_one());
        assert!(!case.has_zero_weights());
        let d = case.solve_positive(0, |g, ch, s| ThorupSolver::new(g, ch).solve(s));
        assert_eq!(d, vec![0, 1, 1, 9, 10, 10]);
    }

    #[test]
    fn zero_weight_graph_round_trips_through_contraction() {
        let case = GraphCase::new("zero", adversarial::zero_chain(16, 4));
        assert!(case.has_zero_weights());
        let d = case.solve_positive(0, |g, ch, s| ThorupSolver::new(g, ch).solve(s));
        assert_eq!(d, mmt_baselines::dijkstra(&case.graph, 0));
    }
}
