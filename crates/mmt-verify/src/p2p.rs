//! Point-to-point differential layer: the truncated-Dijkstra s–t oracle
//! and a pair sweep holding every P2P solver to it across a case.
//!
//! The full-SSSP differential runner already compares the P2P engines'
//! per-pair answers entry for entry (they sit in
//! [`all_engines`](crate::engine::all_engines) as `p2p-bidi` and
//! `p2p-delta-early`). This layer is the *targeted* complement: an
//! independent oracle that stops the moment the target settles — so its
//! work is shaped like the engines under test, not like a full query —
//! driven over a pair set that always includes `s == t`, adjacent pairs,
//! far pairs, and (on disconnected cases) proven-unreachable targets.

use crate::case::GraphCase;
use mmt_baselines::{
    bidirectional_st, delta_stepping_st, BidiScratch, DeltaConfig, DeltaScratch, Divergence,
    DivergenceKind,
};
use mmt_graph::types::{Dist, VertexId, Weight, INF};
use mmt_graph::{CsrGraph, SplitCsr};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact s–t distance by Dijkstra truncated at the target: the search
/// stops the moment `t` is settled (popped with a live key), or proves
/// unreachability by exhausting s's component. This is the textbook
/// stopping rule — `t`'s label is final when popped because pop order is
/// nondecreasing — and deliberately shares no code with either engine
/// under test.
pub fn truncated_dijkstra(g: &CsrGraph, s: VertexId, t: VertexId) -> Dist {
    assert!(
        (s as usize) < g.n() && (t as usize) < g.n(),
        "endpoint out of range"
    );
    let mut dist = vec![INF; g.n()];
    let mut heap = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0 as Dist, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        if u == t {
            return d;
        }
        for (v, w) in g.edges_from(u) {
            let nd = d + w as Dist;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    INF
}

/// The deterministic pair set for one case: every source the differential
/// runner would pick crossed with the endpoints, the source itself
/// (`s == t`), near neighbours and the middle — and on small cases the
/// full all-pairs square.
fn pairs_for(case: &GraphCase) -> Vec<(VertexId, VertexId)> {
    let n = case.n() as VertexId;
    if n <= 24 {
        return (0..n).flat_map(|s| (0..n).map(move |t| (s, t))).collect();
    }
    let sources = [0, 1, n / 2, n - 2, n - 1];
    let targets = [0, 1, n / 3, n / 2, n - 2, n - 1];
    let mut pairs = Vec::new();
    for &s in &sources {
        pairs.push((s, s)); // s == t, always
        for &t in &targets {
            pairs.push((s, t));
        }
    }
    pairs
}

/// Cross-checks `p2p-bidi` and `p2p-delta-early` against the truncated
/// oracle over [`pairs_for`] on one case. Both engines reuse one scratch
/// across the whole sweep (the served configuration). Returns the number
/// of pairs checked.
pub fn check_p2p_case(case: &GraphCase) -> Result<usize, Divergence> {
    let g = &case.graph;
    let mut bidi = BidiScratch::new();
    let delta = DeltaConfig::adaptive(g).delta().min(u32::MAX as u64) as Weight;
    let split = SplitCsr::new(g, delta.max(1));
    let mut dscratch = DeltaScratch::new(&split);
    let mismatch = |engine: &str, s: VertexId, t: VertexId, got: Dist, want: Dist| {
        Divergence::new(
            DivergenceKind::OracleMismatch,
            s,
            format!("s-t answer disagrees with truncated Dijkstra (t = {t})"),
        )
        .for_engine(engine)
        .for_case(&case.name)
        .at(t, got, want)
    };
    let pairs = pairs_for(case);
    for &(s, t) in &pairs {
        let want = truncated_dijkstra(g, s, t);
        let (got, _) = bidirectional_st(g, s, t, &mut bidi, None)
            .expect("uncancellable query cannot be interrupted");
        if got != want {
            return Err(mismatch("p2p-bidi", s, t, got, want));
        }
        let got = delta_stepping_st(&split, s, t, &mut dscratch, None, None)
            .expect("uncancellable query cannot be interrupted");
        if got != want {
            return Err(mismatch("p2p-delta-early", s, t, got, want));
        }
    }
    Ok(pairs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{adversarial_corpus, full_corpus, seed_from_env};
    use mmt_baselines::dijkstra;
    use mmt_graph::gen::shapes;
    use mmt_graph::types::EdgeList;

    #[test]
    fn truncated_oracle_matches_full_dijkstra() {
        let g = CsrGraph::from_edge_list(&shapes::figure_one());
        let full = dijkstra(&g, 0);
        for t in 0..g.n() as VertexId {
            assert_eq!(truncated_dijkstra(&g, 0, t), full[t as usize], "t={t}");
        }
    }

    #[test]
    fn truncated_oracle_proves_unreachability_and_s_equals_t() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_triples(4, [(0, 1, 2), (2, 3, 1)]));
        assert_eq!(truncated_dijkstra(&g, 0, 3), INF);
        assert_eq!(truncated_dijkstra(&g, 3, 0), INF);
        assert_eq!(truncated_dijkstra(&g, 2, 2), 0);
    }

    #[test]
    fn adversarial_corpus_includes_the_hard_shapes() {
        // The sweep below is only meaningful if the corpus actually
        // contains disconnected cases (unreachable targets) and zero
        // weights; assert that before relying on it.
        let corpus = adversarial_corpus(seed_from_env());
        assert!(corpus.len() >= 6, "adversarial corpus shrank");
        assert!(
            corpus.iter().any(|c| {
                let d = dijkstra(&c.graph, 0);
                d.contains(&INF)
            }),
            "no disconnected case in the adversarial corpus"
        );
        assert!(
            corpus.iter().any(|c| c.has_zero_weights()),
            "no zero-weight case in the adversarial corpus"
        );
    }

    #[test]
    fn p2p_engines_match_the_truncated_oracle_across_the_full_corpus() {
        let mut pairs = 0;
        let corpus = full_corpus(seed_from_env());
        let cases = corpus.len();
        for case in &corpus {
            pairs += check_p2p_case(case).unwrap();
        }
        // Count assertions: every case swept, with a real pair budget —
        // including the all-pairs squares of the small adversarial cases.
        assert!(cases >= 10, "corpus shrank to {cases} cases");
        assert!(pairs >= 35 * cases, "only {pairs} pairs over {cases} cases");
    }

    #[test]
    fn pair_sets_always_cover_the_hard_spots() {
        // Small cases sweep the full all-pairs square.
        let small = GraphCase::new("fig1", shapes::figure_one());
        let pairs = pairs_for(&small);
        assert_eq!(pairs.len(), small.n() * small.n());
        // Large cases still pin s == t, both endpoints, and far pairs.
        let big = GraphCase::new("path", shapes::path(100, 1));
        let pairs = pairs_for(&big);
        assert!(pairs.iter().any(|&(s, t)| s == t));
        assert!(pairs.contains(&(0, 99)));
        assert!(pairs.contains(&(99, 0)));
        assert!(pairs.len() >= 30);
    }
}
