//! The verification corpus: adversarial families plus small instances of
//! the paper's synthetic workloads, all prepared as [`GraphCase`]s.

use crate::case::GraphCase;
use mmt_graph::gen::{adversarial, GraphClass, WeightDist, WorkloadSpec};

/// Environment variable that pins the corpus/source seed in CI.
pub const SEED_ENV: &str = "MMT_VERIFY_SEED";

/// Default seed when [`SEED_ENV`] is unset.
pub const DEFAULT_SEED: u64 = 0x4d4d_545f_5645_5246; // "MMT_VERF"

/// The run seed: `MMT_VERIFY_SEED` when set (decimal or `0x`-hex),
/// otherwise [`DEFAULT_SEED`]. A malformed value panics loudly rather than
/// silently testing an unintended corpus.
pub fn seed_from_env() -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(raw) => {
            let raw = raw.trim();
            let parsed = if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                raw.parse()
            };
            parsed.unwrap_or_else(|_| panic!("{SEED_ENV} must be a u64, got `{raw}`"))
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// The adversarial families from [`mmt_graph::gen::adversarial`], prepared.
pub fn adversarial_corpus(seed: u64) -> Vec<GraphCase> {
    adversarial::families(seed)
        .into_iter()
        .map(|(name, el)| GraphCase::new(name, el))
        .collect()
}

/// Small instances of the paper's Section 4.2 workload families:
/// `Rand`/`RMAT` × `UWD`/`PWD` at `n = 2^7`, with both a tiny and a wide
/// weight range.
pub fn paper_corpus(seed: u64) -> Vec<GraphCase> {
    let mut cases = Vec::new();
    for class in [GraphClass::Random, GraphClass::Rmat] {
        for dist in [WeightDist::Uniform, WeightDist::PolyLog] {
            for log_c in [2, 10] {
                let mut spec = WorkloadSpec::new(class, dist, 7, log_c);
                spec.seed = seed ^ ((log_c as u64) << 8);
                cases.push(GraphCase::new(spec.name(), spec.generate()));
            }
        }
    }
    cases
}

/// The full corpus: adversarial families + paper workloads.
pub fn full_corpus(seed: u64) -> Vec<GraphCase> {
    let mut cases = adversarial_corpus(seed);
    cases.extend(paper_corpus(seed));
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_corpus_is_deterministic_and_covers_both_suites() {
        let a = full_corpus(5);
        let b = full_corpus(5);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.name == y.name && x.el == y.el));
        assert!(
            a.iter().any(|c| c.has_zero_weights()),
            "zero-weight families present"
        );
        assert!(
            a.iter().any(|c| c.name.starts_with("Rand-")),
            "paper families present"
        );
        assert!(a.len() >= 20, "corpus has {} cases", a.len());
    }

    #[test]
    fn env_seed_parses_decimal_and_hex() {
        // Serialize env mutation within this test only.
        std::env::set_var(SEED_ENV, "42");
        assert_eq!(seed_from_env(), 42);
        std::env::set_var(SEED_ENV, "0xff");
        assert_eq!(seed_from_env(), 255);
        std::env::remove_var(SEED_ENV);
        assert_eq!(seed_from_env(), DEFAULT_SEED);
    }
}
