//! The differential runner: every engine vs the Dijkstra oracle, with the
//! oracle itself certificate-checked and cross-checked against connected
//! components.
//!
//! Three independent layers of evidence per `(case, source)` query:
//!
//! 1. the oracle's distance array passes the certificate check in
//!    [`mmt_baselines::verify_sssp`] (no violated edge, every settled
//!    vertex has a tight edge, unreachability is real);
//! 2. the oracle's reachable set matches the connected-components oracle
//!    ([`mmt_cc`]) — on an undirected graph `dist[v] < INF` iff `v` is in
//!    the source's component, and the finite count equals the component
//!    size;
//! 3. every engine's distance array equals the oracle's entry for entry.
//!
//! Any failure is reported as the first divergent
//! `(engine, case, source, vertex, got, want)` — a [`Divergence`].

use crate::case::GraphCase;
use crate::engine::{all_engines, DijkstraOracle, SsspEngine};
use mmt_baselines::{verify_sssp_engine, Divergence, DivergenceKind};
use mmt_cc::{connected_components, CcAlgorithm, EdgeSet};
use mmt_graph::types::{VertexId, INF};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Summary counters for a differential run (what was actually covered).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Graph cases exercised.
    pub cases: usize,
    /// `(case, source)` oracle queries.
    pub queries: usize,
    /// Engine solves compared against the oracle.
    pub engine_runs: usize,
    /// Per-vertex distance comparisons performed.
    pub comparisons: usize,
}

/// Drives every engine over a corpus of cases and sources, comparing each
/// result against the Dijkstra oracle. Stops at the first divergence.
pub struct DifferentialRunner {
    engines: Vec<Box<dyn SsspEngine>>,
    /// Extra random sources per case, beyond the fixed `{0, n-1}`.
    pub extra_sources: usize,
    /// Seed for source sampling (fixed in CI via `MMT_VERIFY_SEED`).
    pub seed: u64,
}

impl DifferentialRunner {
    /// A runner over [`all_engines`] with `extra_sources` random sources
    /// per case on top of the fixed `{0, n-1}`.
    pub fn new(seed: u64, extra_sources: usize) -> Self {
        Self {
            engines: all_engines(),
            extra_sources,
            seed,
        }
    }

    /// Replaces the engine list (used by tests to isolate one engine).
    pub fn with_engines(mut self, engines: Vec<Box<dyn SsspEngine>>) -> Self {
        self.engines = engines;
        self
    }

    /// The sources this runner queries for a case of `n` vertices:
    /// always `0` and `n-1`, plus seeded extras (deduplicated, order kept).
    pub fn sources_for(&self, case_name: &str, n: usize) -> Vec<VertexId> {
        let mut sources: Vec<VertexId> = vec![0];
        if n > 1 {
            sources.push((n - 1) as VertexId);
        }
        // Derive the per-case stream from the run seed and the case name so
        // adding a case never shifts another case's sources.
        let name_hash = case_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        let mut rng = SmallRng::seed_from_u64(self.seed ^ name_hash);
        for _ in 0..self.extra_sources {
            let s = rng.gen_range(0..n) as VertexId;
            if !sources.contains(&s) {
                sources.push(s);
            }
        }
        sources
    }

    /// Runs one case through every engine at every source. Returns coverage
    /// counters, or the first divergence found.
    pub fn run_case(&self, case: &GraphCase) -> Result<RunReport, Divergence> {
        let mut report = RunReport {
            cases: 1,
            ..RunReport::default()
        };
        let comps = connected_components(
            EdgeSet {
                n: case.el.n,
                edges: &case.el.edges,
            },
            CcAlgorithm::SerialDsu,
        );
        for source in self.sources_for(&case.name, case.n()) {
            report.queries += 1;
            let want = DijkstraOracle.solve(case, source);

            // Layer 1: certificate-check the oracle itself.
            verify_sssp_engine("dijkstra", &case.graph, source, &want)
                .map_err(|d| d.for_case(&case.name))?;

            // Layer 2: reachable set == source's connected component.
            let finite = want.iter().filter(|&&d| d < INF).count();
            let component = comps.member_count(source);
            if finite != component {
                return Err(Divergence::new(
                    DivergenceKind::ComponentMismatch,
                    source,
                    format!(
                        "oracle reaches {finite} vertices but the source's \
                         component has {component}"
                    ),
                )
                .for_engine("dijkstra")
                .for_case(&case.name));
            }
            if let Some(v) = (0..case.n() as VertexId)
                .find(|&v| comps.same(source, v) != (want[v as usize] < INF))
            {
                return Err(Divergence::new(
                    DivergenceKind::ComponentMismatch,
                    source,
                    "reachability disagrees with connected components",
                )
                .for_engine("dijkstra")
                .for_case(&case.name)
                .at_vertex(v, want[v as usize]));
            }

            // Layer 3: every engine against the oracle, entry for entry.
            for engine in &self.engines {
                if !engine.supports(case) {
                    continue;
                }
                report.engine_runs += 1;
                let got = engine.solve(case, source);
                if got.len() != want.len() {
                    return Err(Divergence::new(
                        DivergenceKind::LengthMismatch,
                        source,
                        format!(
                            "engine returned {} entries, graph has {}",
                            got.len(),
                            want.len()
                        ),
                    )
                    .for_engine(engine.name())
                    .for_case(&case.name));
                }
                report.comparisons += got.len();
                if let Some(v) = (0..got.len()).find(|&v| got[v] != want[v]) {
                    return Err(Divergence::new(
                        DivergenceKind::OracleMismatch,
                        source,
                        "engine disagrees with the Dijkstra oracle",
                    )
                    .for_engine(engine.name())
                    .for_case(&case.name)
                    .at(v as VertexId, got[v], want[v]));
                }
            }
        }
        Ok(report)
    }

    /// Runs a whole corpus, accumulating coverage. Stops at the first
    /// divergence.
    pub fn run_corpus<'a>(
        &self,
        cases: impl IntoIterator<Item = &'a GraphCase>,
    ) -> Result<RunReport, Divergence> {
        let mut total = RunReport::default();
        for case in cases {
            let r = self.run_case(case)?;
            total.cases += r.cases;
            total.queries += r.queries;
            total.engine_runs += r.engine_runs;
            total.comparisons += r.comparisons;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::{adversarial, shapes};
    use mmt_graph::types::Dist;

    #[test]
    fn sources_always_include_endpoints_and_are_deterministic() {
        let r = DifferentialRunner::new(7, 3);
        let a = r.sources_for("case-a", 50);
        let b = r.sources_for("case-a", 50);
        assert_eq!(a, b);
        assert!(a.contains(&0) && a.contains(&49));
        assert!(a.len() <= 5);
    }

    #[test]
    fn clean_case_passes_with_full_coverage() {
        let case = GraphCase::new("fig1", shapes::figure_one());
        let report = DifferentialRunner::new(1, 2).run_case(&case).unwrap();
        assert_eq!(report.cases, 1);
        assert!(report.queries >= 2);
        assert!(
            report.engine_runs >= 2 * 21,
            "all twenty-one engines ran per source"
        );
        assert!(report.comparisons >= report.engine_runs * case.n());
    }

    #[test]
    fn a_lying_engine_is_caught_with_its_name_and_vertex() {
        struct OffByOne;
        impl SsspEngine for OffByOne {
            fn name(&self) -> &'static str {
                "off-by-one"
            }
            fn solve(&self, case: &GraphCase, source: VertexId) -> Vec<Dist> {
                let mut d = DijkstraOracle.solve(case, source);
                if let Some(x) = d.iter_mut().find(|x| **x != 0 && **x < INF) {
                    *x += 1;
                }
                d
            }
        }
        let case = GraphCase::new("fig1", shapes::figure_one());
        let runner = DifferentialRunner::new(1, 0).with_engines(vec![Box::new(OffByOne)]);
        let err = runner.run_case(&case).unwrap_err();
        assert_eq!(err.engine, "off-by-one");
        assert_eq!(err.kind, DivergenceKind::OracleMismatch);
        assert!(err.vertex.is_some());
        let msg = err.to_string();
        assert!(msg.contains("off-by-one") && msg.contains("fig1"), "{msg}");
    }

    #[test]
    fn zero_weight_corpus_member_runs_all_engines() {
        let case = GraphCase::new("zero-cycles", adversarial::zero_cycles(4, 5, 3));
        let report = DifferentialRunner::new(3, 1).run_case(&case).unwrap();
        assert!(report.engine_runs > 0);
    }
}
