//! Seeded-schedule stress for the concurrent [`QueryService`]: a random
//! but reproducible interleaving of submissions, cancellations and
//! deadlines, with the invariant that *every query the service answers
//! `Ok` must match the serial Dijkstra oracle* — however the schedule
//! races. Rejections (overload, deadline, cancel, shutdown) are counted
//! but never treated as failures, so the test is timing-robust.

use mmt_baselines::{dijkstra, Divergence, DivergenceKind};
use mmt_ch::build_parallel;
use mmt_graph::types::{Dist, EdgeList, VertexId};
use mmt_graph::CsrGraph;
use mmt_thorup::{
    GraphRegistry, QueryHandle, QueryRequest, QueryService, ServiceError, TargetHandle,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A reproducible service schedule: how many queries to submit and with
/// what mix of targets, cancellations and impossible deadlines.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleSpec {
    /// Total submissions attempted.
    pub queries: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Bounded queue capacity (small values exercise overload rejection).
    pub queue_capacity: usize,
    /// Percent of submitted queries cancelled immediately after submit.
    pub cancel_pct: u32,
    /// Percent of submissions that are point-to-point (`submit_target`).
    pub target_pct: u32,
    /// Percent of submissions given a zero deadline (must be rejected or
    /// raced to completion — either is legal).
    pub tiny_deadline_pct: u32,
    /// Schedule seed.
    pub seed: u64,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        Self {
            queries: 64,
            workers: 3,
            queue_capacity: 8,
            cancel_pct: 25,
            target_pct: 30,
            tiny_deadline_pct: 15,
            seed: 1,
        }
    }
}

/// What a schedule run observed; every counter is an *outcome*, not an
/// assertion — only wrong `Ok` answers fail a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleOutcome {
    /// Full queries answered and verified against the oracle.
    pub completed_full: usize,
    /// Point-to-point queries answered and verified against the oracle.
    pub completed_target: usize,
    /// Queries rejected at submit because the queue was full.
    pub overloaded: usize,
    /// Queries reporting [`ServiceError::Cancelled`].
    pub cancelled: usize,
    /// Queries reporting [`ServiceError::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Queries reporting [`ServiceError::ShutDown`].
    pub shut_down: usize,
    /// Queries evicted by the load-shedding policy ([`ServiceError::Shed`]).
    pub shed: usize,
    /// Queries lost to a worker panic ([`ServiceError::WorkerLost`]).
    pub worker_lost: usize,
}

impl ScheduleOutcome {
    /// Queries that produced a verified answer.
    pub fn completed(&self) -> usize {
        self.completed_full + self.completed_target
    }

    /// Every submission is accounted for by exactly one counter.
    pub fn total(&self) -> usize {
        self.completed()
            + self.overloaded
            + self.cancelled
            + self.deadline_exceeded
            + self.shut_down
            + self.shed
            + self.worker_lost
    }
}

enum Pending {
    Full {
        source: VertexId,
        handle: QueryHandle,
    },
    Target {
        source: VertexId,
        target: VertexId,
        handle: TargetHandle,
    },
}

/// Runs a seeded schedule against a fresh [`QueryService`] over `el`
/// (which must be positive-weight — the service solves with Thorup).
///
/// Returns the outcome counters, or a [`Divergence`] naming the first
/// completed query whose answer disagrees with the Dijkstra oracle.
pub fn run_service_schedule(
    el: &EdgeList,
    spec: ScheduleSpec,
) -> Result<ScheduleOutcome, Divergence> {
    let graph = Arc::new(CsrGraph::from_edge_list(el));
    let ch = Arc::new(build_parallel(el));
    let n = graph.n();
    let mut registry = GraphRegistry::new();
    registry
        .register("stress", &graph, ch)
        .expect("hierarchy matches the graph it was built from");
    let service = QueryService::builder()
        .workers(spec.workers)
        .queue_capacity(spec.queue_capacity)
        .build_registry(registry)
        .expect("service builds for a matching graph/hierarchy pair");

    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut outcome = ScheduleOutcome::default();
    let mut pending: Vec<Pending> = Vec::new();
    let mut oracle: HashMap<VertexId, Vec<Dist>> = HashMap::new();

    for _ in 0..spec.queries {
        let source = rng.gen_range(0..n) as VertexId;
        let tiny = rng.gen_range(0..100u32) < spec.tiny_deadline_pct;
        let deadline = Duration::ZERO;
        let submitted = if rng.gen_range(0..100u32) < spec.target_pct {
            let target = rng.gen_range(0..n) as VertexId;
            let request = QueryRequest::new(source).target(target);
            let res = if tiny {
                service.try_submit_p2p(request.deadline(deadline))
            } else {
                service.try_submit_p2p(request)
            };
            res.map(|handle| Pending::Target {
                source,
                target,
                handle,
            })
        } else {
            let request = QueryRequest::new(source);
            let res = if tiny {
                service.try_submit(request.deadline(deadline))
            } else {
                service.try_submit(request)
            };
            res.map(|handle| Pending::Full { source, handle })
        };
        match submitted {
            Ok(p) => {
                if rng.gen_range(0..100u32) < spec.cancel_pct {
                    match &p {
                        Pending::Full { handle, .. } => handle.cancel(),
                        Pending::Target { handle, .. } => handle.cancel(),
                    }
                }
                pending.push(p);
            }
            Err(ServiceError::Overloaded { .. }) => {
                outcome.overloaded += 1;
                // Relieve pressure so the schedule keeps making progress.
                if let Some(p) = pending.pop() {
                    resolve(p, &graph, &mut oracle, &mut outcome)?;
                }
            }
            Err(other) => panic!("unexpected submit rejection: {other}"),
        }
        // Occasionally resolve a random pending handle mid-schedule so
        // waits interleave with submissions rather than all trailing them.
        if !pending.is_empty() && rng.gen_range(0..100) < 20 {
            let idx = rng.gen_range(0..pending.len());
            let p = pending.swap_remove(idx);
            resolve(p, &graph, &mut oracle, &mut outcome)?;
        }
    }
    for p in pending {
        resolve(p, &graph, &mut oracle, &mut outcome)?;
    }
    Ok(outcome)
}

fn oracle_row<'a>(
    oracle: &'a mut HashMap<VertexId, Vec<Dist>>,
    graph: &CsrGraph,
    source: VertexId,
) -> &'a [Dist] {
    oracle
        .entry(source)
        .or_insert_with(|| dijkstra(graph, source))
}

fn resolve(
    p: Pending,
    graph: &CsrGraph,
    oracle: &mut HashMap<VertexId, Vec<Dist>>,
    outcome: &mut ScheduleOutcome,
) -> Result<(), Divergence> {
    let mismatch = |source: VertexId, v: VertexId, got: Dist, want: Dist| {
        Divergence::new(
            DivergenceKind::OracleMismatch,
            source,
            "a completed service query disagrees with the Dijkstra oracle",
        )
        .for_engine("query-service")
        .for_case("service-stress")
        .at(v, got, want)
    };
    match p {
        Pending::Full { source, handle } => match handle.wait() {
            Ok(dist) => {
                let want = oracle_row(oracle, graph, source);
                if let Some(v) = (0..dist.len()).find(|&v| dist[v] != want[v]) {
                    return Err(mismatch(source, v as VertexId, dist[v], want[v]));
                }
                outcome.completed_full += 1;
            }
            Err(e) => count_rejection(e, outcome),
        },
        Pending::Target {
            source,
            target,
            handle,
        } => match handle.wait() {
            Ok(dist) => {
                let want = oracle_row(oracle, graph, source)[target as usize];
                if dist != want {
                    return Err(mismatch(source, target, dist, want));
                }
                outcome.completed_target += 1;
            }
            Err(e) => count_rejection(e, outcome),
        },
    }
    Ok(())
}

fn count_rejection(e: ServiceError, outcome: &mut ScheduleOutcome) {
    match e {
        ServiceError::Cancelled => outcome.cancelled += 1,
        ServiceError::DeadlineExceeded => outcome.deadline_exceeded += 1,
        ServiceError::ShutDown => outcome.shut_down += 1,
        ServiceError::Shed => outcome.shed += 1,
        ServiceError::WorkerLost => outcome.worker_lost += 1,
        other => panic!("unexpected query outcome: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};

    fn workload() -> EdgeList {
        WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 6).generate()
    }

    #[test]
    fn default_schedule_completes_and_verifies() {
        let el = workload();
        let outcome = run_service_schedule(&el, ScheduleSpec::default()).unwrap();
        assert!(
            outcome.completed() > 0,
            "some queries must complete: {outcome:?}"
        );
        assert!(outcome.total() > 0);
    }

    #[test]
    fn same_seed_submits_the_same_schedule() {
        // Completion/rejection splits may differ run to run (they race),
        // but the submission side is deterministic, so totals agree.
        let el = workload();
        let spec = ScheduleSpec {
            cancel_pct: 0,
            tiny_deadline_pct: 0,
            queue_capacity: 64,
            ..ScheduleSpec::default()
        };
        let a = run_service_schedule(&el, spec).unwrap();
        let b = run_service_schedule(&el, spec).unwrap();
        assert_eq!(a.total(), b.total());
        assert_eq!(a.completed(), spec.queries);
        assert_eq!(b.completed(), spec.queries);
    }

    #[test]
    fn heavy_cancellation_never_yields_wrong_answers() {
        let el = workload();
        let spec = ScheduleSpec {
            cancel_pct: 80,
            tiny_deadline_pct: 40,
            queue_capacity: 4,
            workers: 2,
            queries: 96,
            seed: 0xC0FFEE,
            ..ScheduleSpec::default()
        };
        // The real assertion is inside run_service_schedule: every Ok
        // answer matched the oracle. Here just check full accounting.
        let outcome = run_service_schedule(&el, spec).unwrap();
        assert_eq!(outcome.total(), 96);
    }
}
