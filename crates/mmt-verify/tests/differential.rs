//! The CI verification gate: the full differential corpus, metamorphic
//! spot checks, and a seeded QueryService schedule — all reproducible
//! under `MMT_VERIFY_SEED`.

use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_verify::metamorphic;
use mmt_verify::{
    all_engines, full_corpus, paper_corpus, run_service_schedule, seed_from_env,
    CoalescedServiceEngine, DifferentialRunner, DijkstraOracle, GraphCase, ScheduleSpec,
    SsspEngine,
};

/// Every engine vs the Dijkstra oracle on every corpus case, with the
/// oracle certificate-checked and cross-checked against connected
/// components. This is the tentpole assertion of the harness.
#[test]
fn all_engines_agree_on_the_full_corpus() {
    let seed = seed_from_env();
    let corpus = full_corpus(seed);
    let runner = DifferentialRunner::new(seed, 2);
    let report = runner.run_corpus(corpus.iter()).unwrap();
    assert_eq!(report.cases, corpus.len());
    assert!(
        report.engine_runs >= corpus.len() * 19,
        "expected all nineteen engines across {} cases, got {} engine runs",
        corpus.len(),
        report.engine_runs
    );
    assert!(
        report.comparisons > 10_000,
        "coverage collapsed: {report:?}"
    );
}

/// Metamorphic invariants (weight scaling, relabeling, redundant-edge
/// no-op, s/t symmetry) hold for every registered engine — including the
/// permuted-layout and compact ones, whose whole job is index gymnastics
/// that the relabeling check is purpose-built to catch — on random, RMAT
/// and zero-weight cases at several sources.
#[test]
fn metamorphic_invariants_hold_for_every_engine() {
    let seed = seed_from_env();
    let cases = [
        GraphCase::new(
            "Rand-UWD-2^6",
            WorkloadSpec {
                seed,
                ..WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 6, 6)
            }
            .generate(),
        ),
        GraphCase::new(
            "Rmat-PWD-2^6",
            WorkloadSpec {
                seed,
                ..WorkloadSpec::new(GraphClass::Rmat, WeightDist::PolyLog, 6, 6)
            }
            .generate(),
        ),
        GraphCase::new(
            "zero-chain-48",
            mmt_graph::gen::adversarial::zero_chain(48, 5),
        ),
    ];
    for case in &cases {
        let n = case.n() as u32;
        for source in [0, n / 2, n - 1] {
            for engine in all_engines() {
                metamorphic::check_all(engine.as_ref(), case, source, seed).unwrap();
            }
        }
    }
}

/// A seeded submit/cancel/deadline interleaving against the QueryService:
/// every query the service completes must match the serial oracle.
#[test]
fn seeded_service_schedule_only_completes_correct_answers() {
    let seed = seed_from_env();
    let el = WorkloadSpec {
        seed,
        ..WorkloadSpec::new(GraphClass::Random, WeightDist::Uniform, 7, 8)
    }
    .generate();
    let spec = ScheduleSpec {
        seed,
        queries: 128,
        ..ScheduleSpec::default()
    };
    let outcome = run_service_schedule(&el, spec).unwrap();
    assert_eq!(
        outcome.total(),
        spec.queries,
        "every submission accounted for"
    );
    assert!(outcome.completed() > 0, "schedule too hostile: {outcome:?}");
}

/// The coalescing scheduler, differentially: one engine instance swept
/// across the paper corpus so its batch accumulator spans every case.
/// Each solve pushes four copies of the query through a one-worker
/// service with coalescing forced on (tiny window, cap 4), and every
/// answer must match the Dijkstra oracle entry for entry. The final
/// assertion is the one the engine exists for: multi-member batches
/// actually formed — the corpus exercised the coalesced solve path, not
/// just the singleton fallback.
#[test]
fn coalesced_service_answers_match_the_oracle_and_batches_form() {
    let seed = seed_from_env();
    let engine = CoalescedServiceEngine::default();
    let oracle = DijkstraOracle;
    for case in paper_corpus(seed) {
        let n = case.n() as u32;
        for source in [0, n / 2, n - 1] {
            let want = oracle.solve(&case, source);
            let got = engine.solve(&case, source);
            assert_eq!(got, want, "case {} source {source}", case.name);
        }
    }
    assert!(
        engine.batches_formed() > 0,
        "the corpus sweep never formed a multi-member batch — coalescing \
         was exercised only through the singleton path"
    );
}
