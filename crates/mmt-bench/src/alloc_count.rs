//! A counting global allocator (behind the `count-alloc` feature).
//!
//! The hot-path optimisation claim — "the optimized Δ-stepping performs
//! strictly fewer allocations per query than the seed kernel, and the
//! batched serving path allocates nothing in steady state" — needs a
//! measurement, not an argument. With `--features count-alloc` this module
//! installs a [`GlobalAlloc`] wrapper around [`System`] that counts every
//! allocation and reallocation; [`measure`] brackets a closure with
//! before/after snapshots. Without the feature the crate compiles with
//! `forbid(unsafe_code)` and no allocator override, so the default builds
//! stay provably safe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocations and bytes.
pub struct CountingAllocator;

#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Cumulative `(allocations, bytes)` since process start.
pub fn totals() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

/// Runs `f`, returning its result plus the `(allocations, bytes)` the run
/// performed. Counts are process-wide, so keep other threads quiet for
/// precise numbers; comparative measurements (A strictly fewer than B)
/// tolerate background noise by margin.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (a0, b0) = totals();
    let out = f();
    let (a1, b1) = totals();
    (out, a1.saturating_sub(a0), b1.saturating_sub(b0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_move_when_allocating() {
        let (v, allocs, bytes) = measure(|| vec![0u64; 1024]);
        assert_eq!(v.len(), 1024);
        assert!(allocs >= 1, "a fresh Vec must allocate");
        assert!(bytes >= 8 * 1024);
        let (_, none, _) = measure(|| {
            let mut x = 0u64;
            for i in 0..100u64 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert_eq!(none, 0, "pure arithmetic must not allocate");
    }
}
