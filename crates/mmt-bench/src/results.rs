//! Structured measurement records: CSV persistence and run-over-run
//! comparison, so the reproduction harness leaves machine-readable
//! artifacts next to its human-readable tables.
//!
//! The format is deliberately trivial (header + comma-separated rows, no
//! quoting needed because keys are generated identifiers), parsed by the
//! same module that writes it.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// One measured quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Experiment id (`table5`, `fig4_ch`, …).
    pub experiment: String,
    /// Workload name (`Rand-UWD-2^15-2^15`).
    pub family: String,
    /// Metric (`thorup_secs`, `speedup`, …).
    pub metric: String,
    /// The value.
    pub value: f64,
}

impl Measurement {
    /// Builds a measurement record.
    pub fn new(
        experiment: impl Into<String>,
        family: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) -> Self {
        let m = Self {
            experiment: experiment.into(),
            family: family.into(),
            metric: metric.into(),
            value,
        };
        assert!(
            !m.experiment.contains(',') && !m.family.contains(',') && !m.metric.contains(','),
            "keys must be comma-free"
        );
        m
    }

    fn key(&self) -> (String, String, String) {
        (
            self.experiment.clone(),
            self.family.clone(),
            self.metric.clone(),
        )
    }
}

/// A set of measurements from one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    rows: Vec<Measurement>,
}

impl RunRecord {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a measurement.
    pub fn push(&mut self, m: Measurement) {
        self.rows.push(m);
    }

    /// Convenience append.
    pub fn record(&mut self, experiment: &str, family: &str, metric: &str, value: f64) {
        self.push(Measurement::new(experiment, family, metric, value));
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All measurements.
    pub fn rows(&self) -> &[Measurement] {
        &self.rows
    }

    /// Looks up a value by exact key.
    pub fn get(&self, experiment: &str, family: &str, metric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|m| m.experiment == experiment && m.family == family && m.metric == metric)
            .map(|m| m.value)
    }

    /// Writes CSV (`experiment,family,metric,value`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "experiment,family,metric,value")?;
        for m in &self.rows {
            writeln!(w, "{},{},{},{}", m.experiment, m.family, m.metric, m.value)?;
        }
        Ok(())
    }

    /// Parses CSV written by [`write_csv`](Self::write_csv).
    pub fn read_csv<R: BufRead>(r: R) -> io::Result<Self> {
        let mut rows = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("experiment,")) {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, ',').collect();
            if parts.len() != 4 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected 4 fields", i + 1),
                ));
            }
            let value: f64 = parts[3].parse().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
            })?;
            rows.push(Measurement::new(parts[0], parts[1], parts[2], value));
        }
        Ok(Self { rows })
    }

    /// Compares against a baseline run: for every key present in both,
    /// reports the ratio `current / baseline`; ratios above `threshold`
    /// are flagged as regressions (for time-like metrics, bigger = worse).
    pub fn compare(&self, baseline: &RunRecord, threshold: f64) -> Comparison {
        let base: BTreeMap<_, _> = baseline.rows.iter().map(|m| (m.key(), m.value)).collect();
        let mut common = Vec::new();
        let mut regressions = Vec::new();
        for m in &self.rows {
            if let Some(&b) = base.get(&m.key()) {
                let ratio = if b == 0.0 { f64::INFINITY } else { m.value / b };
                common.push((m.clone(), b, ratio));
                if ratio > threshold {
                    regressions.push((m.clone(), b, ratio));
                }
            }
        }
        Comparison {
            common,
            regressions,
        }
    }
}

/// The result of comparing two runs.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// `(current, baseline_value, ratio)` for every shared key.
    pub common: Vec<(Measurement, f64, f64)>,
    /// The subset whose ratio exceeded the threshold.
    pub regressions: Vec<(Measurement, f64, f64)>,
}

impl Comparison {
    /// True if nothing regressed.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunRecord {
        let mut r = RunRecord::new();
        r.record("table5", "Rand-UWD-2^15-2^15", "thorup_secs", 0.0116);
        r.record("table5", "Rand-UWD-2^15-2^15", "delta_secs", 0.0067);
        r.record("fig5", "Rand-UWD-2^16-2^16", "simul_32", 0.949);
        r
    }

    #[test]
    fn csv_round_trip() {
        let r = sample();
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let back = RunRecord::read_csv(&buf[..]).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.len(), 3);
        assert_eq!(
            back.get("table5", "Rand-UWD-2^15-2^15", "delta_secs"),
            Some(0.0067)
        );
        assert_eq!(back.get("nope", "x", "y"), None);
    }

    #[test]
    fn rejects_malformed_csv() {
        assert!(RunRecord::read_csv("a,b,c\n".as_bytes()).is_err());
        assert!(RunRecord::read_csv("a,b,c,not_a_number\n".as_bytes()).is_err());
        let empty = RunRecord::read_csv("experiment,family,metric,value\n".as_bytes()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn comparison_flags_regressions() {
        let base = sample();
        let mut cur = sample();
        cur.rows[0].value *= 2.0; // thorup got 2x slower
        let cmp = cur.compare(&base, 1.5);
        assert_eq!(cmp.common.len(), 3);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.regressions[0].0.metric, "thorup_secs");
        assert!((cmp.regressions[0].2 - 2.0).abs() < 1e-12);
        // Within threshold: clean.
        assert!(sample().compare(&base, 1.5).is_clean());
    }

    #[test]
    fn disjoint_runs_share_nothing() {
        let mut other = RunRecord::new();
        other.record("t1", "x", "y", 1.0);
        let cmp = other.compare(&sample(), 1.1);
        assert!(cmp.common.is_empty());
        assert!(cmp.is_clean());
    }

    #[test]
    #[should_panic(expected = "comma-free")]
    fn commas_in_keys_rejected() {
        Measurement::new("a,b", "c", "d", 1.0);
    }
}
