//! The road-network query grid behind `bench_road`.
//!
//! Two fixed-seed road workloads (grid + highway shortcuts from
//! `mmt_graph::gen::road`, at two weight scales) are run through the
//! full-SSSP engines (binary-heap Dijkstra and pre-split Δ-stepping) and
//! the point-to-point engines (bidirectional Dijkstra and early-exit
//! Δ-stepping) over the same deterministic query mix — near, mid and
//! cross-graph pairs. Each row records wall time, relaxations/sec and the
//! arcs actually scanned, into `BENCH_road.json` validated by
//! `schema/BENCH_road.schema.json`.
//!
//! The artifact's load-bearing claim is the P2P one: on road-family
//! graphs a targeted query must scan *strictly fewer* arcs than a full
//! SSSP answering the same mix — that is the whole point of shipping
//! s–t solvers — and [`check_artifact`] enforces it on every artifact,
//! checked-in baseline included. Each workload also carries a small
//! Δ sweep (Δ = 1, Δ*/4, Δ*, 4Δ*) for the full Δ-stepping engine, so
//! the adaptive choice is recorded against its neighbours rather than
//! asserted.
//!
//! Honesty note: every cell runs single-threaded under an explicit
//! 1-thread pool — the P2P kernels are serial by design, and giving the
//! full engines the host's parallelism would turn the arcs-vs-time story
//! into a threads story. Thread scaling lives in `bench_scaling`.

use crate::hotpath::{counters_json, DiffLine};
use crate::json::{self, Json};
use mmt_baselines::{
    adaptive_delta, bidirectional_st, delta_stepping_presplit, delta_stepping_st, BidiScratch,
    DeltaScratch,
};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::{Dist, VertexId, Weight, INF};
use mmt_graph::{CsrGraph, SplitCsr};
use mmt_platform::pool::with_pinned_pool;
use mmt_platform::{available_threads, CountersSnapshot, EventCounters, PinPolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// The checked-in schema `BENCH_road.json` must validate against.
pub const SCHEMA_TEXT: &str = include_str!("../schema/BENCH_road.schema.json");

/// Format version stamped into the artifact.
pub const FORMAT_VERSION: u64 = 1;

/// Run shape: scale, repetitions and the query mix size.
#[derive(Debug, Clone)]
pub struct RoadOptions {
    /// log2 of the vertex count per workload (the generator lays out a
    /// `√n × √n` street grid plus highway shortcuts).
    pub scale: u32,
    /// Timed repetitions of the whole query mix, per row.
    pub iterations: usize,
    /// Queries in the mix. Full rows run one SSSP per query's source;
    /// P2P rows answer the query's `(source, target)` pair — equal
    /// counts, so per-row totals compare like for like.
    pub queries: usize,
    /// True for the CI smoke shape.
    pub smoke: bool,
}

impl RoadOptions {
    /// The CI smoke shape: tiny grid, seconds even on one core, every
    /// artifact field exercised.
    pub fn smoke() -> Self {
        Self {
            scale: 8,
            iterations: 2,
            queries: 4,
            smoke: true,
        }
    }

    /// The default measurement shape (honours `MMT_SCALE` / `MMT_RUNS`).
    pub fn full() -> Self {
        Self {
            scale: crate::scale_from_env(13),
            iterations: crate::runs_from_env().min(4),
            queries: 6,
            smoke: false,
        }
    }
}

/// One engine's row over the workload's query mix.
#[derive(Debug, Clone)]
pub struct RoadRow {
    /// Engine name (matches the mmt-verify registry).
    pub engine: &'static str,
    /// `"full"` (one SSSP per query source) or `"p2p"` (one s–t answer
    /// per query pair).
    pub kind: &'static str,
    /// Queries answered inside `wall_secs`.
    pub queries: usize,
    /// Total wall time for all queries.
    pub wall_secs: f64,
    /// Edge relaxations performed.
    pub relaxations: u64,
    /// Arcs scanned — the work the P2P engines exist to avoid.
    pub arcs_scanned: u64,
    /// Full event-counter snapshot for the row.
    pub counters: CountersSnapshot,
}

impl RoadRow {
    /// Relaxations per second of wall time (0 when nothing was measured).
    pub fn relaxations_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.relaxations as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One point of the per-workload Δ sweep: the full pre-split Δ-stepping
/// engine timed at a non-adaptive Δ, one pass over the query sources.
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// The bucket width this point ran at.
    pub delta: u64,
    /// Wall time for one pass over the sources.
    pub wall_secs: f64,
    /// Relaxations for that pass.
    pub relaxations: u64,
}

/// One road workload's rows.
#[derive(Debug, Clone)]
pub struct RoadWorkload {
    /// Workload name (`Road-UWD-2^8-2^6`, ...).
    pub name: String,
    /// Vertices.
    pub n: usize,
    /// Undirected edges (street grid + highway shortcuts).
    pub m: usize,
    /// The adaptive Δ the bucketed rows split at.
    pub delta: u64,
    /// The Δ-choice sweep (Δ = 1, Δ*/4, Δ*, 4Δ*, deduplicated).
    pub delta_sweep: Vec<DeltaPoint>,
    /// Engine rows, full engines first.
    pub rows: Vec<RoadRow>,
}

/// The whole artifact.
#[derive(Debug, Clone)]
pub struct RoadReport {
    /// Run shape.
    pub options: RoadOptions,
    /// Logical cores on the measuring host (the rows still run on 1).
    pub host_logical_cores: usize,
    /// The `MMT_PIN` policy the process resolved at startup.
    pub pin_policy: &'static str,
    /// NUMA nodes the host exposes (1 on flat or opaque hosts).
    pub numa_nodes: usize,
    /// Peak RSS at the end of the run (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Per-workload rows.
    pub workloads: Vec<RoadWorkload>,
}

/// The two road workloads at `scale`: near-unit segment weights (city
/// streets) and wide weights (mixed-speed network), same fixed seed.
pub fn road_specs(scale: u32) -> Vec<WorkloadSpec> {
    [2, scale.min(16)]
        .into_iter()
        .map(|log_c| WorkloadSpec {
            class: GraphClass::Road,
            dist: WeightDist::Uniform,
            log_n: scale,
            log_c,
            seed: 0x2007,
        })
        .collect()
}

/// The deterministic query mix: sources from the workload's seeded
/// stream, targets at a rotating stride — adjacent, one street row away,
/// a few blocks, a quarter of the grid, and cross-graph — so the P2P
/// totals aggregate near and far queries rather than cherry-picking
/// either.
pub fn query_pairs(w: &crate::Workload, queries: usize) -> Vec<(VertexId, VertexId)> {
    let n = w.graph.n();
    let side = (n as f64).sqrt() as usize;
    let strides = [1, side, 3 * side + 7, n / 4, n / 2];
    w.sources(queries)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let t = (s as usize + strides[i % strides.len()]) % n;
            (s, t as VertexId)
        })
        .collect()
}

/// Runs the whole grid.
pub fn run(opts: &RoadOptions) -> RoadReport {
    let workloads = road_specs(opts.scale)
        .into_iter()
        .map(|spec| run_workload(spec, opts))
        .collect();
    let (pin_policy, numa_nodes) = crate::topology_header();
    RoadReport {
        options: opts.clone(),
        host_logical_cores: available_threads(),
        pin_policy,
        numa_nodes,
        peak_rss_bytes: mmt_platform::mem::peak_rss_bytes().unwrap_or(0),
        workloads,
    }
}

/// Full binary-heap Dijkstra with the same instrumentation the bucketed
/// engines carry: one settle per live pop, one scan + relaxation per
/// out-arc of a settled vertex.
fn dijkstra_instrumented(g: &CsrGraph, source: VertexId, counters: &EventCounters) -> Vec<Dist> {
    let mut dist = vec![INF; g.n()];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0 as Dist, source)));
    let (mut settled, mut scanned, mut improved) = (0u64, 0u64, 0u64);
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        settled += 1;
        for (v, w) in g.edges_from(u) {
            scanned += 1;
            let nd = d + w as Dist;
            if nd < dist[v as usize] {
                improved += 1;
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    counters.settled.add(settled);
    counters.arcs_scanned.add(scanned);
    counters.relaxations.add(scanned);
    counters.improvements.add(improved);
    dist
}

fn finish(
    engine: &'static str,
    kind: &'static str,
    queries: usize,
    wall_secs: f64,
    counters: &EventCounters,
) -> RoadRow {
    let snap = counters.snapshot();
    RoadRow {
        engine,
        kind,
        queries,
        wall_secs,
        relaxations: snap.relaxations,
        arcs_scanned: snap.arcs_scanned,
        counters: snap,
    }
}

fn run_workload(spec: WorkloadSpec, opts: &RoadOptions) -> RoadWorkload {
    let w = crate::Workload::generate(spec);
    let g = &w.graph;
    let pairs = query_pairs(&w, opts.queries);
    let queries = pairs.len() * opts.iterations;
    let delta = adaptive_delta(g);
    let delta_w = delta.min(u32::MAX as u64).max(1) as Weight;

    let mut rows = Vec::new();
    let mut delta_sweep = Vec::new();
    with_pinned_pool(1, PinPolicy::None, || {
        let split = SplitCsr::new(g, delta_w);

        {
            let counters = EventCounters::new();
            drop(dijkstra_instrumented(g, pairs[0].0, &EventCounters::new())); // warm-up
            let t0 = Instant::now();
            for _ in 0..opts.iterations {
                for &(s, _) in &pairs {
                    let d = dijkstra_instrumented(g, s, &counters);
                    std::hint::black_box(d.len());
                }
            }
            rows.push(finish(
                "dijkstra",
                "full",
                queries,
                t0.elapsed().as_secs_f64(),
                &counters,
            ));
        }

        {
            let counters = EventCounters::new();
            let mut scratch = DeltaScratch::new(&split);
            delta_stepping_presplit(&split, pairs[0].0, &mut scratch, None); // warm-up
            let t0 = Instant::now();
            for _ in 0..opts.iterations {
                for &(s, _) in &pairs {
                    delta_stepping_presplit(&split, s, &mut scratch, Some(&counters));
                    std::hint::black_box(scratch.distance(s));
                }
            }
            rows.push(finish(
                "delta-presplit",
                "full",
                queries,
                t0.elapsed().as_secs_f64(),
                &counters,
            ));
        }

        {
            let counters = EventCounters::new();
            let mut scratch = BidiScratch::new();
            let _ = bidirectional_st(g, pairs[0].0, pairs[0].1, &mut scratch, None); // warm-up
            let t0 = Instant::now();
            for _ in 0..opts.iterations {
                for &(s, t) in &pairs {
                    let (d, stats) = bidirectional_st(g, s, t, &mut scratch, None)
                        .expect("uncancellable query cannot be interrupted");
                    std::hint::black_box(d);
                    counters.arcs_scanned.add(stats.arcs_scanned);
                    counters.relaxations.add(stats.arcs_scanned);
                    counters.settled.add(stats.settled);
                }
            }
            rows.push(finish(
                "p2p-bidi",
                "p2p",
                queries,
                t0.elapsed().as_secs_f64(),
                &counters,
            ));
        }

        {
            let counters = EventCounters::new();
            let mut scratch = DeltaScratch::new(&split);
            let _ = delta_stepping_st(&split, pairs[0].0, pairs[0].1, &mut scratch, None, None); // warm-up
            let t0 = Instant::now();
            for _ in 0..opts.iterations {
                for &(s, t) in &pairs {
                    let d = delta_stepping_st(&split, s, t, &mut scratch, Some(&counters), None)
                        .expect("uncancellable query cannot be interrupted");
                    std::hint::black_box(d);
                }
            }
            rows.push(finish(
                "p2p-delta-early",
                "p2p",
                queries,
                t0.elapsed().as_secs_f64(),
                &counters,
            ));
        }

        // The Δ-choice sweep: the full engine at Δ = 1, Δ*/4, Δ* and 4Δ*
        // (deduplicated), one pass over the query sources each, so the
        // adaptive choice has neighbours to be judged against.
        let mut deltas = vec![1u64, (delta / 4).max(1), delta, delta.saturating_mul(4)];
        deltas.sort_unstable();
        deltas.dedup();
        for d in deltas {
            let dw = d.min(u32::MAX as u64).max(1) as Weight;
            let sweep_split = SplitCsr::new(g, dw);
            let counters = EventCounters::new();
            let mut scratch = DeltaScratch::new(&sweep_split);
            delta_stepping_presplit(&sweep_split, pairs[0].0, &mut scratch, None); // warm-up
            let t0 = Instant::now();
            for &(s, _) in &pairs {
                delta_stepping_presplit(&sweep_split, s, &mut scratch, Some(&counters));
                std::hint::black_box(scratch.distance(s));
            }
            delta_sweep.push(DeltaPoint {
                delta: d,
                wall_secs: t0.elapsed().as_secs_f64(),
                relaxations: counters.snapshot().relaxations,
            });
        }
    });

    RoadWorkload {
        name: spec.name(),
        n: g.n(),
        m: g.m(),
        delta,
        delta_sweep,
        rows,
    }
}

impl RoadReport {
    /// Renders the artifact as pretty-stable JSON (two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", FORMAT_VERSION));
        out.push_str(&format!("  \"smoke\": {},\n", self.options.smoke));
        out.push_str(&format!("  \"scale\": {},\n", self.options.scale));
        out.push_str(&format!("  \"iterations\": {},\n", self.options.iterations));
        out.push_str(&format!(
            "  \"queries_per_workload\": {},\n",
            self.options.queries
        ));
        out.push_str(&format!(
            "  \"host_logical_cores\": {},\n",
            self.host_logical_cores
        ));
        out.push_str(&format!("  \"pin_policy\": \"{}\",\n", self.pin_policy));
        out.push_str(&format!("  \"numa_nodes\": {},\n", self.numa_nodes));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json::escape(&w.name)));
            out.push_str(&format!("      \"n\": {},\n", w.n));
            out.push_str(&format!("      \"m\": {},\n", w.m));
            out.push_str(&format!("      \"delta\": {},\n", w.delta));
            out.push_str("      \"delta_sweep\": [\n");
            for (di, p) in w.delta_sweep.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"delta\": {}, \"wall_secs\": {}, \"relaxations\": {}}}{}\n",
                    p.delta,
                    p.wall_secs,
                    p.relaxations,
                    if di + 1 < w.delta_sweep.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            out.push_str("      ],\n");
            out.push_str("      \"rows\": [\n");
            for (ri, r) in w.rows.iter().enumerate() {
                out.push_str("        {");
                out.push_str(&format!("\"engine\": \"{}\", ", json::escape(r.engine)));
                out.push_str(&format!("\"kind\": \"{}\", ", json::escape(r.kind)));
                out.push_str(&format!("\"queries\": {}, ", r.queries));
                out.push_str(&format!("\"wall_secs\": {}, ", r.wall_secs));
                out.push_str(&format!("\"relaxations\": {}, ", r.relaxations));
                out.push_str(&format!(
                    "\"relaxations_per_sec\": {}, ",
                    r.relaxations_per_sec()
                ));
                out.push_str(&format!("\"arcs_scanned\": {}, ", r.arcs_scanned));
                out.push_str(&format!(
                    "\"counters\": {}}}{}\n",
                    counters_json(&r.counters),
                    if ri + 1 < w.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses `text`, validates it against the checked-in schema, then
/// enforces the artifact's load-bearing invariant: in every workload,
/// every P2P row scanned strictly fewer arcs than every full row. This is
/// what `bench_road --check` and the CI smoke job run.
pub fn check_artifact(text: &str) -> Result<Json, String> {
    let schema = json::parse(SCHEMA_TEXT).map_err(|e| format!("schema is invalid JSON: {e}"))?;
    let value = json::parse(text).map_err(|e| format!("artifact does not parse: {e}"))?;
    json::validate(&value, &schema).map_err(|e| format!("artifact violates schema: {e}"))?;
    let workloads = value
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or("workloads is not an array")?;
    for w in workloads {
        let wname = w.get("name").and_then(Json::as_str).unwrap_or("?");
        let rows = w
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{wname}: rows is not an array"))?;
        let arcs_of = |kind: &str| -> Vec<(String, f64)> {
            rows.iter()
                .filter(|r| r.get("kind").and_then(Json::as_str) == Some(kind))
                .filter_map(|r| {
                    Some((
                        r.get("engine").and_then(Json::as_str)?.to_string(),
                        r.get("arcs_scanned").and_then(Json::as_num)?,
                    ))
                })
                .collect()
        };
        let full = arcs_of("full");
        let p2p = arcs_of("p2p");
        if full.is_empty() || p2p.is_empty() {
            return Err(format!("{wname}: needs at least one full and one p2p row"));
        }
        for (pe, pa) in &p2p {
            for (fe, fa) in &full {
                if pa >= fa {
                    return Err(format!(
                        "{wname}: p2p row {pe} scanned {pa} arcs, not strictly fewer \
                         than full row {fe}'s {fa} — the point-to-point advantage \
                         the artifact exists to witness is gone"
                    ));
                }
            }
        }
    }
    Ok(value)
}

fn relax_per_sec_index(value: &Json) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let Some(workloads) = value.get("workloads").and_then(Json::as_arr) else {
        return out;
    };
    for w in workloads {
        let Some(wname) = w.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(rows) = w.get("rows").and_then(Json::as_arr) else {
            continue;
        };
        for r in rows {
            if let (Some(engine), Some(rps)) = (
                r.get("engine").and_then(Json::as_str),
                r.get("relaxations_per_sec").and_then(Json::as_num),
            ) {
                out.push((wname.to_string(), engine.to_string(), rps));
            }
        }
    }
    out
}

/// Compares two checked road artifacts' relaxations/sec for every
/// `(workload, engine)` row present in both, failing when any row runs
/// more than `tolerance`× slower. All rows gate: every row here is
/// single-threaded by construction, so there is no oversubscription
/// excuse. Errs on disjoint grids, same as the other gates.
pub fn diff_artifacts(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) -> Result<Vec<DiffLine>, String> {
    assert!(tolerance >= 1.0);
    let base = relax_per_sec_index(baseline);
    let cur = relax_per_sec_index(current);
    let mut lines = Vec::new();
    for (wname, engine, baseline_rps) in &base {
        let Some((_, _, current_rps)) = cur.iter().find(|(w, e, _)| w == wname && e == engine)
        else {
            continue;
        };
        lines.push(DiffLine {
            workload: wname.clone(),
            engine: engine.clone(),
            baseline: *baseline_rps,
            current: *current_rps,
        });
    }
    if lines.is_empty() {
        return Err("artifacts share no (workload, engine) rows to compare".into());
    }
    if let Some(worst) = lines
        .iter()
        .filter(|l| l.baseline > 0.0 && l.current * tolerance < l.baseline)
        .min_by(|a, b| a.ratio().total_cmp(&b.ratio()))
    {
        return Err(format!(
            "relaxations/sec regression: {} / {} at {:.0} vs baseline {:.0} ({:.2}x, tolerance {}x)",
            worst.workload,
            worst.engine,
            worst.current,
            worst.baseline,
            worst.ratio(),
            tolerance
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RoadOptions {
        RoadOptions {
            scale: 6,
            iterations: 1,
            queries: 4,
            smoke: true,
        }
    }

    #[test]
    fn smoke_run_emits_a_schema_valid_artifact() {
        let report = run(&tiny());
        assert_eq!(report.workloads.len(), 2);
        assert!(report.host_logical_cores >= 1);
        for w in &report.workloads {
            assert_eq!(w.rows.len(), 4);
            assert!(w.rows.iter().all(|r| r.wall_secs > 0.0));
            assert!(w.rows.iter().all(|r| r.arcs_scanned > 0));
            assert!(w.delta_sweep.len() >= 2, "{}: {:?}", w.name, w.delta_sweep);
            assert!(w.delta_sweep.iter().any(|p| p.delta == w.delta));
            // The acceptance invariant, on the raw report: every P2P row
            // scans strictly fewer arcs than every full row.
            let full_min = w
                .rows
                .iter()
                .filter(|r| r.kind == "full")
                .map(|r| r.arcs_scanned)
                .min()
                .unwrap();
            for r in w.rows.iter().filter(|r| r.kind == "p2p") {
                assert!(
                    r.arcs_scanned < full_min,
                    "{}: {} scanned {} arcs vs full minimum {}",
                    w.name,
                    r.engine,
                    r.arcs_scanned,
                    full_min
                );
            }
            // Both full engines settle the same graph; Δ-stepping may
            // re-expand a handful of vertices across buckets, so the arc
            // totals agree closely but not exactly.
            let full: Vec<u64> = w
                .rows
                .iter()
                .filter(|r| r.kind == "full")
                .map(|r| r.arcs_scanned)
                .collect();
            assert!(
                full.iter().max().unwrap() * 4 <= full.iter().min().unwrap() * 5,
                "{}: {full:?}",
                w.name
            );
        }
        let text = report.to_json();
        let value = check_artifact(&text).expect("artifact must satisfy the schema");
        assert_eq!(
            value.get("version").and_then(Json::as_num),
            Some(FORMAT_VERSION as f64)
        );
        let rows = relax_per_sec_index(&value);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|(_, e, _)| e == "p2p-bidi"));
        assert!(rows.iter().any(|(_, e, _)| e == "p2p-delta-early"));
    }

    #[test]
    fn query_pairs_mix_near_and_far() {
        let w = crate::Workload::generate(road_specs(8)[0]);
        let pairs = query_pairs(&w, 10);
        assert_eq!(pairs.len(), 10);
        let n = w.graph.n();
        assert!(pairs
            .iter()
            .all(|&(s, t)| (s as usize) < n && (t as usize) < n));
        assert_eq!(pairs, query_pairs(&w, 10), "pairs are deterministic");
        // The stride rotation gives both adjacent and cross-graph pairs.
        let spans: Vec<usize> = pairs
            .iter()
            .map(|&(s, t)| {
                (s as usize)
                    .abs_diff(t as usize)
                    .min(n - (s as usize).abs_diff(t as usize))
            })
            .collect();
        assert!(spans.iter().any(|&d| d <= 1));
        assert!(spans.iter().any(|&d| d >= n / 4));
    }

    #[test]
    fn check_rejects_a_vanished_p2p_advantage() {
        let report = run(&tiny());
        let text = report.to_json();
        check_artifact(&text).unwrap();
        // Inflate the first p2p row's arcs_scanned past any full row.
        let key = "\"engine\": \"p2p-bidi\", \"kind\": \"p2p\", ";
        let at = text.find(key).unwrap();
        let arcs_key = "\"arcs_scanned\": ";
        let start = text[at..].find(arcs_key).unwrap() + at + arcs_key.len();
        let end = start + text[start..].find(',').unwrap();
        let broken = format!("{}999999999999{}", &text[..start], &text[end..]);
        let err = check_artifact(&broken).unwrap_err();
        assert!(err.contains("strictly fewer"), "{err}");
    }

    #[test]
    fn diff_gates_every_row() {
        let report = run(&tiny());
        let value = check_artifact(&report.to_json()).unwrap();
        let lines = diff_artifacts(&value, &value, 2.0).unwrap();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| (l.ratio() - 1.0).abs() < 1e-12));
        // A collapsed p2p row fails the gate — p2p rows are not exempt.
        let text = report.to_json();
        let key = "\"relaxations_per_sec\": ";
        let mut start = 0;
        for _ in 0..3 {
            start = text[start..].find(key).unwrap() + start + key.len();
        }
        let end = start + text[start..].find(',').unwrap();
        let slow = format!("{}0{}", &text[..start], &text[end..]);
        let slow = check_artifact(&slow).unwrap();
        assert!(diff_artifacts(&value, &slow, 2.0).is_err());
        // Disjoint grids are an error, not a silent pass.
        let renamed = json::parse(r#"{"workloads": [{"name": "other", "rows": []}]}"#).unwrap();
        assert!(diff_artifacts(&value, &renamed, 2.0).is_err());
    }

    #[test]
    fn truncated_artifact_fails_the_check() {
        let report = run(&tiny());
        let text = report.to_json();
        assert!(check_artifact(&text[..text.len() / 2]).is_err());
        assert!(check_artifact("{\"version\": 1}").is_err());
    }
}
