//! The locality-layout grid behind `bench_layout`.
//!
//! The MTA-2 the paper targets has a flat, uniform-latency memory system —
//! vertex order is performance-irrelevant there. On cache-based commodity
//! hardware it is anything but, so this grid measures the same fixed-seed
//! workloads as `bench_hotpath` under every vertex ordering in
//! [`LayoutKind`] and both distance widths:
//!
//! * `delta-u64` — the pre-split Δ-stepping hot path on the natural,
//!   degree-sorted, BFS, and CH-DFS relabeled graphs;
//! * `delta-u64-ra` — the same kernel with the unrolled read-ahead on the
//!   bucket-scan inner loop, so its win/loss versus `delta-u64` is
//!   recorded honestly per layout (even when negative);
//! * `delta-u32` — the compact all-`u32` kernel on the same layouts
//!   (skipped per workload when checked narrowing refuses);
//! * `rho-u64` / `rho-part` — ρ-stepping on every layout, plain and with
//!   owned arc partitions (one contiguous vertex range per bin lane), so
//!   the partition's effect is recorded per ordering — win or loss;
//! * `thorup` — parallel Thorup on the natural and CH-DFS layouts (the
//!   ordering that makes its components index-contiguous);
//! * `thorup-u32` — the same two layouts on the compact `u32`-cell
//!   instance (skipped, like `delta-u32`, when narrowing refuses).
//!
//! Every permuted measurement is end-to-end honest: the source is mapped
//! into the layout, and the distances are scattered back to original
//! vertex ids inside the timed region — the same O(n) facade cost the
//! query service pays. Counters come from the shared
//! [`CountersSnapshot`] story, so `arcs_scanned` is comparable across
//! orderings (a permutation changes *where* arc reads land, never how
//! many there are).
//!
//! The workloads reuse the `bench_hotpath` families (Rand/RMAT × UWD/PWD,
//! seed 0x2007) with the weight exponent capped at 2^10 so the undirected
//! weight sum stays inside the compact kernel's `u32` budget at every
//! scale this harness runs at — otherwise the u32 column would silently
//! vanish exactly at the scales where locality matters.

use crate::hotpath::counters_json;
use crate::json::{self, Json};
use mmt_baselines::{
    adaptive_delta, default_rho, delta_stepping_compact_presplit, delta_stepping_presplit,
    delta_stepping_presplit_readahead, rho_stepping_partitioned, rho_stepping_presplit,
    CompactScratch, DeltaScratch, StepScratch,
};
use mmt_graph::compact::CompactSplitCsr;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::{Dist, VertexId, Weight};
use mmt_graph::{CsrGraph, PartitionedCsr, SplitCsr, VertexPermutation};
use mmt_platform::{CountersSnapshot, EventCounters};
use mmt_thorup::{CompactThorupInstance, GraphLayout, InstancePool, LayoutKind, ThorupSolver};
use std::sync::Arc;
use std::time::Instant;

/// The checked-in schema `BENCH_layout.json` must validate against.
pub const SCHEMA_TEXT: &str = include_str!("../schema/BENCH_layout.schema.json");

/// Format version stamped into the artifact. Version 2 added the
/// `threads` and `host_logical_cores` header fields and the
/// `delta-u64-ra` (read-ahead) sample rows. Version 3 added the
/// `pin_policy` / `numa_nodes` topology header and the `rho-u64`,
/// `rho-part` and `thorup-u32` sample rows.
pub const FORMAT_VERSION: u64 = 3;

/// Run shape: scale, repetitions, sources per workload.
#[derive(Debug, Clone, Copy)]
pub struct LayoutOptions {
    /// log2 of the vertex count per workload.
    pub scale: u32,
    /// Timed repetitions of the whole source sweep, per sample.
    pub iterations: usize,
    /// Query sources per workload.
    pub sources: usize,
    /// True for the CI smoke shape.
    pub smoke: bool,
}

impl LayoutOptions {
    /// The CI smoke shape: tiny scale, every code path exercised.
    pub fn smoke() -> Self {
        Self {
            scale: 8,
            iterations: 2,
            sources: 3,
            smoke: true,
        }
    }

    /// The default measurement shape (honours `MMT_SCALE` / `MMT_RUNS`).
    /// Locality effects only show once the working set outgrows the cache,
    /// so the default scale is larger than `bench_hotpath`'s.
    pub fn full() -> Self {
        Self {
            scale: crate::scale_from_env(16),
            iterations: crate::runs_from_env().min(4),
            sources: 4,
            smoke: false,
        }
    }
}

/// One `(engine, layout)` measurement on one workload.
#[derive(Debug, Clone)]
pub struct LayoutSample {
    /// Kernel under test: `delta-u64`, `delta-u32`, or `thorup`.
    pub engine: &'static str,
    /// Ordering: `natural`, `degree`, `bfs`, or `chdfs`.
    pub layout: &'static str,
    /// Queries answered inside `wall_secs`.
    pub queries: usize,
    /// Total wall time for all queries, including the id-mapping facade.
    pub wall_secs: f64,
    /// One-off cost of building the permutation and permuted structures
    /// (0 for the natural layout).
    pub permute_secs: f64,
    /// The shared counters snapshot (relax, buckets, arcs scanned, ...).
    pub counters: CountersSnapshot,
}

impl LayoutSample {
    /// Relaxations per second of wall time (0 when nothing was measured).
    pub fn relaxations_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.counters.relaxations as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One workload's measurements across the layout grid.
#[derive(Debug, Clone)]
pub struct LayoutWorkload {
    /// Workload name (`Rand-UWD-2^16-2^10`, ...).
    pub name: String,
    /// Vertices.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// The adaptive Δ shared by every Δ-stepping sample.
    pub delta: u64,
    /// True when the compact `u32` kernel could run (checked narrowing
    /// accepted the graph).
    pub compact_ok: bool,
    /// Per-`(engine, layout)` measurements.
    pub samples: Vec<LayoutSample>,
}

/// The whole artifact.
#[derive(Debug, Clone)]
pub struct LayoutReport {
    /// Run shape.
    pub options: LayoutOptions,
    /// Thread budget the measurement ran under.
    pub threads: usize,
    /// Logical cores on the measuring host.
    pub host_logical_cores: usize,
    /// The `MMT_PIN` policy the process resolved at startup.
    pub pin_policy: &'static str,
    /// NUMA nodes the host exposes (1 on flat or opaque hosts).
    pub numa_nodes: usize,
    /// Peak RSS at the end of the run (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Per-workload measurements.
    pub workloads: Vec<LayoutWorkload>,
}

/// The four fixed-seed layout workloads at `scale`: the `bench_hotpath`
/// families with `log_c` capped so checked `u32` narrowing stays feasible.
pub fn layout_specs(scale: u32) -> Vec<WorkloadSpec> {
    use GraphClass::{Random, Rmat};
    use WeightDist::{PolyLog, Uniform};
    [
        (Random, Uniform),
        (Random, PolyLog),
        (Rmat, Uniform),
        (Rmat, PolyLog),
    ]
    .into_iter()
    .map(|(class, dist)| WorkloadSpec {
        class,
        dist,
        log_n: scale,
        log_c: scale.min(10),
        seed: 0x2007,
    })
    .collect()
}

/// Runs the whole layout grid.
pub fn run(opts: LayoutOptions) -> LayoutReport {
    let workloads = layout_specs(opts.scale)
        .into_iter()
        .map(|spec| run_workload(spec, opts))
        .collect();
    let (pin_policy, numa_nodes) = crate::topology_header();
    LayoutReport {
        options: opts,
        threads: rayon::current_num_threads(),
        host_logical_cores: mmt_platform::available_threads(),
        pin_policy,
        numa_nodes,
        peak_rss_bytes: mmt_platform::mem::peak_rss_bytes().unwrap_or(0),
        workloads,
    }
}

fn run_workload(spec: WorkloadSpec, opts: LayoutOptions) -> LayoutWorkload {
    let w = crate::Workload::generate(spec);
    let sources = w.sources(opts.sources);
    let graph = Arc::new(w.graph);
    let ch = Arc::new(mmt_ch::build_parallel(&w.edges));
    let delta = adaptive_delta(&graph);
    let delta_w = delta.min(u32::MAX as u64) as Weight;

    let mut compact_ok = true;
    let mut samples = Vec::new();
    for kind in LayoutKind::all() {
        // One permutation per ordering, shared by every kernel on it. Its
        // construction (plus graph/hierarchy rebuild) is the amortised
        // one-off cost the artifact reports as permute_secs.
        let t0 = Instant::now();
        let perm = kind.permutation(&graph, &ch);
        let (pg, permute_secs) = match &perm {
            None => (Arc::clone(&graph), 0.0),
            Some(p) => (Arc::new(graph.permuted(p)), t0.elapsed().as_secs_f64()),
        };

        samples.push(measure_delta_wide(
            "delta-u64",
            delta_stepping_presplit,
            &pg,
            perm.as_ref(),
            kind,
            &sources,
            opts.iterations,
            delta_w,
            permute_secs,
        ));
        samples.push(measure_delta_wide(
            "delta-u64-ra",
            delta_stepping_presplit_readahead,
            &pg,
            perm.as_ref(),
            kind,
            &sources,
            opts.iterations,
            delta_w,
            permute_secs,
        ));
        match measure_delta_compact(
            &pg,
            perm.as_ref(),
            kind,
            &sources,
            opts.iterations,
            delta_w,
            permute_secs,
        ) {
            Some(s) => samples.push(s),
            None => compact_ok = false,
        }
        for partitioned in [false, true] {
            samples.push(measure_rho(
                &pg,
                perm.as_ref(),
                kind,
                &sources,
                opts.iterations,
                delta_w,
                permute_secs,
                partitioned,
            ));
        }
        if matches!(kind, LayoutKind::Natural | LayoutKind::ChDfs) {
            samples.push(measure_thorup(kind, &graph, &ch, &sources, opts.iterations));
            match measure_thorup_compact(kind, &graph, &ch, &sources, opts.iterations) {
                Some(s) => samples.push(s),
                None => compact_ok = false,
            }
        }
    }

    LayoutWorkload {
        name: spec.name(),
        n: graph.n(),
        m: graph.m(),
        delta,
        compact_ok,
        samples,
    }
}

fn map_source(perm: Option<&VertexPermutation>, s: VertexId) -> VertexId {
    perm.map_or(s, |p| p.to_new(s))
}

#[allow(clippy::too_many_arguments)]
fn measure_delta_wide(
    engine: &'static str,
    kernel: fn(&SplitCsr, VertexId, &mut DeltaScratch, Option<&EventCounters>),
    pg: &CsrGraph,
    perm: Option<&VertexPermutation>,
    kind: LayoutKind,
    sources: &[VertexId],
    iterations: usize,
    delta_w: Weight,
    permute_secs: f64,
) -> LayoutSample {
    let split = SplitCsr::new(pg, delta_w);
    let mut scratch = DeltaScratch::new(&split);
    let mut internal: Vec<Dist> = Vec::with_capacity(pg.n());
    let mut out: Vec<Dist> = Vec::with_capacity(pg.n());
    kernel(&split, map_source(perm, sources[0]), &mut scratch, None);
    let counters = EventCounters::new();
    let t0 = Instant::now();
    for _ in 0..iterations {
        for &s in sources {
            kernel(&split, map_source(perm, s), &mut scratch, Some(&counters));
            // Materialise the answer in original vertex ids: the facade
            // cost belongs inside the measurement.
            match perm {
                None => scratch.copy_distances_into(&mut out),
                Some(p) => {
                    scratch.copy_distances_into(&mut internal);
                    p.scatter_to_original(&internal, &mut out);
                }
            }
            std::hint::black_box(out[s as usize]);
        }
    }
    LayoutSample {
        engine,
        layout: kind.short_name(),
        queries: sources.len() * iterations,
        wall_secs: t0.elapsed().as_secs_f64(),
        permute_secs,
        counters: counters.snapshot(),
    }
}

#[allow(clippy::too_many_arguments)]
fn measure_delta_compact(
    pg: &CsrGraph,
    perm: Option<&VertexPermutation>,
    kind: LayoutKind,
    sources: &[VertexId],
    iterations: usize,
    delta_w: Weight,
    permute_secs: f64,
) -> Option<LayoutSample> {
    let split = CompactSplitCsr::try_new(pg, delta_w).ok()?;
    let mut scratch = CompactScratch::new(&split);
    let mut internal: Vec<Dist> = Vec::with_capacity(pg.n());
    let mut out: Vec<Dist> = Vec::with_capacity(pg.n());
    delta_stepping_compact_presplit(&split, map_source(perm, sources[0]), &mut scratch, None);
    let counters = EventCounters::new();
    let t0 = Instant::now();
    for _ in 0..iterations {
        for &s in sources {
            delta_stepping_compact_presplit(
                &split,
                map_source(perm, s),
                &mut scratch,
                Some(&counters),
            );
            match perm {
                None => scratch.copy_distances_into(&mut out),
                Some(p) => {
                    scratch.copy_distances_into(&mut internal);
                    p.scatter_to_original(&internal, &mut out);
                }
            }
            std::hint::black_box(out[s as usize]);
        }
    }
    Some(LayoutSample {
        engine: "delta-u32",
        layout: kind.short_name(),
        queries: sources.len() * iterations,
        wall_secs: t0.elapsed().as_secs_f64(),
        permute_secs,
        counters: counters.snapshot(),
    })
}

/// ρ-stepping on one layout, plain (`rho-u64`) or with owned arc
/// partitions (`rho-part`, one contiguous vertex range per bin lane).
/// Both run on the same pre-split adjacency, so their delta isolates the
/// owner-routing scatter — the fixpoint guarantees identical distances.
#[allow(clippy::too_many_arguments)]
fn measure_rho(
    pg: &CsrGraph,
    perm: Option<&VertexPermutation>,
    kind: LayoutKind,
    sources: &[VertexId],
    iterations: usize,
    delta_w: Weight,
    permute_secs: f64,
    partitioned: bool,
) -> LayoutSample {
    let split = SplitCsr::new(pg, delta_w.max(1));
    let part = PartitionedCsr::new(&split, rayon::current_num_threads());
    let rho = default_rho(pg.n());
    let mut scratch = StepScratch::new(&split);
    let mut internal: Vec<Dist> = Vec::with_capacity(pg.n());
    let mut out: Vec<Dist> = Vec::with_capacity(pg.n());
    let solve = |s: VertexId, counters: Option<&EventCounters>, scratch: &mut StepScratch| {
        if partitioned {
            rho_stepping_partitioned(&part, s, rho, scratch, counters);
        } else {
            rho_stepping_presplit(&split, s, rho, scratch, counters);
        }
    };
    solve(map_source(perm, sources[0]), None, &mut scratch); // warm-up
    let counters = EventCounters::new();
    let t0 = Instant::now();
    for _ in 0..iterations {
        for &s in sources {
            solve(map_source(perm, s), Some(&counters), &mut scratch);
            match perm {
                None => scratch.copy_distances_into(&mut out),
                Some(p) => {
                    scratch.copy_distances_into(&mut internal);
                    p.scatter_to_original(&internal, &mut out);
                }
            }
            std::hint::black_box(out[s as usize]);
        }
    }
    LayoutSample {
        engine: if partitioned { "rho-part" } else { "rho-u64" },
        layout: kind.short_name(),
        queries: sources.len() * iterations,
        wall_secs: t0.elapsed().as_secs_f64(),
        permute_secs,
        counters: counters.snapshot(),
    }
}

fn measure_thorup(
    kind: LayoutKind,
    graph: &Arc<CsrGraph>,
    ch: &Arc<mmt_ch::ComponentHierarchy>,
    sources: &[VertexId],
    iterations: usize,
) -> LayoutSample {
    let t0 = Instant::now();
    let layout = GraphLayout::build(kind, Arc::clone(graph), Arc::clone(ch))
        .expect("workload graph and hierarchy sizes agree");
    let permute_secs = if matches!(kind, LayoutKind::Natural) {
        0.0
    } else {
        t0.elapsed().as_secs_f64()
    };
    let counters = EventCounters::new();
    let solver = ThorupSolver::new(layout.graph(), layout.hierarchy()).with_counters(&counters);
    let pool = InstancePool::new(layout.hierarchy());
    let mut internal: Vec<Dist> = Vec::with_capacity(graph.n());
    let mut out: Vec<Dist> = Vec::with_capacity(graph.n());
    {
        let inst = pool.acquire();
        solver.solve_into(&inst, layout.to_internal(sources[0])); // warm-up
    }
    counters.reset();
    let t0 = Instant::now();
    for _ in 0..iterations {
        for &s in sources {
            let inst = pool.acquire();
            solver.solve_into(&inst, layout.to_internal(s));
            inst.copy_distances_into(&mut internal);
            layout.scatter_into(&internal, &mut out);
            std::hint::black_box(out[s as usize]);
        }
    }
    LayoutSample {
        engine: "thorup",
        layout: kind.short_name(),
        queries: sources.len() * iterations,
        wall_secs: t0.elapsed().as_secs_f64(),
        permute_secs,
        counters: counters.snapshot(),
    }
}

/// Thorup on the compact `u32`-cell instance (`thorup-u32`), same
/// layouts as the wide `thorup` rows. Returns `None` when the checked
/// narrowing refuses the graph — the caller clears `compact_ok`, same as
/// the compact Δ kernel.
fn measure_thorup_compact(
    kind: LayoutKind,
    graph: &Arc<CsrGraph>,
    ch: &Arc<mmt_ch::ComponentHierarchy>,
    sources: &[VertexId],
    iterations: usize,
) -> Option<LayoutSample> {
    let t0 = Instant::now();
    let layout = GraphLayout::build(kind, Arc::clone(graph), Arc::clone(ch))
        .expect("workload graph and hierarchy sizes agree");
    let permute_secs = if matches!(kind, LayoutKind::Natural) {
        0.0
    } else {
        t0.elapsed().as_secs_f64()
    };
    let inst = CompactThorupInstance::try_new(layout.hierarchy(), layout.graph()).ok()?;
    let counters = EventCounters::new();
    let solver = ThorupSolver::new(layout.graph(), layout.hierarchy()).with_counters(&counters);
    let mut internal: Vec<Dist> = Vec::with_capacity(graph.n());
    let mut out: Vec<Dist> = Vec::with_capacity(graph.n());
    solver.solve_into(&inst, layout.to_internal(sources[0])); // warm-up
    counters.reset();
    let t0 = Instant::now();
    for _ in 0..iterations {
        for &s in sources {
            inst.reset(layout.hierarchy());
            solver.solve_into(&inst, layout.to_internal(s));
            inst.copy_distances_into(&mut internal);
            layout.scatter_into(&internal, &mut out);
            std::hint::black_box(out[s as usize]);
        }
    }
    Some(LayoutSample {
        engine: "thorup-u32",
        layout: kind.short_name(),
        queries: sources.len() * iterations,
        wall_secs: t0.elapsed().as_secs_f64(),
        permute_secs,
        counters: counters.snapshot(),
    })
}

impl LayoutReport {
    /// Renders the artifact as pretty-stable JSON (two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", FORMAT_VERSION));
        out.push_str(&format!("  \"smoke\": {},\n", self.options.smoke));
        out.push_str(&format!("  \"scale\": {},\n", self.options.scale));
        out.push_str(&format!("  \"iterations\": {},\n", self.options.iterations));
        out.push_str(&format!(
            "  \"sources_per_workload\": {},\n",
            self.options.sources
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"host_logical_cores\": {},\n",
            self.host_logical_cores
        ));
        out.push_str(&format!("  \"pin_policy\": \"{}\",\n", self.pin_policy));
        out.push_str(&format!("  \"numa_nodes\": {},\n", self.numa_nodes));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json::escape(&w.name)));
            out.push_str(&format!("      \"n\": {},\n", w.n));
            out.push_str(&format!("      \"m\": {},\n", w.m));
            out.push_str(&format!("      \"delta\": {},\n", w.delta));
            out.push_str(&format!("      \"compact_ok\": {},\n", w.compact_ok));
            out.push_str("      \"samples\": [\n");
            for (si, s) in w.samples.iter().enumerate() {
                out.push_str("        {");
                out.push_str(&format!("\"engine\": \"{}\", ", json::escape(s.engine)));
                out.push_str(&format!("\"layout\": \"{}\", ", json::escape(s.layout)));
                out.push_str(&format!("\"queries\": {}, ", s.queries));
                out.push_str(&format!("\"wall_secs\": {}, ", s.wall_secs));
                out.push_str(&format!("\"permute_secs\": {}, ", s.permute_secs));
                out.push_str(&format!(
                    "\"relaxations_per_sec\": {}, ",
                    s.relaxations_per_sec()
                ));
                out.push_str(&format!(
                    "\"counters\": {}}}{}\n",
                    counters_json(&s.counters),
                    if si + 1 < w.samples.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses `text` and validates it against the checked-in layout schema.
pub fn check_artifact(text: &str) -> Result<Json, String> {
    let schema = json::parse(SCHEMA_TEXT).map_err(|e| format!("schema is invalid JSON: {e}"))?;
    let value = json::parse(text).map_err(|e| format!("artifact does not parse: {e}"))?;
    json::validate(&value, &schema).map_err(|e| format!("artifact violates schema: {e}"))?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cap_the_weight_exponent_for_narrowing() {
        let specs = layout_specs(16);
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.seed == 0x2007 && s.log_c == 10));
        assert_eq!(layout_specs(8)[0].log_c, 8);
    }

    #[test]
    fn smoke_run_covers_the_grid_and_validates() {
        let report = run(LayoutOptions {
            scale: 6,
            iterations: 1,
            sources: 2,
            smoke: true,
        });
        assert_eq!(report.workloads.len(), 4);
        for w in &report.workloads {
            assert!(w.compact_ok, "small smoke graphs must narrow");
            // 4 layouts x (u64 + u64-ra + u32 + rho-u64 + rho-part)
            // + (thorup + thorup-u32) on natural + chdfs.
            assert_eq!(w.samples.len(), 24);
            for s in &w.samples {
                assert!(s.wall_secs > 0.0, "{} {}", s.engine, s.layout);
                assert!(s.counters.relaxations > 0);
                assert!(s.counters.arcs_scanned > 0);
            }
            // Arc scans are layout-invariant per kernel: the permutation
            // moves reads around, it cannot change their number.
            for engine in ["delta-u64", "delta-u64-ra", "delta-u32"] {
                // (rho rows are excluded: ρ re-scans a frontier vertex
                // per extraction, and extraction grouping is
                // layout-sensitive.)
                let arcs: Vec<u64> = w
                    .samples
                    .iter()
                    .filter(|s| s.engine == engine)
                    .map(|s| s.counters.arcs_scanned)
                    .collect();
                assert!(arcs.windows(2).all(|p| p[0] == p[1]), "{engine}: {arcs:?}");
            }
            let natural = w
                .samples
                .iter()
                .find(|s| s.engine == "delta-u64" && s.layout == "natural")
                .unwrap();
            assert_eq!(natural.permute_secs, 0.0);
            // The partitioned and plain ρ rows walk identical graphs and
            // the u32 Thorup rows mirror the wide ones.
            for (eng, want) in [("rho-u64", 4), ("rho-part", 4), ("thorup-u32", 2)] {
                let rows = w.samples.iter().filter(|s| s.engine == eng).count();
                assert_eq!(rows, want, "{eng}");
            }
        }
        let text = report.to_json();
        let value = check_artifact(&text).expect("artifact must satisfy the schema");
        assert_eq!(
            value.get("version").and_then(Json::as_num),
            Some(FORMAT_VERSION as f64)
        );
    }

    #[test]
    fn malformed_layout_artifacts_fail_the_check() {
        assert!(check_artifact("{\"version\": 1}").is_err());
        assert!(check_artifact("not json").is_err());
    }
}
