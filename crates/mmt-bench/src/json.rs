//! A minimal JSON value model, parser, and schema checker.
//!
//! The bench harness emits machine-readable JSON artifacts and CI must be
//! able to assert they parse and match the checked-in schema — without
//! pulling a JSON dependency into the workspace. This module implements
//! just enough of JSON (RFC 8259 values, no `\u` surrogate pairs beyond
//! the BMP) and just enough of JSON Schema (`type`, `required`,
//! `properties`, `items`, `minimum`, `minItems`) for that job. The schema
//! documents themselves are parsed by the same parser.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse or validation error with a human-oriented location.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError(format!(
            "expected '{}' at byte {}",
            ch as char, *pos
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(JsonError("unexpected end of input".into())),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| JsonError(format!("invalid number at byte {start}")))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError(format!("invalid number {text:?} at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(JsonError("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b
                    .get(*pos)
                    .ok_or_else(|| JsonError("unterminated escape".into()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError(format!("bad \\u escape {hex:?}")))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError(format!("invalid codepoint {code}")))?,
                        );
                    }
                    other => {
                        return Err(JsonError(format!("bad escape '\\{}'", other as char)));
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (JSON strings are UTF-8 here).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| JsonError("invalid UTF-8 in string".into()))?;
                let ch = rest.chars().next().expect("non-empty by construction");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError(format!("expected ',' or ']' at byte {}", *pos))),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(JsonError(format!("expected ',' or '}}' at byte {}", *pos))),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validates `value` against `schema` (a parsed JSON Schema subset:
/// `type`, `required`, `properties`, `items`, `minimum`, `minItems`).
/// Returns the first violation with a JSON-pointer-ish path.
pub fn validate(value: &Json, schema: &Json) -> Result<(), JsonError> {
    validate_at(value, schema, "$")
}

fn validate_at(value: &Json, schema: &Json, path: &str) -> Result<(), JsonError> {
    if let Some(ty) = schema.get("type").and_then(Json::as_str) {
        let matches = match ty {
            "object" => matches!(value, Json::Obj(_)),
            "array" => matches!(value, Json::Arr(_)),
            "string" => matches!(value, Json::Str(_)),
            "number" => matches!(value, Json::Num(_)),
            "integer" => matches!(value, Json::Num(x) if x.fract() == 0.0),
            "boolean" => matches!(value, Json::Bool(_)),
            "null" => matches!(value, Json::Null),
            other => return Err(JsonError(format!("unsupported schema type {other:?}"))),
        };
        if !matches {
            return Err(JsonError(format!(
                "{path}: expected {ty}, found {}",
                value.type_name()
            )));
        }
    }
    if let Some(min) = schema.get("minimum").and_then(Json::as_num) {
        if let Json::Num(x) = value {
            if *x < min {
                return Err(JsonError(format!("{path}: {x} below minimum {min}")));
            }
        }
    }
    if let Some(required) = schema.get("required").and_then(Json::as_arr) {
        for key in required {
            let key = key
                .as_str()
                .ok_or_else(|| JsonError(format!("{path}: non-string required entry")))?;
            if value.get(key).is_none() {
                return Err(JsonError(format!("{path}: missing required key {key:?}")));
            }
        }
    }
    if let (Some(props), Json::Obj(members)) = (schema.get("properties"), value) {
        let props: BTreeMap<&str, &Json> = match props {
            Json::Obj(entries) => entries.iter().map(|(k, v)| (k.as_str(), v)).collect(),
            _ => return Err(JsonError(format!("{path}: properties must be an object"))),
        };
        for (key, member) in members {
            if let Some(sub) = props.get(key.as_str()) {
                validate_at(member, sub, &format!("{path}.{key}"))?;
            }
        }
    }
    if let (Some(items), Json::Arr(elements)) = (schema.get("items"), value) {
        if let Some(min_items) = schema.get("minItems").and_then(Json::as_num) {
            if (elements.len() as f64) < min_items {
                return Err(JsonError(format!(
                    "{path}: {} items below minItems {min_items}",
                    elements.len()
                )));
            }
        }
        for (i, el) in elements.iter().enumerate() {
            validate_at(el, items, &format!("{path}[{i}]"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            parse(r#""a\n\"b\u0041""#).unwrap(),
            Json::Str("a\n\"bA".into())
        );
        let v = parse(r#"{"k": [1, {"x": false}], "e": []}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("e").unwrap(), &Json::Arr(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\nwith \"quotes\" and \\slashes\\ \t end";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn validation_accepts_and_pinpoints() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["name", "runs"],
                "properties": {
                    "name": {"type": "string"},
                    "runs": {
                        "type": "array",
                        "minItems": 1,
                        "items": {
                            "type": "object",
                            "required": ["secs"],
                            "properties": {"secs": {"type": "number", "minimum": 0}}
                        }
                    }
                }
            }"#,
        )
        .unwrap();
        let good = parse(r#"{"name": "x", "runs": [{"secs": 0.5}]}"#).unwrap();
        validate(&good, &schema).unwrap();
        let missing = parse(r#"{"name": "x"}"#).unwrap();
        assert!(validate(&missing, &schema).unwrap_err().0.contains("runs"));
        let negative = parse(r#"{"name": "x", "runs": [{"secs": -1}]}"#).unwrap();
        let err = validate(&negative, &schema).unwrap_err();
        assert!(err.0.contains("$.runs[0].secs"), "{err}");
        let empty = parse(r#"{"name": "x", "runs": []}"#).unwrap();
        assert!(validate(&empty, &schema)
            .unwrap_err()
            .0
            .contains("minItems"));
    }

    #[test]
    fn integer_type_distinguishes_fractions() {
        let schema = parse(r#"{"type": "integer"}"#).unwrap();
        validate(&Json::Num(3.0), &schema).unwrap();
        assert!(validate(&Json::Num(3.5), &schema).is_err());
    }
}
