//! The serving-layer SLO grid behind `bench_service`.
//!
//! `bench_hotpath` measures solver kernels; this harness measures the
//! *query plane* around them: a [`QueryService`] under a submission
//! backlog, once with the coalescing scheduler on (the production
//! default — zero-budget, so batches form exactly when a backlog exists)
//! and once with it off. Each mode reports throughput
//! (served queries per second of wall time) and the latency and
//! queue-wait quantiles exported by the service's log2 histograms.
//!
//! Quantiles inherit the histograms' bucket-bound error: each reported
//! percentile is the bucket upper bound, so against the exact value `q`
//! it holds that `q <= reported <= 2*q - 1`. The diff gate accounts for
//! that by comparing like against like (both sides bucketed) and adding
//! an absolute floor beneath which queue-wait swings are ignored.

use crate::json::{self, Json};
use mmt_ch::ComponentHierarchy;
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::VertexId;
use mmt_platform::QuantileSummary;
use mmt_thorup::{GraphRegistry, QueryService};
use std::sync::Arc;
use std::time::Instant;

/// The checked-in schema `BENCH_service.json` must validate against.
pub const SCHEMA_TEXT: &str = include_str!("../schema/BENCH_service.schema.json");

/// Format version stamped into the artifact. Version 2 added the
/// `threads` and `host_logical_cores` header fields so 1-core-container
/// numbers are self-describing. Version 3 added the `pin_policy` and
/// `numa_nodes` topology header shared by all four artifacts (the
/// service's shard workers honour `MMT_PIN`, so the header records the
/// policy they actually started under).
pub const FORMAT_VERSION: u64 = 3;

/// Queue-wait p95 swings below this many microseconds are never a
/// regression: at smoke scales the whole backlog drains in a few
/// milliseconds and bucket-bound noise dominates.
pub const WAIT_FLOOR_US: u64 = 20_000;

/// Run shape: scale, worker count, backlog size, repetitions.
#[derive(Debug, Clone, Copy)]
pub struct ServiceOptions {
    /// log2 of the workload's vertex count.
    pub scale: u32,
    /// Workers per service (one shard).
    pub workers: usize,
    /// Queries submitted per round — all at once, so the queue holds a
    /// real backlog and zero-budget coalescing has something to gather.
    pub queries: usize,
    /// Submission rounds per mode (each round drains fully).
    pub rounds: usize,
    /// True for the CI smoke shape.
    pub smoke: bool,
}

impl ServiceOptions {
    /// The CI smoke shape: tiny scale, every code path exercised.
    pub fn smoke() -> Self {
        Self {
            scale: 8,
            workers: 2,
            queries: 48,
            rounds: 2,
            smoke: true,
        }
    }

    /// The default measurement shape (honours `MMT_SCALE` / `MMT_RUNS`).
    pub fn full() -> Self {
        Self {
            scale: crate::scale_from_env(13),
            workers: 4,
            queries: 192,
            rounds: crate::runs_from_env().clamp(2, 6),
            smoke: false,
        }
    }
}

/// One mode's measurement: the service under backlog with coalescing
/// either on (production default) or off.
#[derive(Debug, Clone)]
pub struct ModeSample {
    /// `"coalesced"` or `"solo"`.
    pub mode: &'static str,
    /// Queries served across all rounds.
    pub queries: usize,
    /// Wall time for all rounds (submission through last answer).
    pub wall_secs: f64,
    /// Multi-member batch formations (0 in solo mode by construction).
    pub coalesced_batches: u64,
    /// Queries served through those formations.
    pub coalesced_queries: u64,
    /// End-to-end latency quantiles, microseconds (bucket upper bounds).
    pub latency_us: QuantileSummary,
    /// Queue-wait quantiles, microseconds (bucket upper bounds).
    pub queue_wait_us: QuantileSummary,
}

impl ModeSample {
    /// Served queries per second of wall time (0 when nothing measured).
    pub fn served_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.queries as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The whole artifact.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Run shape.
    pub options: ServiceOptions,
    /// Workload name (`Rand-UWD-2^13-2^10`, ...).
    pub workload: String,
    /// Vertices.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// Thread budget the measurement ran under.
    pub threads: usize,
    /// Logical cores on the measuring host.
    pub host_logical_cores: usize,
    /// The `MMT_PIN` policy the process resolved at startup — the same
    /// policy the measured services' shard workers were pinned under.
    pub pin_policy: &'static str,
    /// NUMA nodes the host exposes (1 on flat or opaque hosts).
    pub numa_nodes: usize,
    /// Peak RSS at the end of the run (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Both modes, coalesced first.
    pub modes: Vec<ModeSample>,
}

/// The fixed-seed service workload at `scale`: the `bench_hotpath` Random
/// family with the weight exponent capped like the layout grid's.
pub fn service_spec(scale: u32) -> WorkloadSpec {
    WorkloadSpec {
        class: GraphClass::Random,
        dist: WeightDist::Uniform,
        log_n: scale,
        log_c: scale.min(10),
        seed: 0x2007,
    }
}

/// Runs both modes on the shared workload.
pub fn run(opts: ServiceOptions) -> ServiceReport {
    let w = crate::Workload::generate(service_spec(opts.scale));
    // Recycle a deterministic source pool sized to one round.
    let sources: Vec<VertexId> = w
        .sources(opts.queries.min(64))
        .into_iter()
        .cycle()
        .take(opts.queries)
        .collect();
    let workload_name = w.spec.name();
    let graph = Arc::new(w.graph);
    let ch = Arc::new(mmt_ch::build_parallel(&w.edges));
    let modes = vec![
        measure_mode("coalesced", true, &graph, &ch, &sources, opts),
        measure_mode("solo", false, &graph, &ch, &sources, opts),
    ];
    let (pin_policy, numa_nodes) = crate::topology_header();
    ServiceReport {
        options: opts,
        workload: workload_name,
        n: graph.n(),
        m: graph.m(),
        threads: rayon::current_num_threads(),
        host_logical_cores: mmt_platform::available_threads(),
        pin_policy,
        numa_nodes,
        peak_rss_bytes: mmt_platform::mem::peak_rss_bytes().unwrap_or(0),
        modes,
    }
}

fn measure_mode(
    mode: &'static str,
    coalesce: bool,
    graph: &Arc<mmt_graph::CsrGraph>,
    ch: &Arc<ComponentHierarchy>,
    sources: &[VertexId],
    opts: ServiceOptions,
) -> ModeSample {
    let mut registry = GraphRegistry::new();
    registry
        .register("bench", graph, Arc::clone(ch))
        .expect("workload graph and hierarchy sizes agree");
    let mut builder = QueryService::builder()
        .workers(opts.workers)
        .queue_capacity(sources.len().max(16));
    if !coalesce {
        builder = builder.no_coalescing();
    }
    let service = builder
        .build_registry(registry)
        .expect("a registered workload is servable");
    // Warm-up round outside the timed region: first-touch of the pooled
    // instances and distance buffers.
    for h in sources
        .iter()
        .take(opts.workers.max(4))
        .map(|&s| service.submit(s).expect("in-range source"))
        .collect::<Vec<_>>()
    {
        h.wait().expect("no deadline, no faults");
    }
    let warmup_served = service.metrics().served_full();
    let t0 = Instant::now();
    for _ in 0..opts.rounds {
        // The whole round is submitted before the first wait: the queue
        // holds a genuine backlog, which is the regime coalescing exists
        // for (and the hard case for the solo scheduler).
        let handles: Vec<_> = sources
            .iter()
            .map(|&s| service.submit(s).expect("queue sized to the round"))
            .collect();
        for h in handles {
            std::hint::black_box(h.wait().expect("no deadline, no faults"));
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let snap = service.metrics().snapshot();
    ModeSample {
        mode,
        queries: (snap.served_full - warmup_served) as usize,
        wall_secs,
        coalesced_batches: snap.coalesced_batches,
        coalesced_queries: snap.coalesced_queries,
        latency_us: snap.latency_quantiles(),
        queue_wait_us: snap.queue_wait_quantiles(),
    }
}

impl ServiceReport {
    /// Renders the artifact as pretty-stable JSON (two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", FORMAT_VERSION));
        out.push_str(&format!("  \"smoke\": {},\n", self.options.smoke));
        out.push_str(&format!("  \"scale\": {},\n", self.options.scale));
        out.push_str(&format!("  \"workers\": {},\n", self.options.workers));
        out.push_str(&format!(
            "  \"queries_per_round\": {},\n",
            self.options.queries
        ));
        out.push_str(&format!("  \"rounds\": {},\n", self.options.rounds));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"host_logical_cores\": {},\n",
            self.host_logical_cores
        ));
        out.push_str(&format!("  \"pin_policy\": \"{}\",\n", self.pin_policy));
        out.push_str(&format!("  \"numa_nodes\": {},\n", self.numa_nodes));
        out.push_str(&format!(
            "  \"workload\": {{\"name\": \"{}\", \"n\": {}, \"m\": {}}},\n",
            json::escape(&self.workload),
            self.n,
            self.m
        ));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"modes\": [\n");
        for (mi, s) in self.modes.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"mode\": \"{}\",\n", json::escape(s.mode)));
            out.push_str(&format!("      \"queries\": {},\n", s.queries));
            out.push_str(&format!("      \"wall_secs\": {},\n", s.wall_secs));
            out.push_str(&format!(
                "      \"served_per_sec\": {},\n",
                s.served_per_sec()
            ));
            out.push_str(&format!(
                "      \"coalesced_batches\": {},\n",
                s.coalesced_batches
            ));
            out.push_str(&format!(
                "      \"coalesced_queries\": {},\n",
                s.coalesced_queries
            ));
            out.push_str(&format!(
                "      \"latency_us\": {},\n",
                s.latency_us.to_json()
            ));
            out.push_str(&format!(
                "      \"queue_wait_us\": {}\n",
                s.queue_wait_us.to_json()
            ));
            out.push_str(&format!(
                "    }}{}\n",
                if mi + 1 < self.modes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parses `text` and validates it against the checked-in service schema,
/// plus the structural invariant the schema subset cannot express: both
/// modes present, coalesced first.
pub fn check_artifact(text: &str) -> Result<Json, String> {
    let schema = json::parse(SCHEMA_TEXT).map_err(|e| format!("schema is invalid JSON: {e}"))?;
    let value = json::parse(text).map_err(|e| format!("artifact does not parse: {e}"))?;
    json::validate(&value, &schema).map_err(|e| format!("artifact violates schema: {e}"))?;
    let modes: Vec<&str> = value
        .get("modes")
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(|m| m.get("mode").and_then(Json::as_str))
                .collect()
        })
        .unwrap_or_default();
    if modes != ["coalesced", "solo"] {
        return Err(format!(
            "artifact must carry modes [\"coalesced\", \"solo\"], got {modes:?}"
        ));
    }
    Ok(value)
}

/// One mode's throughput and tail-wait comparison.
#[derive(Debug, Clone)]
pub struct ServiceDiffLine {
    /// `"coalesced"` or `"solo"`.
    pub mode: String,
    /// Baseline served queries per second.
    pub baseline_served: f64,
    /// Current served queries per second.
    pub current_served: f64,
    /// Baseline queue-wait p95, microseconds.
    pub baseline_p95_wait: u64,
    /// Current queue-wait p95, microseconds.
    pub current_p95_wait: u64,
}

impl ServiceDiffLine {
    /// Throughput ratio current/baseline (inf when baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.baseline_served > 0.0 {
            self.current_served / self.baseline_served
        } else {
            f64::INFINITY
        }
    }
}

fn mode_index(artifact: &Json) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    if let Some(modes) = artifact.get("modes").and_then(Json::as_arr) {
        for m in modes {
            let (Some(mode), Some(served)) = (
                m.get("mode").and_then(Json::as_str),
                m.get("served_per_sec").and_then(Json::as_num),
            ) else {
                continue;
            };
            let p95 = m
                .get("queue_wait_us")
                .and_then(|q| q.get("p95"))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64;
            out.push((mode.to_string(), served, p95));
        }
    }
    out
}

/// Compares two artifacts mode for mode. Fails when the current run
/// serves more than `tolerance`x fewer queries per second than the
/// baseline anywhere, or when a queue-wait p95 grows past `tolerance`x
/// the baseline *and* the [`WAIT_FLOOR_US`] absolute floor.
pub fn diff_artifacts(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) -> Result<Vec<ServiceDiffLine>, String> {
    assert!(tolerance >= 1.0);
    let base = mode_index(baseline);
    let cur = mode_index(current);
    let mut lines = Vec::new();
    for (mode, baseline_served, baseline_p95_wait) in &base {
        let Some((_, current_served, current_p95_wait)) = cur.iter().find(|(m, _, _)| m == mode)
        else {
            continue;
        };
        lines.push(ServiceDiffLine {
            mode: mode.clone(),
            baseline_served: *baseline_served,
            current_served: *current_served,
            baseline_p95_wait: *baseline_p95_wait,
            current_p95_wait: *current_p95_wait,
        });
    }
    if lines.is_empty() {
        return Err("artifacts share no modes to compare".into());
    }
    for l in &lines {
        if l.baseline_served > 0.0 && l.current_served * tolerance < l.baseline_served {
            return Err(format!(
                "served/sec regression: mode {} at {:.0}/s vs baseline {:.0}/s ({:.2}x, tolerance {}x)",
                l.mode,
                l.current_served,
                l.baseline_served,
                l.ratio(),
                tolerance
            ));
        }
        let wait_ceiling = (l.baseline_p95_wait as f64 * tolerance) as u64 + WAIT_FLOOR_US;
        if l.current_p95_wait > wait_ceiling {
            return Err(format!(
                "queue-wait p95 regression: mode {} at {}us vs baseline {}us (ceiling {}us)",
                l.mode, l.current_p95_wait, l.baseline_p95_wait, wait_ceiling
            ));
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_both_modes_and_validates() {
        let report = run(ServiceOptions {
            scale: 7,
            workers: 2,
            queries: 32,
            rounds: 2,
            smoke: true,
        });
        assert_eq!(report.modes.len(), 2);
        let coalesced = &report.modes[0];
        let solo = &report.modes[1];
        assert_eq!(coalesced.mode, "coalesced");
        assert_eq!(solo.mode, "solo");
        for s in &report.modes {
            assert_eq!(s.queries, 64, "two rounds of 32, warm-up excluded");
            assert!(s.wall_secs > 0.0);
            assert_eq!(s.latency_us.total, s.queries as u64 + 4, "warm-up included");
            assert!(s.latency_us.p50 <= s.latency_us.p95);
            assert!(s.latency_us.p95 <= s.latency_us.p99);
        }
        // The backlog regime must actually exercise the coalesced path —
        // 32 queued queries behind 2 workers cannot all arrive singleton.
        assert!(coalesced.coalesced_batches >= 1);
        assert!(coalesced.coalesced_queries >= 2 * coalesced.coalesced_batches);
        assert_eq!(solo.coalesced_batches, 0);
        assert_eq!(solo.coalesced_queries, 0);
        let text = report.to_json();
        let value = check_artifact(&text).expect("artifact must satisfy the schema");
        assert_eq!(
            value.get("version").and_then(Json::as_num),
            Some(FORMAT_VERSION as f64)
        );
    }

    #[test]
    fn malformed_service_artifacts_fail_the_check() {
        assert!(check_artifact("{\"version\": 1}").is_err());
        assert!(check_artifact("not json").is_err());
    }

    fn artifact(served: f64, p95_wait: u64) -> Json {
        let report = format!(
            concat!(
                "{{\"version\": 3, \"smoke\": true, \"scale\": 7, \"workers\": 2,\n",
                " \"queries_per_round\": 32, \"rounds\": 2,\n",
                " \"threads\": 1, \"host_logical_cores\": 1,\n",
                " \"pin_policy\": \"none\", \"numa_nodes\": 1,\n",
                " \"workload\": {{\"name\": \"w\", \"n\": 128, \"m\": 512}},\n",
                " \"peak_rss_bytes\": 0,\n",
                " \"modes\": [\n",
                "  {{\"mode\": \"coalesced\", \"queries\": 64, \"wall_secs\": 0.1,\n",
                "   \"served_per_sec\": {served}, \"coalesced_batches\": 3, \"coalesced_queries\": 9,\n",
                "   \"latency_us\": {q}, \"queue_wait_us\": {wait}}},\n",
                "  {{\"mode\": \"solo\", \"queries\": 64, \"wall_secs\": 0.1,\n",
                "   \"served_per_sec\": {served}, \"coalesced_batches\": 0, \"coalesced_queries\": 0,\n",
                "   \"latency_us\": {q}, \"queue_wait_us\": {wait}}}\n",
                " ]}}\n"
            ),
            served = served,
            q = "{\"total\":68,\"p50\":255,\"p95\":511,\"p99\":511,\"mean\":200.0,\"max\":400}",
            wait = format!(
                "{{\"total\":68,\"p50\":{p},\"p95\":{p95_wait},\"p99\":{p95_wait},\"mean\":10.0,\"max\":{p95_wait}}}",
                p = p95_wait / 2
            ),
        );
        check_artifact(&report).expect("synthetic artifact is valid")
    }

    #[test]
    fn diff_passes_like_against_like_and_catches_collapses() {
        let base = artifact(1000.0, 40_000);
        let same = artifact(1000.0, 40_000);
        let lines = diff_artifacts(&base, &same, 2.0).unwrap();
        assert_eq!(lines.len(), 2);
        // A >2x throughput collapse fails.
        let slow = artifact(400.0, 40_000);
        let err = diff_artifacts(&base, &slow, 2.0).unwrap_err();
        assert!(err.contains("served/sec regression"), "{err}");
        // A tail-wait explosion past 2x + the absolute floor fails.
        let laggy = artifact(1000.0, 140_000);
        let err = diff_artifacts(&base, &laggy, 2.0).unwrap_err();
        assert!(err.contains("queue-wait p95 regression"), "{err}");
        // Below the absolute floor, wait swings are ignored even when the
        // ratio is huge: 1us -> 15000us is noise at smoke scale.
        let tiny_base = artifact(1000.0, 1);
        let noisy = artifact(1000.0, 15_000);
        assert!(diff_artifacts(&tiny_base, &noisy, 2.0).is_ok());
    }
}
