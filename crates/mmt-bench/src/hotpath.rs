//! The reproducible hot-path baseline behind `bench_hotpath`.
//!
//! Four fixed-seed workloads (Rand/RMAT × UWD/PWD) are run through the
//! SSSP hot paths this repo optimises — the seed's collect()-based
//! Δ-stepping, the pre-split allocation-free Δ-stepping, parallel Thorup
//! over a shared CH, and the pooled batch engine — and the result is one
//! machine-readable `BENCH_hotpath.json` (wall time, relaxations/sec,
//! peak RSS, and — with `--features count-alloc` — allocations per query)
//! that validates against the checked-in schema
//! (`schema/BENCH_hotpath.schema.json`). CI runs the `--smoke` shape of
//! this on every push, so the artifact format can never silently rot.

use crate::json::{self, Json};
use mmt_baselines::{
    adaptive_delta, default_delta, delta_stepping_counted, delta_stepping_presplit,
    delta_stepping_reference_counted, DeltaConfig, DeltaScratch,
};
use mmt_graph::gen::{GraphClass, WeightDist, WorkloadSpec};
use mmt_graph::types::Weight;
use mmt_graph::{CsrArena, SplitCsr};
use mmt_platform::{CountersSnapshot, EventCounters};
use mmt_thorup::{
    BatchSolver, GraphRegistry, InstancePool, QueryRequest, QueryServiceBuilder, ShutdownMode,
    ThorupSolver,
};
use std::sync::Arc;
use std::time::Instant;

/// The checked-in schema `BENCH_hotpath.json` must validate against.
pub const SCHEMA_TEXT: &str = include_str!("../schema/BENCH_hotpath.schema.json");

/// Format version stamped into the artifact. Version 2 added the full
/// per-engine `counters` object (the [`CountersSnapshot`] fields, including
/// `arcs_scanned`), shared with `bench_layout`. Version 3 added the
/// `registry` grid: shared-arena resident bytes and serving throughput
/// with 1 vs 4 registered graphs, plus the duplicated-`SplitCsr` vs
/// offset-view arc-byte table per Δ count. Version 4 added the `threads`
/// and `host_logical_cores` header fields so 1-core-container numbers are
/// self-describing. Version 5 added the `pin_policy` and `numa_nodes`
/// topology header shared by all four artifacts.
pub const FORMAT_VERSION: u64 = 5;

/// Run shape: scale, repetitions, sources per workload.
#[derive(Debug, Clone, Copy)]
pub struct HotpathOptions {
    /// log2 of the vertex count per workload.
    pub scale: u32,
    /// Timed repetitions of the whole source sweep, per engine.
    pub iterations: usize,
    /// Query sources per workload.
    pub sources: usize,
    /// True for the CI smoke shape.
    pub smoke: bool,
}

impl HotpathOptions {
    /// The CI smoke shape: tiny scale, two iterations — seconds, not
    /// minutes, but every code path and every artifact field exercised.
    pub fn smoke() -> Self {
        Self {
            scale: 8,
            iterations: 2,
            sources: 3,
            smoke: true,
        }
    }

    /// The default measurement shape (honours `MMT_SCALE` / `MMT_RUNS`).
    pub fn full() -> Self {
        Self {
            scale: crate::scale_from_env(12),
            iterations: crate::runs_from_env(),
            sources: 4,
            smoke: false,
        }
    }
}

/// One engine's measurement on one workload.
#[derive(Debug, Clone)]
pub struct EngineSample {
    /// Engine name (matches the mmt-verify registry where applicable).
    pub name: &'static str,
    /// Queries answered inside `wall_secs`.
    pub queries: usize,
    /// Total wall time for all queries.
    pub wall_secs: f64,
    /// Edge relaxations performed (engine's own accounting; equals
    /// `counters.relaxations`).
    pub relaxations: u64,
    /// The full event-counter snapshot for the run (relaxations, bucket
    /// expansions, arcs scanned, ...): one counters story for every bench
    /// binary.
    pub counters: CountersSnapshot,
    /// Heap allocations per query (0 unless built with `count-alloc`).
    pub allocs_per_query: f64,
    /// Heap bytes allocated per query (0 unless built with `count-alloc`).
    pub alloc_bytes_per_query: f64,
}

impl EngineSample {
    /// Relaxations per second of wall time (0 when nothing was measured).
    pub fn relaxations_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.relaxations as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// One workload's measurements.
#[derive(Debug, Clone)]
pub struct WorkloadSamples {
    /// Workload name (`Rand-UWD-2^8-2^8`, ...).
    pub name: String,
    /// Vertices.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// The adaptive Δ chosen for the pre-split engines.
    pub adaptive_delta: u64,
    /// The classic `C / avg_degree` Δ, for comparison.
    pub default_delta: u64,
    /// Wall time to build the shared Component Hierarchy.
    pub ch_build_secs: f64,
    /// Per-engine measurements.
    pub engines: Vec<EngineSample>,
}

/// Arc-array bytes at one Δ count: what `count` duplicating [`SplitCsr`]
/// builds cost versus `count` offset views over one shared [`CsrArena`].
/// Both are measured from live structures, not computed.
#[derive(Debug, Clone)]
pub struct SplitBytesSample {
    /// Number of distinct Δ values split for.
    pub delta_count: usize,
    /// Heap bytes when every Δ duplicates the adjacency ([`SplitCsr`]).
    pub duplicated_bytes: usize,
    /// Heap bytes with one arena plus a `u32` light-prefix length per
    /// vertex per Δ ([`CsrArena::split`]).
    pub offset_view_bytes: usize,
}

/// One registry serving measurement: `graphs` tenants registered, queries
/// routed round-robin across them through the sharded `QueryService`.
#[derive(Debug, Clone)]
pub struct RegistryGridSample {
    /// Graphs registered (each with distinct content).
    pub graphs: usize,
    /// Registry-accounted resident bytes after registration (arena arc
    /// arrays + hierarchies, each stored exactly once).
    pub resident_bytes: usize,
    /// Queries answered inside `wall_secs`.
    pub queries: usize,
    /// Wall time for the whole query sweep.
    pub wall_secs: f64,
    /// Edge relaxations those queries perform (counted once per
    /// (graph, source) on the same solver configuration, deterministic).
    pub relaxations: u64,
}

impl RegistryGridSample {
    /// Relaxations per second of serving wall time.
    pub fn relaxations_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.relaxations as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The registry grid: the multi-tenant serving and shared-arena memory
/// story for one fixed workload.
#[derive(Debug, Clone)]
pub struct RegistrySamples {
    /// The workload the grid runs on (the first hot-path spec).
    pub workload: String,
    /// Shared arc-payload bytes of one arena over that workload.
    pub arena_arc_bytes: usize,
    /// Duplicated vs offset-view bytes at 1, 2, and 4 Δ values.
    pub splits: Vec<SplitBytesSample>,
    /// Serving throughput and resident bytes with 1 vs 4 tenants.
    pub grid: Vec<RegistryGridSample>,
}

/// The whole artifact.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Run shape.
    pub options: HotpathOptions,
    /// Thread budget the measurement ran under (the installed rayon
    /// budget — equal to `host_logical_cores` outside a forced pool).
    pub threads: usize,
    /// Logical cores on the measuring host.
    pub host_logical_cores: usize,
    /// The `MMT_PIN` policy the process resolved at startup.
    pub pin_policy: &'static str,
    /// NUMA nodes the host exposes (1 on flat or opaque hosts).
    pub numa_nodes: usize,
    /// True when built with the counting allocator.
    pub alloc_counting: bool,
    /// Peak RSS at the end of the run (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadSamples>,
    /// The multi-graph registry grid (resident bytes + relax/s, 1 vs 4
    /// graphs) and the per-Δ-count arc-byte table.
    pub registry: RegistrySamples,
}

/// True when the crate was built with the counting allocator.
pub fn alloc_counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

fn measure_allocs<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    #[cfg(feature = "count-alloc")]
    {
        crate::alloc_count::measure(f)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        (f(), 0, 0)
    }
}

/// The four fixed-seed hot-path workloads at `scale`: Rand/RMAT × UWD/PWD.
pub fn hotpath_specs(scale: u32) -> Vec<WorkloadSpec> {
    use GraphClass::{Random, Rmat};
    use WeightDist::{PolyLog, Uniform};
    [
        (Random, Uniform),
        (Random, PolyLog),
        (Rmat, Uniform),
        (Rmat, PolyLog),
    ]
    .into_iter()
    .map(|(class, dist)| WorkloadSpec {
        class,
        dist,
        log_n: scale,
        log_c: scale,
        // Fixed seed: the artifact is comparable run to run and machine to
        // machine (0x2007 — the paper's year).
        seed: 0x2007,
    })
    .collect()
}

/// Runs the whole measurement grid.
pub fn run(opts: HotpathOptions) -> HotpathReport {
    let workloads = hotpath_specs(opts.scale)
        .into_iter()
        .map(|spec| run_workload(spec, opts))
        .collect();
    let registry = run_registry(opts);
    let (pin_policy, numa_nodes) = crate::topology_header();
    HotpathReport {
        options: opts,
        threads: rayon::current_num_threads(),
        host_logical_cores: mmt_platform::available_threads(),
        pin_policy,
        numa_nodes,
        alloc_counting: alloc_counting_enabled(),
        peak_rss_bytes: mmt_platform::mem::peak_rss_bytes().unwrap_or(0),
        workloads,
        registry,
    }
}

/// Measures the registry grid on the first hot-path workload: the
/// duplicated-vs-offset-view arc-byte table at 1/2/4 Δ values, then
/// serving throughput and registry-resident bytes with 1 vs 4 registered
/// graphs (distinct content, same shape) behind the sharded
/// `QueryService`.
fn run_registry(opts: HotpathOptions) -> RegistrySamples {
    let spec = hotpath_specs(opts.scale).remove(0);
    let w = crate::Workload::generate(spec);
    let g = &w.graph;

    let arena = CsrArena::new(g);
    let base_delta = adaptive_delta(g).min(u32::MAX as u64).max(1) as Weight;
    let splits = [1usize, 2, 4]
        .iter()
        .map(|&count| {
            // Distinct Δ values: base, 2·base, ... — the byte cost of a
            // duplicating split does not depend on Δ, but building real
            // structures keeps this a measurement rather than arithmetic.
            let deltas: Vec<Weight> = (0..count)
                .map(|k| base_delta.saturating_mul(k as Weight + 1))
                .collect();
            let duplicated_bytes = deltas
                .iter()
                .map(|&d| SplitCsr::new(g, d).heap_bytes())
                .sum();
            let offset_view_bytes = arena.arc_bytes()
                + deltas
                    .iter()
                    .map(|&d| arena.split(d).view_bytes())
                    .sum::<usize>();
            SplitBytesSample {
                delta_count: count,
                duplicated_bytes,
                offset_view_bytes,
            }
        })
        .collect();

    let mut grid = Vec::new();
    for &count in &[1usize, 4] {
        let mut registry = GraphRegistry::new();
        let mut tenants = Vec::new();
        for i in 0..count {
            let mut spec_i = spec;
            spec_i.seed = spec.seed + 1 + i as u64;
            let wi = crate::Workload::generate(spec_i);
            let ch = Arc::new(mmt_ch::build_parallel(&wi.edges));
            let id = registry
                .register(format!("tenant-{i}"), &wi.graph, Arc::clone(&ch))
                .expect("registering a generated workload");
            tenants.push((id, wi, ch));
        }
        let resident_bytes = registry.resident_bytes();

        // Relaxation counts are deterministic per (graph, source) for a
        // fixed solver configuration; count them once outside the
        // service so the timed sweep below stays uninstrumented.
        let mut relaxations = 0u64;
        let mut schedule = Vec::new();
        for (id, wi, ch) in &tenants {
            let counters = EventCounters::new();
            let solver = ThorupSolver::new(&wi.graph, ch).with_counters(&counters);
            let pool = InstancePool::new(ch);
            let sources = wi.sources(opts.sources);
            for &s in &sources {
                let inst = pool.acquire();
                solver.solve_into(&inst, s);
            }
            relaxations += counters.snapshot().relaxations * opts.iterations as u64;
            schedule.push((*id, sources));
        }

        let service = QueryServiceBuilder::default()
            .workers(2)
            .build_registry(registry)
            .expect("service over a fresh registry");
        // Warm-up: one query per tenant so every shard's pools are hot.
        for (id, sources) in &schedule {
            service
                .submit(QueryRequest::on(*id, sources[0]))
                .expect("warm-up submit")
                .wait()
                .expect("warm-up answer");
        }
        let queries = count * opts.sources * opts.iterations;
        let t0 = Instant::now();
        for _ in 0..opts.iterations {
            let handles: Vec<_> = schedule
                .iter()
                .flat_map(|(id, sources)| {
                    sources.iter().map(|&s| {
                        service
                            .submit(QueryRequest::on(*id, s))
                            .expect("grid submit")
                    })
                })
                .collect();
            for h in handles {
                std::hint::black_box(h.wait().expect("grid answer"));
            }
        }
        let wall_secs = t0.elapsed().as_secs_f64();
        service.shutdown(ShutdownMode::Drain);

        grid.push(RegistryGridSample {
            graphs: count,
            resident_bytes,
            queries,
            wall_secs,
            relaxations,
        });
    }

    RegistrySamples {
        workload: spec.name(),
        arena_arc_bytes: arena.arc_bytes(),
        splits,
        grid,
    }
}

fn run_workload(spec: WorkloadSpec, opts: HotpathOptions) -> WorkloadSamples {
    let w = crate::Workload::generate(spec);
    let g = &w.graph;
    let sources = w.sources(opts.sources);
    let queries = sources.len() * opts.iterations;

    let ch_start = Instant::now();
    let ch = mmt_ch::build_parallel(&w.edges);
    let ch_build_secs = ch_start.elapsed().as_secs_f64();

    let mut engines = Vec::new();

    // Seed kernel: per-phase collect() + sort/dedup, fresh state per query.
    {
        let counters = EventCounters::new();
        let cfg = DeltaConfig::auto(g);
        let t0 = Instant::now();
        let ((), allocs, bytes) = measure_allocs(|| {
            for _ in 0..opts.iterations {
                for &s in &sources {
                    std::hint::black_box(delta_stepping_reference_counted(
                        g,
                        s,
                        cfg,
                        Some(&counters),
                    ));
                }
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        engines.push(finish_sample(
            "delta-reference",
            queries,
            wall,
            &counters,
            allocs,
            bytes,
        ));
    }

    // Auto-Δ on the plain CSR (the pre-PR default path, now pre-split
    // internally): the like-for-like midpoint between seed and presplit.
    {
        let counters = EventCounters::new();
        let cfg = DeltaConfig::auto(g);
        let t0 = Instant::now();
        let ((), allocs, bytes) = measure_allocs(|| {
            for _ in 0..opts.iterations {
                for &s in &sources {
                    std::hint::black_box(delta_stepping_counted(g, s, cfg, Some(&counters)));
                }
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        engines.push(finish_sample(
            "delta-stepping",
            queries,
            wall,
            &counters,
            allocs,
            bytes,
        ));
    }

    // The allocation-free hot path: pre-split CSR + reusable scratch +
    // adaptive Δ, both built once and reused across every query.
    {
        let counters = EventCounters::new();
        let delta = adaptive_delta(g).min(u32::MAX as u64) as Weight;
        let split = SplitCsr::new(g, delta);
        let mut scratch = DeltaScratch::new(&split);
        // Warm-up query so the steady state is what gets measured.
        delta_stepping_presplit(&split, sources[0], &mut scratch, None);
        let t0 = Instant::now();
        let ((), allocs, bytes) = measure_allocs(|| {
            for _ in 0..opts.iterations {
                for &s in &sources {
                    delta_stepping_presplit(&split, s, &mut scratch, Some(&counters));
                    std::hint::black_box(scratch.distance(s));
                }
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        engines.push(finish_sample(
            "delta-presplit",
            queries,
            wall,
            &counters,
            allocs,
            bytes,
        ));
    }

    // Parallel Thorup over the shared CH, instance reused across queries.
    {
        let counters = EventCounters::new();
        let solver = ThorupSolver::new(g, &ch).with_counters(&counters);
        let pool = InstancePool::new(&ch);
        {
            let inst = pool.acquire();
            solver.solve_into(&inst, sources[0]); // warm-up
        }
        let t0 = Instant::now();
        let ((), allocs, bytes) = measure_allocs(|| {
            for _ in 0..opts.iterations {
                for &s in &sources {
                    let inst = pool.acquire();
                    solver.solve_into(&inst, s);
                    std::hint::black_box(inst.dist_of(s));
                }
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        engines.push(finish_sample(
            "thorup", queries, wall, &counters, allocs, bytes,
        ));
    }

    // Pooled batch engine: all sources simultaneously, pools warm.
    {
        let counters = EventCounters::new();
        let solver = ThorupSolver::new(g, &ch).with_counters(&counters);
        let batch = BatchSolver::new(&solver);
        drop(batch.solve_batch(&sources)); // warm-up
        let t0 = Instant::now();
        let ((), allocs, bytes) = measure_allocs(|| {
            for _ in 0..opts.iterations {
                let rows = batch.solve_batch(&sources);
                std::hint::black_box(rows.len());
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        engines.push(finish_sample(
            "thorup-batch",
            queries,
            wall,
            &counters,
            allocs,
            bytes,
        ));
    }

    WorkloadSamples {
        name: spec.name(),
        n: g.n(),
        m: g.m(),
        adaptive_delta: adaptive_delta(g),
        default_delta: default_delta(g),
        ch_build_secs,
        engines,
    }
}

fn finish_sample(
    name: &'static str,
    queries: usize,
    wall_secs: f64,
    counters: &EventCounters,
    allocs: u64,
    bytes: u64,
) -> EngineSample {
    let snap = counters.snapshot();
    EngineSample {
        name,
        queries,
        wall_secs,
        relaxations: snap.relaxations,
        counters: snap,
        allocs_per_query: allocs as f64 / queries.max(1) as f64,
        alloc_bytes_per_query: bytes as f64 / queries.max(1) as f64,
    }
}

/// Renders a [`CountersSnapshot`] as a JSON object — the shared counters
/// encoding for both `bench_hotpath` and `bench_layout` artifacts.
pub fn counters_json(c: &CountersSnapshot) -> String {
    format!(
        "{{\"relaxations\": {}, \"improvements\": {}, \"settled\": {}, \
         \"parallel_loop_setups\": {}, \"serial_loops\": {}, \
         \"mind_propagation_hops\": {}, \"bucket_expansions\": {}, \
         \"arcs_scanned\": {}}}",
        c.relaxations,
        c.improvements,
        c.settled,
        c.parallel_loop_setups,
        c.serial_loops,
        c.mind_propagation_hops,
        c.bucket_expansions,
        c.arcs_scanned
    )
}

impl HotpathReport {
    /// Renders the artifact as pretty-stable JSON (two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", FORMAT_VERSION));
        out.push_str(&format!("  \"smoke\": {},\n", self.options.smoke));
        out.push_str(&format!("  \"scale\": {},\n", self.options.scale));
        out.push_str(&format!("  \"iterations\": {},\n", self.options.iterations));
        out.push_str(&format!(
            "  \"sources_per_workload\": {},\n",
            self.options.sources
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"host_logical_cores\": {},\n",
            self.host_logical_cores
        ));
        out.push_str(&format!("  \"pin_policy\": \"{}\",\n", self.pin_policy));
        out.push_str(&format!("  \"numa_nodes\": {},\n", self.numa_nodes));
        out.push_str(&format!("  \"alloc_counting\": {},\n", self.alloc_counting));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json::escape(&w.name)));
            out.push_str(&format!("      \"n\": {},\n", w.n));
            out.push_str(&format!("      \"m\": {},\n", w.m));
            out.push_str(&format!(
                "      \"adaptive_delta\": {},\n",
                w.adaptive_delta
            ));
            out.push_str(&format!("      \"default_delta\": {},\n", w.default_delta));
            out.push_str(&format!("      \"ch_build_secs\": {},\n", w.ch_build_secs));
            out.push_str("      \"engines\": [\n");
            for (ei, e) in w.engines.iter().enumerate() {
                out.push_str("        {");
                out.push_str(&format!("\"name\": \"{}\", ", json::escape(e.name)));
                out.push_str(&format!("\"queries\": {}, ", e.queries));
                out.push_str(&format!("\"wall_secs\": {}, ", e.wall_secs));
                out.push_str(&format!("\"relaxations\": {}, ", e.relaxations));
                out.push_str(&format!(
                    "\"relaxations_per_sec\": {}, ",
                    e.relaxations_per_sec()
                ));
                out.push_str(&format!("\"counters\": {}, ", counters_json(&e.counters)));
                out.push_str(&format!("\"allocs_per_query\": {}, ", e.allocs_per_query));
                out.push_str(&format!(
                    "\"alloc_bytes_per_query\": {}}}{}\n",
                    e.alloc_bytes_per_query,
                    if ei + 1 < w.engines.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        let r = &self.registry;
        out.push_str("  \"registry\": {\n");
        out.push_str(&format!(
            "    \"workload\": \"{}\",\n",
            json::escape(&r.workload)
        ));
        out.push_str(&format!(
            "    \"arena_arc_bytes\": {},\n",
            r.arena_arc_bytes
        ));
        out.push_str("    \"splits\": [\n");
        for (si, s) in r.splits.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"delta_count\": {}, \"duplicated_bytes\": {}, \
                 \"offset_view_bytes\": {}}}{}\n",
                s.delta_count,
                s.duplicated_bytes,
                s.offset_view_bytes,
                if si + 1 < r.splits.len() { "," } else { "" }
            ));
        }
        out.push_str("    ],\n");
        out.push_str("    \"grid\": [\n");
        for (gi, gs) in r.grid.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"graphs\": {}, \"resident_bytes\": {}, \"queries\": {}, \
                 \"wall_secs\": {}, \"relaxations\": {}, \
                 \"relaxations_per_sec\": {}}}{}\n",
                gs.graphs,
                gs.resident_bytes,
                gs.queries,
                gs.wall_secs,
                gs.relaxations,
                gs.relaxations_per_sec(),
                if gi + 1 < r.grid.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n");
        out.push_str("  }\n}\n");
        out
    }
}

/// Parses `text` and validates it against the checked-in schema. This is
/// what `bench_hotpath --check` and the CI smoke job run.
pub fn check_artifact(text: &str) -> Result<Json, String> {
    let schema = json::parse(SCHEMA_TEXT).map_err(|e| format!("schema is invalid JSON: {e}"))?;
    let value = json::parse(text).map_err(|e| format!("artifact does not parse: {e}"))?;
    json::validate(&value, &schema).map_err(|e| format!("artifact violates schema: {e}"))?;
    Ok(value)
}

/// One `(workload, engine)` throughput comparison from [`diff_artifacts`].
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Workload name shared by both artifacts.
    pub workload: String,
    /// Engine name shared by both artifacts.
    pub engine: String,
    /// Baseline relaxations/sec.
    pub baseline: f64,
    /// Current relaxations/sec.
    pub current: f64,
}

impl DiffLine {
    /// `current / baseline` (0 when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline
        } else {
            0.0
        }
    }
}

fn relax_per_sec_index(value: &Json) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let Some(workloads) = value.get("workloads").and_then(Json::as_arr) else {
        return out;
    };
    for w in workloads {
        let Some(wname) = w.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(engines) = w.get("engines").and_then(Json::as_arr) else {
            continue;
        };
        for e in engines {
            if let (Some(ename), Some(rps)) = (
                e.get("name").and_then(Json::as_str),
                e.get("relaxations_per_sec").and_then(Json::as_num),
            ) {
                out.push((wname.to_string(), ename.to_string(), rps));
            }
        }
    }
    // The registry grid participates in the same gate: each tenant count
    // is one (workload="registry", engine="graphs-N") pair. A version-2
    // baseline simply contributes no such pairs.
    if let Some(grid) = value
        .get("registry")
        .and_then(|r| r.get("grid"))
        .and_then(Json::as_arr)
    {
        for g in grid {
            if let (Some(graphs), Some(rps)) = (
                g.get("graphs").and_then(Json::as_num),
                g.get("relaxations_per_sec").and_then(Json::as_num),
            ) {
                out.push(("registry".to_string(), format!("graphs-{graphs}"), rps));
            }
        }
    }
    out
}

/// Compares two schema-valid artifacts' relaxations/sec for every
/// `(workload, engine)` pair present in both, failing when the current run
/// is more than `tolerance`× slower than the baseline. The wide tolerance
/// absorbs machine-to-machine noise while still catching a hot path that
/// fell off a cliff. Errs when the artifacts share no pairs at all — a
/// renamed grid must come with a regenerated baseline, not a silent pass.
pub fn diff_artifacts(
    baseline: &Json,
    current: &Json,
    tolerance: f64,
) -> Result<Vec<DiffLine>, String> {
    assert!(tolerance >= 1.0);
    let base = relax_per_sec_index(baseline);
    let cur = relax_per_sec_index(current);
    let mut lines = Vec::new();
    for (wname, ename, baseline_rps) in &base {
        let Some((_, _, current_rps)) = cur.iter().find(|(w, e, _)| w == wname && e == ename)
        else {
            continue;
        };
        lines.push(DiffLine {
            workload: wname.clone(),
            engine: ename.clone(),
            baseline: *baseline_rps,
            current: *current_rps,
        });
    }
    if lines.is_empty() {
        return Err("artifacts share no (workload, engine) pairs to compare".into());
    }
    if let Some(worst) = lines
        .iter()
        .filter(|l| l.baseline > 0.0 && l.current * tolerance < l.baseline)
        .min_by(|a, b| a.ratio().total_cmp(&b.ratio()))
    {
        return Err(format!(
            "relaxations/sec regression: {} / {} at {:.0} vs baseline {:.0} ({:.2}x, tolerance {}x)",
            worst.workload,
            worst.engine,
            worst.current,
            worst.baseline,
            worst.ratio(),
            tolerance
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_fixed_seed_and_cover_the_grid() {
        let specs = hotpath_specs(8);
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.seed == 0x2007));
        let names: Vec<String> = specs.iter().map(|s| s.name()).collect();
        assert_eq!(names[0], "Rand-UWD-2^8-2^8");
        assert_eq!(names[3], "RMAT-PWD-2^8-2^8");
        assert_eq!(specs, hotpath_specs(8), "deterministic");
    }

    #[test]
    fn smoke_run_emits_a_schema_valid_artifact() {
        let report = run(HotpathOptions {
            scale: 6,
            iterations: 1,
            sources: 2,
            smoke: true,
        });
        assert_eq!(report.workloads.len(), 4);
        for w in &report.workloads {
            assert_eq!(w.engines.len(), 5);
            assert!(w.engines.iter().all(|e| e.wall_secs > 0.0));
            assert!(w.engines.iter().all(|e| e.relaxations > 0));
            assert!(
                w.engines.iter().all(|e| e.counters.arcs_scanned > 0),
                "every instrumented engine reports arc scans"
            );
            assert!(w
                .engines
                .iter()
                .all(|e| e.counters.relaxations == e.relaxations));
        }
        let reg = &report.registry;
        assert_eq!(reg.splits.len(), 3);
        assert_eq!(reg.grid.len(), 2);
        assert!(reg.arena_arc_bytes > 0);
        // Duplicating splits pay the adjacency once per Δ; offset views
        // pay it once total plus n·4 bytes per Δ.
        let one = &reg.splits[0];
        let four = &reg.splits[2];
        assert_eq!(four.delta_count, 4);
        assert!(four.duplicated_bytes >= 4 * one.duplicated_bytes);
        assert!(
            four.offset_view_bytes < 2 * reg.arena_arc_bytes,
            "4 offset views must stay well under two arena copies \
             ({} vs arena {})",
            four.offset_view_bytes,
            reg.arena_arc_bytes
        );
        // Four registered graphs hold each arc array exactly once: the
        // accounted bytes scale with tenant count, with no per-Δ or
        // per-layout duplication on top.
        let single = &reg.grid[0];
        let multi = &reg.grid[1];
        assert_eq!((single.graphs, multi.graphs), (1, 4));
        assert!(multi.resident_bytes < 5 * single.resident_bytes);
        assert!(reg.grid.iter().all(|g| g.relaxations > 0));
        assert!(reg.grid.iter().all(|g| g.wall_secs > 0.0));

        let text = report.to_json();
        let value = check_artifact(&text).expect("artifact must satisfy the schema");
        assert_eq!(
            value.get("version").and_then(Json::as_num),
            Some(FORMAT_VERSION as f64)
        );
        let workloads = value.get("workloads").and_then(Json::as_arr).unwrap();
        assert_eq!(workloads.len(), 4);
        // The registry grid feeds the --diff gate alongside the engines.
        let pairs = relax_per_sec_index(&value);
        assert!(pairs
            .iter()
            .any(|(w, e, _)| w == "registry" && e == "graphs-1"));
        assert!(pairs
            .iter()
            .any(|(w, e, _)| w == "registry" && e == "graphs-4"));
    }

    fn fake_artifact(rps: f64) -> Json {
        json::parse(&format!(
            r#"{{"workloads": [{{"name": "w", "engines": [
                {{"name": "delta-presplit", "relaxations_per_sec": {rps}}},
                {{"name": "thorup", "relaxations_per_sec": 500.0}}
            ]}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn diff_passes_within_tolerance_and_fails_beyond_it() {
        let baseline = fake_artifact(1000.0);
        // 1.8x slower: inside the 2x tolerance.
        let lines = diff_artifacts(&baseline, &fake_artifact(555.0), 2.0).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.engine == "delta-presplit"));
        // 4x slower: a real regression.
        let err = diff_artifacts(&baseline, &fake_artifact(250.0), 2.0).unwrap_err();
        assert!(
            err.contains("delta-presplit") && err.contains("regression"),
            "{err}"
        );
        // Faster is never a failure.
        diff_artifacts(&baseline, &fake_artifact(9000.0), 2.0).unwrap();
    }

    #[test]
    fn diff_rejects_disjoint_grids() {
        let baseline = fake_artifact(1000.0);
        let renamed = json::parse(
            r#"{"workloads": [{"name": "other", "engines": [
                {"name": "delta-presplit", "relaxations_per_sec": 1000.0}
            ]}]}"#,
        )
        .unwrap();
        assert!(diff_artifacts(&baseline, &renamed, 2.0).is_err());
    }

    #[test]
    fn truncated_artifact_fails_the_check() {
        let report = run(HotpathOptions {
            scale: 6,
            iterations: 1,
            sources: 1,
            smoke: true,
        });
        let text = report.to_json();
        assert!(check_artifact(&text[..text.len() / 2]).is_err());
        // A parseable document missing required keys also fails.
        assert!(check_artifact("{\"version\": 1}").is_err());
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn presplit_allocates_strictly_less_than_the_seed_kernel() {
        let report = run(HotpathOptions {
            scale: 8,
            iterations: 2,
            sources: 3,
            smoke: true,
        });
        for w in &report.workloads {
            let per = |name: &str| {
                w.engines
                    .iter()
                    .find(|e| e.name == name)
                    .map(|e| e.allocs_per_query)
                    .unwrap()
            };
            let reference = per("delta-reference");
            let presplit = per("delta-presplit");
            assert!(
                presplit < reference,
                "{}: presplit {presplit} allocs/query vs seed {reference}",
                w.name
            );
        }
    }
}
